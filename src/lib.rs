//! Workspace umbrella crate hosting the integration tests and examples.
