//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range strategies over integers and
//! floats, tuple and [`collection::vec`] combinators, the [`proptest!`]
//! macro (with optional `#![proptest_config(..)]` header), and
//! `prop_assert!` / `prop_assert_eq!`. Cases are sampled from a
//! deterministic RNG so failures reproduce; shrinking is not implemented —
//! a failing case panics with its inputs' debug representation instead.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The RNG handed to strategies while sampling.
    pub type TestRng = StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Length bounds for [`vec`], convertible from the common range forms.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing vectors whose elements come from `element` and
    /// whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Fixed seed so property runs are reproducible across machines.
    pub const RUN_SEED: u64 = 0x9e37_79b9_7f4a_7c15;
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` sampling its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    <$crate::strategy::TestRng as ::rand::SeedableRng>::seed_from_u64(
                        $crate::test_runner::RUN_SEED,
                    );
                for __case in 0..__config.cases {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let ::std::result::Result::Err(e) = __result {
                        eprintln!(
                            "proptest: property `{}` failed at case {}/{}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::SeedableRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::strategy::TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.5f64..50.0).sample(&mut rng);
            assert!((0.5..50.0).contains(&f));
            let i = (-4i64..=4).sample(&mut rng);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_length_and_maps() {
        let mut rng = crate::strategy::TestRng::seed_from_u64(2);
        let strat = crate::collection::vec((0u32..10, 0u32..10), 1..12)
            .prop_map(|v| v.len());
        for _ in 0..200 {
            let len = strat.sample(&mut rng);
            assert!((1..12).contains(&len));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let strat = crate::collection::vec(0u64..=u64::MAX, 5..=5);
        let mut a = crate::strategy::TestRng::seed_from_u64(7);
        let mut b = crate::strategy::TestRng::seed_from_u64(7);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_generates_working_tests(x in 0u32..100, y in 0u32..100) {
            prop_assert!(x < 100 && y < 100);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
