//! Offline vendored stand-in for `crossbeam`.
//!
//! Provides the `channel` module surface this workspace uses: MPMC
//! [`channel::bounded`] / [`channel::unbounded`] queues with cloneable
//! senders and receivers, non-blocking `try_send` / `try_recv`, blocking
//! `send` / `recv`, draining iteration, and disconnect semantics when one
//! side is fully dropped. Built on `std::sync::{Mutex, Condvar}` — slower
//! than the real lock-free crossbeam under heavy contention, but with
//! identical observable behaviour for this simulator's traffic.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signalled when an item arrives or all senders disconnect.
        readable: Condvar,
        /// Signalled when space frees up or all receivers disconnect.
        writable: Condvar,
        capacity: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error for [`Sender::try_send`]: queue full or no receivers left.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded queue is at capacity.
        Full(T),
        /// Every receiver was dropped.
        Disconnected(T),
    }

    /// Error for [`Sender::send`]: every receiver was dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Receiver::try_recv`]: queue empty or no senders left.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Every sender was dropped and the queue is drained.
        Disconnected,
    }

    /// Error for [`Receiver::recv`]: senders gone and queue drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on a disconnected channel")
                }
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates a channel holding at most `cap` queued items.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap))
    }

    /// Creates a channel with no capacity limit.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Queues `item` without blocking.
        pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(item));
            }
            if let Some(cap) = self.shared.capacity {
                if state.items.len() >= cap {
                    return Err(TrySendError::Full(item));
                }
            }
            state.items.push_back(item);
            self.shared.readable.notify_one();
            Ok(())
        }

        /// Queues `item`, blocking while the channel is full.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(item));
                }
                match self.shared.capacity {
                    Some(cap) if state.items.len() >= cap => {
                        state = self.shared.writable.wait(state).unwrap();
                    }
                    _ => {
                        state.items.push_back(item);
                        self.shared.readable.notify_one();
                        return Ok(());
                    }
                }
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues an item without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            match state.items.pop_front() {
                Some(item) => {
                    self.shared.writable.notify_one();
                    Ok(item)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeues an item, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    self.shared.writable.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.readable.wait(state).unwrap();
            }
        }

        /// A blocking iterator that ends when all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                self.shared.writable.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(2);
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Ok(()));
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(tx.try_send(3), Ok(()));
        }

        #[test]
        fn try_recv_distinguishes_empty_from_disconnected() {
            let (tx, rx) = bounded::<u32>(4);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.try_send(7).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn iter_drains_until_senders_drop() {
            let (tx, rx) = unbounded();
            let producer = thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            producer.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn mpmc_distributes_all_items_exactly_once() {
            let (tx, rx) = bounded(8);
            let mut workers = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                workers.push(thread::spawn(move || rx.iter().count()));
            }
            drop(rx);
            for i in 0..200 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(total, 200);
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
            assert_eq!(tx.try_send(2), Err(TrySendError::Disconnected(2)));
        }
    }
}
