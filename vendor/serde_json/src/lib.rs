//! Offline vendored stand-in for `serde_json`.
//!
//! The data model ([`Value`], [`Map`], [`Number`]) lives in the vendored
//! `serde` crate (so derived impls can build `Value`s without a circular
//! dependency); this crate adds the JSON *text* layer: a recursive-descent
//! parser and a compact / pretty emitter. Only the API surface this
//! workspace uses is provided: `from_str`, `to_string`, `to_string_pretty`,
//! `to_value`, `from_value`, and the re-exported value types.

pub use serde::{Error, Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Converts a [`Value`] tree into a deserializable type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value)
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as a human-readable JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into a deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn emit(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => emit_number(n, out),
        Value::String(s) => emit_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                emit(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn emit_number(n: &Number, out: &mut String) {
    match *n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        // JSON has no NaN/Inf literal; mirror serde_json's `null`.
        Number::F(f) if !f.is_finite() => out.push_str("null"),
        Number::F(f) => {
            let s = format!("{f}");
            out.push_str(&s);
            // Keep floats recognizably floats so pretty files read sanely,
            // except shortest-form scientific notation which is already one.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{', "expected '{'")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar; input came from &str so the
                    // continuation bytes are guaranteed well-formed.
                    let start = self.pos;
                    let len = utf8_len(b);
                    self.pos += len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    s.push_str(std::str::from_utf8(chunk).expect("input was &str"));
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| self.err("bad number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_structures() {
        let text = r#"{"name":"aegis","eps":[0.5,1.0,2.5],"nested":{"ok":true,"n":null},"seed":18446744073709551615}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["name"].as_str(), Some("aegis"));
        assert_eq!(v["eps"][2].as_f64(), Some(2.5));
        assert_eq!(v["nested"]["ok"].as_bool(), Some(true));
        assert!(v["nested"]["n"].is_null());
        assert_eq!(v["seed"].as_u64(), Some(u64::MAX));

        let compact = to_string(&v).unwrap();
        let again: Value = from_str(&compact).unwrap();
        assert_eq!(v, again);

        let pretty = to_string_pretty(&v).unwrap();
        let again: Value = from_str(&pretty).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn parses_string_escapes() {
        let v: Value = from_str(r#""a\nb\t\"q\" é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\nb\t\"q\" \u{e9} \u{1f600}"));
        // And escapes survive re-emission.
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>(r#"{"a": }"#).is_err());
        assert!(from_str::<Value>("[1,2,]").is_err());
        assert!(from_str::<Value>("truely").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("not json at all").is_err());
    }

    #[test]
    fn typed_rows_deserialize_like_chart_rs() {
        // chart.rs parses result tables as Vec<Map<String, Value>>.
        let rows: Vec<Map<String, Value>> =
            from_str(r#"[{"eps":"0.5","acc":"0.91"},{"eps":"1.0","acc":"0.84"}]"#).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1]["eps"].as_str(), Some("1.0"));
    }

    #[test]
    fn float_formatting_stays_float() {
        let s = to_string(&Value::Number(Number::F(2.0))).unwrap();
        assert_eq!(s, "2.0");
        let s = to_string(&Value::Number(Number::F(1e300))).unwrap();
        let v: Value = from_str(&s).unwrap();
        assert_eq!(v.as_f64(), Some(1e300));
    }
}
