//! Offline vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment of this reproduction has no access to
//! crates.io, so the workspace vendors the exact API surface it uses:
//! [`rngs::StdRng`], [`SeedableRng`], [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`) and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator behind `StdRng` is xoshiro256** seeded through
//! SplitMix64 — deterministic, high quality, and `Clone`, which is all
//! the simulation needs. Statistical distributions match `rand`
//! semantics (half-open ranges, Lemire-style rejection for integers,
//! 53-bit mantissa uniforms for floats) but the concrete streams differ
//! from upstream `rand`; every consumer in this workspace seeds
//! explicitly and asserts statistical rather than stream-exact
//! properties.

/// A source of randomness: the core trait object-safe interface.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with
    /// SplitMix64 exactly once per seed word (the `rand` 0.8 contract:
    /// same `u64` → same stream).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advances `state` and returns the next word.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0x6a09_e667_f3bc_c909,
                    0xbb67_ae85_84ca_a73b,
                    0x3c6e_f372_fe94_f82b,
                ];
            }
            StdRng { s }
        }
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

/// Types with uniform sampling over a caller-supplied range.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`; `hi` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `hi` is inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full-domain u128 span cannot occur for <=64-bit types.
                    unreachable!("inclusive span overflow");
                }
                lo.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform integer in `[0, span)` by rejection sampling.
/// `span` is at most 2^64 (inclusive ranges of 64-bit types).
#[inline]
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= 1u128 << 64);
    if span == 1 {
        return 0;
    }
    if span == 1u128 << 64 {
        return rng.next_u64() as u128;
    }
    let span = span as u64;
    if span.is_power_of_two() {
        return (rng.next_u64() & (span - 1)) as u128;
    }
    // Reject draws from the biased tail of the 2^64 domain.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span) as u128;
        }
    }
}

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * u;
                // Floating rounding can land exactly on hi; clamp into range.
                if v >= hi { <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON) } else { v }
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing extension trait: blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value over the full domain of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    #[inline]
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random element selection.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn f64_standard_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
