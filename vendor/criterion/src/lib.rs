//! Offline vendored stand-in for `criterion`.
//!
//! Keeps the `criterion` API shape used by this workspace's benches
//! (`benchmark_group`, `throughput`, `sample_size`, `bench_function`,
//! `Bencher::iter`, `black_box`, `criterion_group!`, `criterion_main!`)
//! but measures with plain wall-clock sampling: per bench function it
//! calibrates an iteration count, takes `sample_size` samples, and prints
//! median / min / max ns per iteration plus derived throughput. No
//! statistical regression analysis, no HTML reports.

use std::time::{Duration, Instant};

/// Opaque value barrier re-exported from the standard library.
pub use std::hint::black_box;

/// Units processed per iteration, used to derive a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// One timing result, exposed so bench binaries can persist summaries.
#[derive(Clone, Debug)]
pub struct Sampled {
    /// `group/function` identifier.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    /// Target wall-clock time for one sample during calibration.
    sample_target: Duration,
    /// Substring filter from the CLI (cargo bench passes extra args).
    filter: Option<String>,
    results: Vec<Sampled>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            sample_target: Duration::from_millis(10),
            filter: None,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Applies CLI arguments: the first non-flag argument is a substring
    /// filter on benchmark ids (flags like `--bench` are ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        self
    }

    /// Overrides how many samples each bench function takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related bench functions.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benches a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_string(), None, None, f);
        self
    }

    /// All results measured so far (for bench binaries that persist a
    /// JSON summary next to the textual report).
    pub fn results(&self) -> &[Sampled] {
        &self.results
    }

    fn run_one<F>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        sample_size: Option<usize>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let samples = sample_size.unwrap_or(self.sample_size);

        // Smoke mode: one iteration, no calibration or sampling. Proves
        // the bench function still runs end to end without burning
        // minutes; the recorded number is not a measurement.
        if std::env::var("AEGIS_BENCH_SMOKE").as_deref() == Ok("1") {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let ns = b.elapsed.as_secs_f64() * 1e9;
            println!("{id:<48} smoke: [{} x1]", fmt_ns(ns));
            self.results.push(Sampled {
                id,
                median_ns: ns,
                min_ns: ns,
                max_ns: ns,
            });
            return;
        }

        // Calibrate: grow the iteration count until one sample takes
        // roughly `sample_target`.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= self.sample_target || iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16.0
            } else {
                (self.sample_target.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(1.5, 16.0)
            };
            iters = ((iters as f64) * grow).ceil() as u64;
        }

        let mut per_iter_ns: Vec<f64> = (0..samples)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let max = per_iter_ns[per_iter_ns.len() - 1];

        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!("{:>14}/s", human(n as f64 * 1e9 / median, "elem")),
            Throughput::Bytes(n) => format!("{:>14}/s", human(n as f64 * 1e9 / median, "B")),
        });
        println!(
            "{id:<48} time: [{} {} {}]{}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max),
            rate.map(|r| format!("  thrpt: {r}")).unwrap_or_default(),
        );
        self.results.push(Sampled {
            id,
            median_ns: median,
            min_ns: min,
            max_ns: max,
        });
    }
}

/// A named group sharing throughput / sample-size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the units-per-iteration used to derive a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for functions in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Benches one function under this group's settings.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(full, self.throughput, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Timer handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn human(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Declares a group runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records_results() {
        let mut c = Criterion::default();
        c.sample_size(3);
        c.sample_target = Duration::from_micros(200);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        g.finish();
        assert_eq!(c.results().len(), 1);
        let s = &c.results()[0];
        assert_eq!(s.id, "g/sum");
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut c = Criterion {
            filter: Some("other".into()),
            ..Criterion::default()
        };
        c.bench_function("g/sum", |b| b.iter(|| 1 + 1));
        assert!(c.results().is_empty());
    }
}
