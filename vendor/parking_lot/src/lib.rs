//! Offline vendored stand-in for `parking_lot`.
//!
//! Thin non-poisoning wrappers over `std::sync` primitives with the
//! `parking_lot` call shapes: `lock()` / `read()` / `write()` return
//! guards directly (no `Result`), and a poisoned inner lock is simply
//! recovered — matching parking_lot's "no poisoning" semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose accessors never return `Err`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard active");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_provides_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(r1.len() + r2.len(), 6);
        drop((r1, r2));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_one();
        waiter.join().unwrap();
    }
}
