//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde. The input grammar is parsed by hand from the raw token stream
//! (no `syn`/`quote` available offline); only the shapes this workspace
//! actually derives are supported: non-generic structs (named, tuple,
//! unit) and non-generic enums with unit, tuple, and struct variants.
//!
//! Generated shapes mirror upstream `serde_json` defaults so existing
//! JSON artifacts and round-trip tests keep their format:
//! named struct → object; newtype struct → the inner value; tuple
//! struct → array; unit variant → `"Variant"`; data variant →
//! `{"Variant": ...}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// The field list of a struct or enum variant.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored) does not support generic type {name}"
        ));
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            let mut variants = Vec::new();
            for chunk in split_top_level_commas(body) {
                let mut j = 0usize;
                skip_attrs_and_vis(&chunk, &mut j);
                if j >= chunk.len() {
                    continue; // trailing comma
                }
                let vname = match &chunk[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => return Err(format!("expected variant name, got {other:?}")),
                };
                j += 1;
                let fields = match chunk.get(j) {
                    None => Fields::Unit,
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g.stream())?)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    other => return Err(format!("unsupported variant body: {other:?}")),
                };
                variants.push((vname, fields));
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for {other}")),
    }
}

/// Advances `i` past outer attributes (`#[...]`) and a visibility
/// modifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream at commas that sit outside any `<...>` nesting
/// (parens/brackets/braces are opaque groups already).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field names of a named-field group, in declaration order.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level_commas(stream) {
        let mut j = 0usize;
        skip_attrs_and_vis(&chunk, &mut j);
        if j >= chunk.len() {
            continue;
        }
        match &chunk[j] {
            TokenTree::Ident(id) => names.push(id.to_string()),
            other => return Err(format!("expected field name, got {other:?}")),
        }
    }
    Ok(names)
}

/// Number of fields in a tuple-struct/-variant parenthesis group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .count()
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => ser_named_object(names, "self.", ""),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::Value::String(String::from(\"{vname}\")),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vname}({}) => {{\n\
                                 let mut __m = ::serde::Map::new();\n\
                                 __m.insert(String::from(\"{vname}\"), {inner});\n\
                                 ::serde::Value::Object(__m)\n\
                             }},",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(names) => {
                        let inner = ser_named_object(names, "", "");
                        format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                                 let __inner = {inner};\n\
                                 let mut __m = ::serde::Map::new();\n\
                                 __m.insert(String::from(\"{vname}\"), __inner);\n\
                                 ::serde::Value::Object(__m)\n\
                             }},",
                            names.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
                arms.push('\n');
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// `{ let mut m = Map::new(); m.insert("f", to_value(&<prefix>f)); ... }`
fn ser_named_object(names: &[String], prefix: &str, _suffix: &str) -> String {
    let mut body = String::from("{ let mut __m = ::serde::Map::new();\n");
    for f in names {
        body.push_str(&format!(
            "__m.insert(String::from(\"{f}\"), ::serde::Serialize::to_value(&{prefix}{f}));\n"
        ));
    }
    body.push_str("::serde::Value::Object(__m) }");
    body
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Named(names) => {
                de_named_fields(name, names, &format!("{name} {{"), "}", "__v")
            }
            Fields::Tuple(1) => format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
            ),
            Fields::Tuple(n) => de_tuple_fields(name, &format!("{name}("), ")", *n, "__v"),
            Fields::Unit => format!("::core::result::Result::Ok({name})"),
        },
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_checks = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => return ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(1) => data_checks.push_str(&format!(
                        "if let Some(__inner) = __obj.get(\"{vname}\") {{\n\
                             return ::core::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(__inner)\
                                 .map_err(|e| ::serde::Error::context(\"{name}::{vname}\", e))?));\n\
                         }}\n"
                    )),
                    Fields::Tuple(n) => {
                        let inner =
                            de_tuple_fields(name, &format!("{name}::{vname}("), ")", *n, "__inner");
                        data_checks.push_str(&format!(
                            "if let Some(__inner) = __obj.get(\"{vname}\") {{\n\
                                 return {{ {inner} }};\n\
                             }}\n"
                        ));
                    }
                    Fields::Named(names) => {
                        let inner = de_named_fields(
                            name,
                            names,
                            &format!("{name}::{vname} {{"),
                            "}",
                            "__inner",
                        );
                        data_checks.push_str(&format!(
                            "if let Some(__inner) = __obj.get(\"{vname}\") {{\n\
                                 return {{ {inner} }};\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::String(__s) = __v {{\n\
                     match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => return ::core::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                     }}\n\
                 }}\n\
                 let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\
                     \"expected object for enum {name}\"))?;\n\
                 {data_checks}\
                 ::core::result::Result::Err(::serde::Error::custom(\
                     \"unrecognized variant object for {name}\"))"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// `Ok(Ctor { f: from_value(obj.get("f"))?, ... })` — missing keys read
/// as `Null` so `Option` fields tolerate absent entries.
fn de_named_fields(
    type_name: &str,
    names: &[String],
    open: &str,
    close: &str,
    var: &str,
) -> String {
    let mut body = format!(
        "let __obj = {var}.as_object().ok_or_else(|| ::serde::Error::custom(\
             \"expected object for {type_name}\"))?;\n\
         ::core::result::Result::Ok({open}\n"
    );
    for f in names {
        body.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(\
                 __obj.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                 .map_err(|e| ::serde::Error::context(\"{type_name}.{f}\", e))?,\n"
        ));
    }
    body.push_str(close);
    body.push(')');
    body
}

/// `Ok(Ctor(from_value(&arr[0])?, ...))` from an array value.
fn de_tuple_fields(type_name: &str, open: &str, close: &str, n: usize, var: &str) -> String {
    let mut body = format!(
        "let __arr = {var}.as_array().ok_or_else(|| ::serde::Error::custom(\
             \"expected array for {type_name}\"))?;\n\
         if __arr.len() != {n} {{\n\
             return ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"expected {n} elements for {type_name}, got {{}}\", __arr.len())));\n\
         }}\n\
         ::core::result::Result::Ok({open}\n"
    );
    for i in 0..n {
        body.push_str(&format!(
            "::serde::Deserialize::from_value(&__arr[{i}])\
                 .map_err(|e| ::serde::Error::context(\"{type_name}.{i}\", e))?,\n"
        ));
    }
    body.push_str(close);
    body.push(')');
    body
}
