//! Offline vendored stand-in for `serde`.
//!
//! The upstream serde data model (serializer/deserializer visitors) is
//! far larger than this workspace needs: every consumer serializes to
//! and from JSON. So this vendored version collapses the model to a
//! single in-memory [`Value`] tree: [`Serialize`] converts a type *to*
//! a `Value`, [`Deserialize`] reconstructs it *from* one, and the
//! sibling `serde_json` crate handles text. The `#[derive(Serialize,
//! Deserialize)]` macro in `serde_derive` generates the same shapes
//! upstream `serde_json` would: structs as objects, newtypes
//! transparently, unit enum variants as strings, and data-carrying
//! variants as single-key objects.

mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error: a message plus a breadcrumb
/// path of the fields that led to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// Wraps `inner` with a field/variant breadcrumb.
    pub fn context(at: &str, inner: Error) -> Self {
        Error(format!("{at}: {}", inner.0))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion of a value into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction of a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // JSON has no NaN/Infinity; mirror serde_json's null.
                if self.is_finite() {
                    Value::Number(Number::F(*self as f64))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Null => Ok(<$t>::NAN),
                    _ => v
                        .as_f64()
                        .map(|f| f as $t)
                        .ok_or_else(|| Error::custom(format!("expected number, got {v:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!("expected single char, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == [$($i),+].len() => {
                        Ok(($($t::from_value(&items[$i])
                            .map_err(|e| Error::context(concat!("tuple.", $i), e))?,)+))
                    }
                    other => Err(Error::custom(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<V: Serialize> Serialize for Map<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for Map<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn numbers_cross_convert() {
        // An integral float deserializes as integer and vice versa.
        assert_eq!(u64::from_value(&Value::Number(Number::F(3.0))).unwrap(), 3);
        assert_eq!(f64::from_value(&Value::Number(Number::U(3))).unwrap(), 3.0);
        assert!(u64::from_value(&Value::Number(Number::F(3.5))).is_err());
        assert!(u64::from_value(&Value::Number(Number::I(-1))).is_err());
    }

    #[test]
    fn options_use_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Some(5u32).to_value(), Value::Number(Number::U(5)));
    }

    #[test]
    fn nan_serializes_as_null_and_back() {
        let v = f64::NAN.to_value();
        assert_eq!(v, Value::Null);
        assert!(f64::from_value(&v).unwrap().is_nan());
    }

    #[test]
    fn vectors_and_tuples_roundtrip() {
        let xs = vec![(1u32, 2.5f64), (3, 4.5)];
        let v = xs.to_value();
        let back: Vec<(u32, f64)> = Vec::from_value(&v).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn arrays_roundtrip() {
        let a = [1.0f64, 2.0, 3.0];
        let back: [f64; 3] = <[f64; 3]>::from_value(&a.to_value()).unwrap();
        assert_eq!(back, a);
        assert!(<[f64; 4]>::from_value(&a.to_value()).is_err());
    }
}
