//! The in-memory JSON data model shared by `serde` and `serde_json`.

use std::ops::Index;

/// A JSON number, preserving integer fidelity (an `f64` cannot hold
/// every `u64` seed this workspace serializes).
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(n) => n as f64,
            Number::I(n) => n as f64,
            Number::F(f) => f,
        }
    }

    /// The value as `u64` if it is a non-negative integer (including
    /// integral floats).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(n) => Some(n),
            Number::I(n) => u64::try_from(n).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::F(_) => None,
        }
    }

    /// The value as `i64` if it is an integer (including integral
    /// floats).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(n) => i64::try_from(n).ok(),
            Number::I(n) => Some(n),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// An insertion-ordered string-keyed map (what `serde_json::Map` is to
/// its consumers here: deterministic iteration, `Index` by key).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K, V> {
    entries: Vec<(K, V)>,
}

impl<V> Map<String, V> {
    /// An empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `value` at `key`, replacing and returning a previous
    /// value at the same key.
    pub fn insert(&mut self, key: String, value: V) -> Option<V> {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slot)) => Some(std::mem::replace(slot, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: &str) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<V> FromIterator<(String, V)> for Map<String, V> {
    fn from_iter<I: IntoIterator<Item = (String, V)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<V> IntoIterator for Map<String, V> {
    type Item = (String, V);
    type IntoIter = std::vec::IntoIter<(String, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a, V> IntoIterator for &'a Map<String, V> {
    type Item = (&'a String, &'a V);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, V)>,
        fn(&'a (String, V)) -> (&'a String, &'a V),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Index<&str> for Map<String, Value> {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<&String> for Map<String, Value> {
    type Output = Value;

    fn index(&self, key: &String) -> &Value {
        &self[key.as_str()]
    }
}

/// A JSON value tree — the single data model of the vendored serde.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as signed integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(Number::U(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(Number::U(n as u64))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        if n >= 0 {
            Value::Number(Number::U(n as u64))
        } else {
            Value::Number(Number::I(n))
        }
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::F(f))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m: Map<String, Value> = Map::new();
        m.insert("b".into(), Value::Bool(true));
        m.insert("a".into(), Value::Null);
        m.insert("b".into(), Value::Bool(false));
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m["b"], Value::Bool(false));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn number_equality_is_value_based() {
        assert_eq!(Number::U(3), Number::F(3.0));
        assert_eq!(Number::I(-2), Number::F(-2.0));
        assert_ne!(Number::U(3), Number::F(3.5));
    }

    #[test]
    fn indexing_missing_keys_yields_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
        assert!(v[3].is_null());
    }
}
