//! A tour of the substrate: what SEV does and does not protect.
//!
//! Shows the confidentiality boundary the whole paper rests on — the
//! host cannot read an SEV guest's memory or registers, but it can read
//! every HPC register mapping to the guest's core, and the counters
//! visibly track the guest's activity.
//!
//! ```sh
//! cargo run --release --example host_monitoring
//! ```

use aegis::microarch::{named, MicroArch, OriginFilter};
use aegis::sev::{Host, PlanSource, SevMode};
use aegis::workloads::{SecretApp, WebsiteCatalog};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut host = Host::new(MicroArch::AmdEpyc7252, 2, 7);
    let vm = host.launch_vm(1, SevMode::SevSnp)?;
    println!("launched a SEV-SNP guest on {}", host.arch());

    // SEV's promise: memory and registers are sealed.
    println!(
        "\nhost tries to read guest memory:    {:?}",
        host.read_guest_memory(vm).err()
    );
    println!(
        "host tries to read guest registers: {:?}",
        host.read_guest_registers(vm).err()
    );

    // SEV's gap: the host owns the PMU.
    let core = host.core_of(vm, 0)?;
    let catalog = host.core(core).catalog();
    let events = catalog.attack_events().to_vec();
    println!("\nbut the host programs the guest core's counters without asking:");
    for &e in &events {
        println!("  {}", catalog.get(e).unwrap().name);
    }

    // Guest quietly browses a website; host watches the counters.
    let app = WebsiteCatalog::new(7);
    let mut rng = StdRng::seed_from_u64(3);
    let plan = app.sample_plan(2, &mut rng); // facebook.com
    host.attach_app(vm, 0, Box::new(PlanSource::new(plan)))?;
    let trace = host.record_trace(core, &events, OriginFilter::Any, 50_000_000, 500_000_000)?;

    println!(
        "\nHPC trace while the guest loads {} (50 ms samples):",
        app.secret_name(2)
    );
    println!("  t(ms)   RETIRED_UOPS   LS_DISPATCH    MAB_ALLOC      DC_REFILLS");
    for t in 0..trace.len() {
        println!(
            "  {:>5}   {:>12.0}   {:>11.0}   {:>10.0}   {:>13.0}",
            t * 50,
            trace.data[0][t],
            trace.data[1][t],
            trace.data[2][t],
            trace.data[3][t],
        );
    }

    // Idle comparison: the signal is unmistakably the guest's.
    host.attach_app(vm, 0, Box::new(PlanSource::new(Default::default())))?;
    let idle = host.record_trace(
        core,
        &catalog.attack_events(),
        OriginFilter::Any,
        50_000_000,
        200_000_000,
    )?;
    println!(
        "\nidle-guest counter totals for comparison: {:?}",
        idle.totals().iter().map(|x| *x as u64).collect::<Vec<_>>()
    );
    println!("\nthis gap — sealed memory, open counters — is what Aegis closes in software.");

    // RETIRED_UOPS exists on every model; just assert we used real names.
    assert!(catalog.lookup(named::RETIRED_UOPS).is_some());
    Ok(())
}
