//! The DNN model extraction case study: the hypervisor reconstructs the
//! layer architecture of models running inside the confidential VM from
//! HPC traces of their inference, then Aegis shuts the channel down.
//!
//! ```sh
//! cargo run --release --example model_extraction
//! ```

use aegis::attack::TrainConfig;
use aegis::microarch::MicroArch;
use aegis::sev::{Host, SevMode};
use aegis::workloads::{DnnZoo, LayerKind, SecretApp};
use aegis::{Collector, MeaAttack, MeaConfig};

fn layer_string(seq: &[usize]) -> String {
    seq.iter()
        .map(|&i| {
            LayerKind::ALL.get(i).map_or("?", |k| match k {
                LayerKind::Conv => "C",
                LayerKind::Fc => "F",
                LayerKind::Pool => "P",
                LayerKind::BatchNorm => "B",
                LayerKind::ReLU => "R",
                LayerKind::Dropout => "D",
                LayerKind::Add => "+",
                LayerKind::Concat => "#",
                LayerKind::Gru => "G",
                LayerKind::Attention => "A",
                LayerKind::Embed => "E",
                LayerKind::Softmax => "S",
            })
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut host = Host::new(MicroArch::AmdEpyc7252, 2, 7);
    let vm = host.launch_vm(1, SevMode::SevSnp)?;
    let zoo = DnnZoo::new(7);
    let core = host.core_of(vm, 0)?;
    let events = host.core(core).catalog().attack_events().to_vec();

    let cfg = MeaConfig {
        runs_per_model: 4,
        interval_ns: 1_000_000,
        pad_ns: 20_000_000,
        seed: 7,
    };
    println!("monitoring inference of {} models ...", zoo.n_secrets());
    let runs = Collector::for_mea(cfg).mea_runs(&mut host, vm, 0, &zoo, &events, None)?;
    let attacker = MeaAttack::train(&runs, TrainConfig::default(), 7);
    println!(
        "slice-classifier validation accuracy: {:.1}%",
        attacker.curve.final_val_acc() * 100.0
    );

    // Extract a few fresh victim runs and show them next to ground truth.
    let mut victim_cfg = cfg;
    victim_cfg.runs_per_model = 1;
    victim_cfg.seed = 99;
    let victims =
        Collector::for_mea(victim_cfg).mea_runs(&mut host, vm, 0, &zoo, &events, None)?;
    println!("\nlegend: C=conv F=fc P=pool B=bn R=relu D=dropout +=add #=concat G=gru A=attn E=embed S=softmax");
    for (model, run) in victims.iter().take(4) {
        let extracted = attacker.extract(run);
        println!(
            "\n  model {:<22} ({} layers)",
            zoo.secret_name(*model),
            run.truth.len()
        );
        println!("    truth:     {}", layer_string(&run.truth));
        println!("    extracted: {}", layer_string(&extracted));
        println!(
            "    layer-match accuracy: {:.1}%",
            aegis::attack::layer_match_accuracy(&extracted, &run.truth) * 100.0
        );
    }
    println!(
        "\noverall extraction accuracy (undefended): {:.1}%",
        attacker.sequence_accuracy(&victims) * 100.0
    );

    // Defense: reuse a fast offline plan and re-run the extraction.
    println!("\ndeploying Aegis (Laplace ε = 2⁻³ for the paper's strongest setting) ...");
    let plan = {
        use aegis::fuzzer::FuzzerConfig;
        use aegis::profiler::{RankConfig, WarmupConfig};
        use aegis::{AegisConfig, AegisPipeline};
        let cfg = AegisConfig {
            warmup: WarmupConfig {
                probe_ns: 2_000_000,
                passes: 2,
                ..WarmupConfig::default()
            },
            rank: RankConfig {
                reps_per_secret: 2,
                window_ns: 60_000_000,
                ..RankConfig::default()
            },
            fuzzer: FuzzerConfig {
                candidates_per_event: 150,
                confirm_reps: 10,
                ..FuzzerConfig::default()
            },
            fuzz_top_events: 10,
            isa_seed: 7,
            ..AegisConfig::default()
        };
        AegisPipeline::offline(&mut host, vm, 0, &zoo, &cfg)?
    };
    let deployment =
        aegis::DefenseDeployment::new(&plan, aegis::MechanismChoice::Laplace { epsilon: 0.125 });
    let defended = Collector::for_mea(victim_cfg)
        .mea_runs(&mut host, vm, 0, &zoo, &events, Some(&deployment))?;
    println!(
        "extraction accuracy under Aegis: {:.1}%",
        attacker.sequence_accuracy(&defended) * 100.0
    );
    Ok(())
}
