//! Service mode: the supervised defense plane over a whole guest
//! lifetime — spawn, hot reloads, an injected health flap that trips the
//! watchdog, and finally ε-budget exhaustion refusing service
//! fail-closed.
//!
//! Every line printed here is a pure function of the configuration and
//! seeds: the run is bit-identical at any worker count.
//!
//! ```sh
//! cargo run --release --example service_mode
//! ```

use aegis::fuzzer::FuzzerConfig;
use aegis::microarch::MicroArch;
use aegis::profiler::{RankConfig, WarmupConfig};
use aegis::sev::{Host, SevMode};
use aegis::workloads::KeystrokeApp;
use aegis::{
    AegisConfig, AegisService, FaultPlan, MechanismChoice, ServiceConfig, SupervisorConfig,
};

const TENANT: &str = "acme";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut host = Host::new(MicroArch::AmdEpyc7252, 2, 7);
    let vm = host.launch_vm(1, SevMode::SevSnp)?;
    let app = KeystrokeApp::with_window(600_000_000);
    let core = host.core_of(vm, 0)?;

    // Every health check spuriously reads unhealthy: the deterministic
    // way to watch the watchdog earn its keep.
    let faults = FaultPlan {
        health_flap: 1.0,
        ..FaultPlan::none()
    };
    let cfg = AegisConfig {
        warmup: WarmupConfig {
            probe_ns: 2_000_000,
            passes: 2,
            ..WarmupConfig::default()
        },
        rank: RankConfig {
            reps_per_secret: 2,
            window_ns: 60_000_000,
            ..RankConfig::default()
        },
        fuzzer: FuzzerConfig {
            candidates_per_event: 120,
            confirm_reps: 10,
            ..FuzzerConfig::default()
        },
        fuzz_top_events: 6,
        isa_seed: 7,
        mechanism: MechanismChoice::Laplace { epsilon: 1.0 },
        faults: Some(faults),
        ..AegisConfig::default()
    };
    cfg.apply_runtime();

    // ε budget 4.2 at ε = 1 per deployment epoch: attach + two reloads +
    // one watchdog redeploy fit; the next epoch does not.
    let service_cfg = ServiceConfig::new(cfg)
        .default_budget(4.2)
        .seed(7)
        .supervisor(SupervisorConfig {
            health_check_interval_ns: 5_000_000,
            unhealthy_checks_restart: 2,
            max_restarts: 3,
            restart_backoff_ns: 2_000_000,
            ..SupervisorConfig::default()
        });

    // ── Spawn ───────────────────────────────────────────────────────────
    let mut svc = AegisService::start(&mut host, service_cfg)?;
    println!("[1/5] service plane up; profiling the tenant's workload ...");
    let plan = svc.profile(vm, 0, &app)?;
    println!(
        "      plan: {} vulnerable events, {} covering gadgets",
        plan.vulnerable_events.len(),
        plan.covering.len()
    );
    let id = svc.attach(vm, 0, &plan, TENANT)?;
    println!(
        "      session {id} attached for tenant {TENANT:?}; ε remaining {:.1}",
        svc.epsilon_remaining(TENANT).unwrap_or(f64::NAN)
    );
    svc.run(2_000_000);
    println!(
        "      status after 2 ms: {} (one flapped check — below the restart threshold)",
        svc.status(id)?
    );

    // ── Hot reloads ─────────────────────────────────────────────────────
    println!("[2/5] two hot reloads (old plan drains, swap at the interval boundary):");
    for round in 1..=2u32 {
        let receipt = svc.reload(id, &plan)?;
        println!(
            "      reload {round}: plan {:#018x} live, ε charged {:.0}, ε remaining {:.1}",
            receipt.plan_id,
            receipt.epsilon_charged,
            svc.epsilon_remaining(TENANT).unwrap_or(f64::NAN)
        );
    }

    // ── Watchdog restart ────────────────────────────────────────────────
    println!("[3/5] running 10 ms under injected health flaps ...");
    svc.run(10_000_000);
    let health = &svc.health().sessions[0];
    println!(
        "      watchdog restarted the daemon {} time(s); status {}; ε remaining {:.1}",
        health.restarts,
        health.status,
        svc.epsilon_remaining(TENANT).unwrap_or(f64::NAN)
    );

    // ── ε exhaustion, fail closed ───────────────────────────────────────
    println!("[4/5] running 15 ms more: the next restart epoch cannot afford ε = 1 ...");
    svc.run(15_000_000);
    println!(
        "      status {}; ε remaining {:.1}; guest counters latched to zero: {}",
        svc.status(id)?,
        svc.epsilon_remaining(TENANT).unwrap_or(f64::NAN),
        svc.host().core_fail_closed(core)
    );

    // ── Clean shutdown ──────────────────────────────────────────────────
    let report = svc.shutdown()?;
    let s = &report.sessions[0];
    println!(
        "[5/5] shutdown: session {} ended {} after {} restart(s), {} reload(s), ε spent {:.0}",
        s.id, s.status, s.restarts, s.reloads, s.epsilon_charged
    );
    println!(
        "      fail-closed latch survives shutdown: {}",
        host.core_fail_closed(core)
    );
    Ok(())
}
