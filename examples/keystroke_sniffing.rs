//! The keystroke sniffing case study with a privacy-budget sweep: watch
//! the attack accuracy collapse as ε shrinks, and what it costs.
//!
//! ```sh
//! cargo run --release --example keystroke_sniffing
//! ```

use aegis::attack::TrainConfig;
use aegis::fuzzer::FuzzerConfig;
use aegis::microarch::MicroArch;
use aegis::profiler::{RankConfig, WarmupConfig};
use aegis::sev::{Host, SevMode};
use aegis::workloads::KeystrokeApp;
use aegis::{
    measure_app_run, AegisConfig, AegisPipeline, ClassifierAttack, CollectConfig, Collector,
    DefenseDeployment, MechanismChoice,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut host = Host::new(MicroArch::AmdEpyc7252, 2, 7);
    let vm = host.launch_vm(1, SevMode::SevSnp)?;
    let app = KeystrokeApp::with_window(600_000_000);
    let core = host.core_of(vm, 0)?;
    let events = host.core(core).catalog().attack_events().to_vec();

    let collect = CollectConfig {
        traces_per_secret: 20,
        window_ns: 600_000_000,
        interval_ns: 2_000_000,
        pool: 25,
        seed: 7,
        per_secret_noise: false,
    };
    println!("training the keystroke sniffer ...");
    let template = Collector::for_traces(collect).dataset(&mut host, vm, 0, &app, &events, None)?;
    let attacker = ClassifierAttack::train(&template, TrainConfig::default(), 7);
    println!(
        "sniffer validation accuracy: {:.1}% (random guess 10%)",
        attacker.curve.final_val_acc() * 100.0
    );

    println!("\nrunning the Aegis offline pipeline ...");
    let plan = AegisPipeline::offline(
        &mut host,
        vm,
        0,
        &app,
        &AegisConfig {
            warmup: WarmupConfig {
                probe_ns: 2_000_000,
                passes: 2,
                ..WarmupConfig::default()
            },
            rank: RankConfig {
                reps_per_secret: 2,
                window_ns: 60_000_000,
                ..RankConfig::default()
            },
            fuzzer: FuzzerConfig {
                candidates_per_event: 150,
                confirm_reps: 10,
                ..FuzzerConfig::default()
            },
            fuzz_top_events: 10,
            isa_seed: 7,
            ..AegisConfig::default()
        },
    )?;

    // Baseline latency of one 600 ms keystroke window.
    let mut rng = StdRng::seed_from_u64(3);
    let plan600 = aegis::workloads::SecretApp::sample_plan(&app, 5, &mut rng);
    let base = measure_app_run(&mut host, vm, 0, plan600.clone(), None, 0)?;

    println!("\n  ε        sniffer accuracy   latency overhead");
    for exp in [3i32, 1, 0, -1, -3] {
        let eps = 2f64.powi(exp);
        let deployment = DefenseDeployment::new(&plan, MechanismChoice::Laplace { epsilon: eps });
        let mut victim_cfg = collect;
        victim_cfg.seed = 1000 + exp.unsigned_abs() as u64;
        victim_cfg.traces_per_secret = 10;
        let defended = Collector::for_traces(victim_cfg)
            .dataset(&mut host, vm, 0, &app, &events, Some(&deployment))?;
        let run = measure_app_run(&mut host, vm, 0, plan600.clone(), Some(&deployment), 1)?;
        println!(
            "  2^{exp:<+3}      {:>6.1}%            {:>+6.2}%",
            attacker.accuracy(&defended) * 100.0,
            (run.latency_ns as f64 / base.latency_ns as f64 - 1.0) * 100.0
        );
    }
    println!("\nsmaller ε ⇒ stronger privacy, higher cost — the customer picks the trade-off.");
    Ok(())
}
