//! Fleet mode: a sharded fleet of simulated hosts, each running the
//! supervised defense plane for its tenants, driven through a seeded
//! chaos storm. Crashed hosts latch every core fail-closed and their
//! tenants are evacuated — ε account intact, destination latched until
//! the daemon demonstrates health — then the cross-tenant attacker
//! measures how much the placement policy alone moves its accuracy.
//!
//! Every line printed here is a pure function of the configuration and
//! seeds: the run is bit-identical at any worker count.
//!
//! ```sh
//! cargo run --release --example fleet_mode
//! ```

use aegis::fuzzer::FuzzerConfig;
use aegis::microarch::MicroArch;
use aegis::profiler::{RankConfig, WarmupConfig};
use aegis::sev::{Host, SevMode};
use aegis::workloads::{KeystrokeApp, SecretApp};
use aegis::{
    policy_attack_table, storm_schedule, AegisConfig, AegisPipeline, CrossTenantConfig, FaultPlan,
    FleetConfig, FleetSupervisor, FleetTopology, MechanismChoice, PlacementPolicy, ServiceConfig,
    TenantStatus,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = KeystrokeApp::with_window(300_000_000);

    // One calibrated defense plan, profiled offline; the fleet deploys a
    // per-tenant reseeded instance of it on every placement.
    let cfg = AegisConfig {
        warmup: WarmupConfig {
            probe_ns: 2_000_000,
            passes: 2,
            ..WarmupConfig::default()
        },
        rank: RankConfig {
            reps_per_secret: 2,
            window_ns: 50_000_000,
            ..RankConfig::default()
        },
        fuzzer: FuzzerConfig {
            candidates_per_event: 60,
            confirm_reps: 8,
            ..FuzzerConfig::default()
        },
        fuzz_top_events: 4,
        isa_seed: 7,
        mechanism: MechanismChoice::Laplace { epsilon: 1.0 },
        faults: Some(FaultPlan::none()),
        ..AegisConfig::default()
    };
    println!("[1/4] profiling the tenant workload offline ...");
    let mut bench_host = Host::new(MicroArch::AmdEpyc7252, 2, 7);
    let vm = bench_host.launch_vm(1, SevMode::SevSnp)?;
    let plan = AegisPipeline::offline(&mut bench_host, vm, 0, &app, &cfg)?;
    println!(
        "      plan: {} vulnerable events, {} covering gadgets",
        plan.vulnerable_events.len(),
        plan.covering.len()
    );

    // ── Deploy the fleet ────────────────────────────────────────────────
    let topo = FleetTopology {
        hosts: 4,
        sockets_per_host: 1,
        pairs_per_socket: 4,
    };
    let storm = FaultPlan {
        seed: 0xF1EE7,
        host_crash: 0.08,
        host_degrade: 0.15,
        ..FaultPlan::none()
    };
    let tenants = 12;
    // The fleet's fault plan *is* the storm: `run_storm` draws per-host
    // crash/degrade coins from it, so the schedule is reproducible from
    // the plan alone (see `storm_schedule`).
    let mut fleet_aegis = cfg;
    fleet_aegis.faults = Some(storm);
    let fleet_cfg = FleetConfig::new(
        ServiceConfig::new(fleet_aegis),
        topo,
        PlacementPolicy::Spread,
        tenants,
    )
    .seed(42);
    let mut fleet = FleetSupervisor::deploy(fleet_cfg, &plan, &app)?;
    println!(
        "[2/4] fleet up: {} tenants spread over {} hosts x {} cores",
        fleet.n_tenants(),
        fleet.n_hosts(),
        topo.cores_per_host()
    );

    // ── Chaos storm ─────────────────────────────────────────────────────
    let (steps, step_ns) = (6, 2_000_000);
    let schedule = storm_schedule(&storm, topo.hosts, steps);
    println!(
        "[3/4] running a {} ms seeded storm ({} scheduled hits) ...",
        steps * step_ns / 1_000_000,
        schedule.len()
    );
    fleet.run_storm(steps, step_ns);
    let report = fleet.report();
    println!(
        "      crashes {}, degrades {}, evacuations {}, quarantined {}, stranded {}",
        report.crashes, report.degrades, report.evacuations, report.quarantined, report.stranded
    );
    for t in &report.tenants {
        if t.evacuations > 0 {
            println!(
                "      tenant {} evacuated {}x -> host {:?}, status {}, eps spent {:.0}",
                t.tenant, t.evacuations, t.host, t.status, t.epsilon_spent
            );
        }
    }
    let survived = report
        .tenants
        .iter()
        .filter(|t| t.status == TenantStatus::Protected)
        .count();
    println!("      {survived}/{tenants} tenants protected after the storm");

    // ── Placement vs the cross-tenant attacker ──────────────────────────
    println!("[4/4] cross-tenant attacker accuracy per placement policy:");
    let xt = CrossTenantConfig {
        window_ns: 300_000_000,
        ..CrossTenantConfig::default()
    };
    let table = policy_attack_table(&PlacementPolicy::ALL, &app, None, &xt)?;
    let chance = 1.0 / app.n_secrets() as f64;
    for cell in &table {
        println!(
            "      {:<20} co-resident: {:<5} accuracy {:.3} (chance {:.3})",
            cell.policy.label(),
            cell.co_resident,
            cell.accuracy,
            chance
        );
    }
    fleet.shutdown();
    Ok(())
}
