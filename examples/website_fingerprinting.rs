//! The website fingerprinting case study, end to end: a malicious
//! hypervisor learns which of 45 sites the confidential VM is browsing
//! from four HPC counters — until Aegis is deployed.
//!
//! ```sh
//! cargo run --release --example website_fingerprinting
//! ```

use aegis::attack::TrainConfig;
use aegis::fuzzer::FuzzerConfig;
use aegis::microarch::MicroArch;
use aegis::profiler::{RankConfig, WarmupConfig};
use aegis::sev::{Host, SevMode};
use aegis::workloads::{SecretApp, WebsiteCatalog};
use aegis::{
    AegisConfig, AegisPipeline, ClassifierAttack, CollectConfig, Collector, DefenseDeployment,
    MechanismChoice,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut host = Host::new(MicroArch::AmdEpyc7252, 2, 7);
    let vm = host.launch_vm(1, SevMode::SevSnp)?;
    let app = WebsiteCatalog::new(7);
    let core = host.core_of(vm, 0)?;
    let events = host.core(core).catalog().attack_events().to_vec();
    println!("attacker monitors 4 events on the guest's core:");
    for &e in &events {
        println!("  {}", host.core(core).catalog().get(e).unwrap().name);
    }

    // ── The attack (Section III-C) ─────────────────────────────────────
    let collect = CollectConfig {
        traces_per_secret: 8,
        window_ns: 400_000_000,
        interval_ns: 1_000_000,
        pool: 20,
        seed: 7,
        per_secret_noise: false,
    };
    println!(
        "\ncollecting {} template traces ...",
        45 * collect.traces_per_secret
    );
    let template = Collector::for_traces(collect).dataset(&mut host, vm, 0, &app, &events, None)?;
    let attacker = ClassifierAttack::train(&template, TrainConfig::default(), 7);
    println!(
        "attacker validation accuracy: {:.1}%",
        attacker.curve.final_val_acc() * 100.0
    );

    let mut victim_cfg = collect;
    victim_cfg.seed = 99;
    victim_cfg.traces_per_secret = 4;
    let victim =
        Collector::for_traces(victim_cfg).dataset(&mut host, vm, 0, &app, &events, None)?;
    println!(
        "victim-VM fingerprinting accuracy (undefended): {:.1}%  — the side channel works",
        attacker.accuracy(&victim) * 100.0
    );

    // ── The defense ────────────────────────────────────────────────────
    println!("\nrunning the Aegis offline pipeline ...");
    let cfg = AegisConfig {
        warmup: WarmupConfig {
            probe_ns: 2_000_000,
            passes: 2,
            ..WarmupConfig::default()
        },
        rank: RankConfig {
            reps_per_secret: 2,
            window_ns: 60_000_000,
            ..RankConfig::default()
        },
        fuzzer: FuzzerConfig {
            candidates_per_event: 150,
            confirm_reps: 10,
            ..FuzzerConfig::default()
        },
        fuzz_top_events: 10,
        isa_seed: 7,
        ..AegisConfig::default()
    };
    let plan = AegisPipeline::offline(&mut host, vm, 0, &app, &cfg)?;
    println!(
        "  {} vulnerable events; {} covering gadgets",
        plan.vulnerable_events.len(),
        plan.covering.len()
    );

    for (label, mech) in [
        ("Laplace ε=2⁰", MechanismChoice::Laplace { epsilon: 1.0 }),
        ("d* ε=2³", MechanismChoice::DStar { epsilon: 8.0 }),
    ] {
        let deployment = DefenseDeployment::new(&plan, mech);
        let defended = Collector::for_traces(victim_cfg)
            .dataset(&mut host, vm, 0, &app, &events, Some(&deployment))?;
        println!(
            "victim accuracy under {label}: {:.1}%  (random guess {:.1}%)",
            attacker.accuracy(&defended) * 100.0,
            100.0 / app.n_secrets() as f64
        );
    }
    Ok(())
}
