//! Quickstart: protect an application against HPC side channels in three
//! steps — profile offline, fuzz for gadgets, deploy the obfuscator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aegis::fuzzer::FuzzerConfig;
use aegis::microarch::MicroArch;
use aegis::profiler::{RankConfig, WarmupConfig};
use aegis::sev::{Host, SevMode};
use aegis::workloads::KeystrokeApp;
use aegis::{AegisConfig, AegisPipeline, DefenseDeployment, ObsLevel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Offline stage ───────────────────────────────────────────────────
    // The customer rents a *template server* of the same processor family
    // as the target cloud (here: the paper's AMD EPYC 7252 SEV testbed)
    // and runs the application with representative secrets.
    let mut template = Host::new(MicroArch::AmdEpyc7252, 2, 7);
    let vm = template.launch_vm(1, SevMode::SevSnp)?;
    let app = KeystrokeApp::with_window(600_000_000);

    println!(
        "[1/3] profiling {} on {} ...",
        app_name(&app),
        template.arch()
    );
    // The builder validates as it goes: ε must be positive, thread counts
    // at least 1. `apply_runtime` installs the thread-pool size and the
    // observability level process-wide.
    let cfg = AegisConfig::builder()
        .epsilon(1.0)
        .obs(ObsLevel::Summary)
        .warmup(WarmupConfig {
            probe_ns: 2_000_000,
            passes: 2,
            ..WarmupConfig::default()
        })
        .rank(RankConfig {
            reps_per_secret: 2,
            window_ns: 60_000_000,
            ..RankConfig::default()
        })
        .fuzzer(FuzzerConfig {
            candidates_per_event: 120,
            confirm_reps: 10,
            ..FuzzerConfig::default()
        })
        .fuzz_top_events(8)
        .isa_seed(7)
        .build()?;
    cfg.apply_runtime();
    let plan = AegisPipeline::offline(&mut template, vm, 0, &app, &cfg)?;

    println!(
        "      {} vulnerable HPC events found",
        plan.vulnerable_events.len()
    );
    println!("      most dangerous events by mutual information:");
    for r in plan.rankings.iter().take(5) {
        println!("        {:<40} {:.2} bits", r.name, r.mi_bits);
    }
    println!(
        "[2/3] fuzzer found a covering set of {} gadgets ({} confirmed gadgets before filtering)",
        plan.covering.len(),
        plan.gadget_stats.mean * plan.rankings.len().min(cfg.fuzz_top_events) as f64,
    );

    // ── Online stage ────────────────────────────────────────────────────
    // Ship the plan into the production VM and start the Event Obfuscator
    // with the Laplace mechanism at the paper's operating point ε = 2⁰.
    let deployment = DefenseDeployment::new(&plan, cfg.mechanism);
    let receipt = deployment.deploy(&mut template, vm, 0, 42)?;
    println!(
        "[3/3] obfuscator deployed: {} at ε = 1 (plan {:#018x}, ε-cost {})",
        receipt.mechanism, receipt.plan_id, receipt.epsilon_charged
    );

    // Let the VM run and show that noise is being injected.
    template.reset_vm_stats(vm)?;
    template.run(100_000_000, |_, _, _| {});
    let stats = template.vcpu_stats(vm, 0)?;
    println!(
        "      after 100 ms: {:.2e} noise µops injected ({:.1}% of one core)",
        stats.injected_uops,
        stats.injected_uops / (template.arch().uops_capacity_per_us() * 100_000.0) * 100.0
    );

    // End-of-run observability summary (spans, counters, histograms).
    for line in aegis::obs::render_summary(&aegis::obs::snapshot()).lines() {
        eprintln!("[obs] {line}");
    }
    Ok(())
}

fn app_name(app: &dyn aegis::workloads::SecretApp) -> &str {
    app.name()
}
