//! Multiplexing-fairness and sampling-semantics tests for the perf layer.

use aegis_microarch::{
    named, ActivityVector, Core, EventId, Feature, InterferenceConfig, MicroArch, Origin,
    OriginFilter,
};
use aegis_perf::{PerfMonitor, TraceRecorder};

fn core() -> Core {
    let mut c = Core::new(MicroArch::AmdEpyc7252, 11);
    c.set_interference(InterferenceConfig::isolated());
    c
}

fn steady(uops: f64) -> ActivityVector {
    ActivityVector::from_pairs(&[(Feature::UopsRetired, uops)])
}

fn n_events(c: &Core, n: usize) -> Vec<EventId> {
    let uops = c.catalog().lookup(named::RETIRED_UOPS).unwrap();
    let mut ids = vec![uops];
    ids.extend(
        c.catalog()
            .events()
            .iter()
            .map(|e| e.id)
            .filter(|&e| e != uops)
            .take(n - 1),
    );
    ids
}

#[test]
fn multiplexing_shares_time_fairly_across_groups() {
    // 12 events → 3 groups. After many quanta, every group's scaled count
    // of a universally-responding event is similar: fairness shows up as
    // consistent scaling, which we check via the first event (group 0)
    // against the ground truth.
    let mut c = core();
    let ids = n_events(&c, 12);
    let mut mon = PerfMonitor::open(&mut c, ids, OriginFilter::Any).unwrap();
    assert!(mon.is_multiplexed());
    mon.set_quantum(300_000);
    for _ in 0..300 {
        c.run_mix(&steady(200.0), 100_000, Origin::Host);
        mon.on_executed(&mut c, 100_000);
    }
    // 30 ms at 200 µops/µs = 6e6 true µops; scaled estimate within 25%.
    let counts = mon.read_scaled(&mut c);
    let est = counts[0];
    assert!(
        (est - 6.0e6).abs() / 6.0e6 < 0.25,
        "scaled {est} vs true 6e6"
    );
}

#[test]
fn unmultiplexed_counts_are_exact_up_to_noise() {
    let mut c = core();
    let ids = n_events(&c, 4);
    let mut mon = PerfMonitor::open(&mut c, ids, OriginFilter::Any).unwrap();
    assert!(!mon.is_multiplexed());
    for _ in 0..100 {
        c.run_mix(&steady(200.0), 100_000, Origin::Host);
        mon.on_executed(&mut c, 100_000);
    }
    let counts = mon.read_scaled(&mut c);
    assert!((counts[0] - 2.0e6).abs() / 2.0e6 < 0.05, "{}", counts[0]);
}

#[test]
fn recorder_slices_partition_the_total() {
    let mut c = core();
    let ids = n_events(&c, 1);
    let mut rec = TraceRecorder::open(&mut c, &ids, OriginFilter::Any, 1_000_000).unwrap();
    for _ in 0..100 {
        c.run_mix(&steady(150.0), 100_000, Origin::Host);
        rec.on_executed(&mut c, 100_000);
    }
    let trace = rec.finish(&mut c);
    assert_eq!(trace.len(), 10);
    let total: f64 = trace.row(0).iter().sum();
    // 10 ms at 150 µops/µs.
    assert!((total - 1.5e6).abs() / 1.5e6 < 0.05, "{total}");
    // No slice wildly out of line (steady load).
    for &v in trace.row(0) {
        assert!((v - 1.5e5).abs() / 1.5e5 < 0.2, "{v}");
    }
}

#[test]
fn monitors_can_be_reopened_after_close() {
    let mut c = core();
    let ids = n_events(&c, 4);
    let mon = PerfMonitor::open(&mut c, ids.clone(), OriginFilter::Any).unwrap();
    mon.close(&mut c);
    // Slots are free again.
    let mon2 = PerfMonitor::open(&mut c, ids, OriginFilter::Any).unwrap();
    mon2.close(&mut c);
}

#[test]
fn guest_filtered_monitor_ignores_host_background() {
    let mut c = core();
    let ids = n_events(&c, 2);
    let mut mon = PerfMonitor::open(&mut c, ids, OriginFilter::GuestOnly(3)).unwrap();
    for _ in 0..50 {
        c.run_mix(&steady(100.0), 100_000, Origin::Host);
        c.run_mix(&steady(100.0), 100_000, Origin::Guest(9)); // other guest
        mon.on_executed(&mut c, 200_000);
    }
    let counts = mon.read_scaled(&mut c);
    assert_eq!(counts[0], 0.0, "{counts:?}");
}
