//! # aegis-perf
//!
//! A `perf_event_open`-style monitoring layer over the simulated cores of
//! [`aegis_microarch`]: counter-slot programming with origin filters
//! (pid / exclude-kernel analogues), time multiplexing with
//! enabled/running scaling when more events are requested than the four
//! hardware slots, and interval-sampled trace recording.
//!
//! This is the acquisition path both sides of the Aegis paper use: the
//! malicious host samples four events per 1 ms over 3 s to mount attacks,
//! and the Application Profiler opens groups of `C = 4` events at a time
//! to characterize all of them.

mod lanes;
mod monitor;
mod recorder;
mod trace;

pub use lanes::LaneTraceRecorder;
pub use monitor::{PerfError, PerfMonitor, DEFAULT_QUANTUM_NS};
pub use recorder::TraceRecorder;
pub use trace::Trace;
