//! The perf-style monitor: programs the four hardware counter slots,
//! time-multiplexes larger event groups, and scales counts by
//! enabled/running time exactly like the Linux perf subsystem.

use aegis_faults::{self as faults, FaultPlan, FaultStream};
use aegis_microarch::{Core, CounterConfig, EventId, OriginFilter, COUNTER_SLOTS};
use std::fmt;

/// Default multiplex rotation quantum (the kernel default is on the order
/// of a scheduler tick).
pub const DEFAULT_QUANTUM_NS: u64 = 4_000_000;

/// Programming attempts per slot before the monitor gives the slot up
/// for the rotation (initial try + retries).
pub(crate) const PROGRAM_ATTEMPTS: u32 = 4;

/// Simulated cost of the first programming retry; doubles per attempt
/// (exponential backoff, charged to [`PerfMonitor::retry_lost_ns`]).
pub(crate) const RETRY_BACKOFF_NS: u64 = 1_000;

/// 48-bit PMC value mask (both testbed CPUs expose 48-bit counters).
pub(crate) const PMC_MASK: u64 = (1 << 48) - 1;

/// Error opening or operating a [`PerfMonitor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfError {
    /// No events requested.
    NoEvents,
    /// An event id was rejected by the PMU (unknown on this core).
    UnknownEvent(EventId),
    /// A counter slot could not be programmed even after retries (an
    /// injected MSR-write fault persisted through the backoff schedule).
    ProgramFailed {
        /// The hardware slot that failed.
        slot: usize,
        /// Total attempts made, including the initial try.
        attempts: u32,
    },
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::NoEvents => f.write_str("no events requested"),
            PerfError::UnknownEvent(e) => write!(f, "event {e} unknown on this core"),
            PerfError::ProgramFailed { slot, attempts } => {
                write!(f, "counter slot {slot} failed to program after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for PerfError {}

/// A perf-like monitor over one core.
///
/// When more events are requested than the four hardware slots, groups of
/// four are rotated on a time quantum and counts are *scaled* by
/// enabled/running time — the same time-multiplexing behaviour the paper
/// points out degrades accuracy, which is why the profiler monitors at
/// most `C = 4` events per pass.
///
/// The monitor is driven by the simulation loop: call
/// [`PerfMonitor::on_executed`] after each slice of core execution.
#[derive(Debug)]
pub struct PerfMonitor {
    events: Vec<EventId>,
    filter: OriginFilter,
    groups: Vec<Vec<usize>>,
    active_group: usize,
    quantum_ns: u64,
    time_in_group_ns: u64,
    enabled_ns: u64,
    running_ns: Vec<u64>,
    accumulated: Vec<f64>,
    /// Captured fault plan (ambient at open unless `open_with_faults`).
    faults: FaultPlan,
    /// Keyed fault streams, allocated only under an active plan so the
    /// inert plan consumes zero draws.
    program_stream: Option<FaultStream>,
    read_stream: Option<FaultStream>,
    steal_stream: Option<FaultStream>,
    /// Per-event "currently counting" flags: an event whose slot lost
    /// its programming (injected MSR fault that outlasted the backoff
    /// schedule) is *absent* — it accrues neither counts nor running
    /// time, so scaling never fabricates a clean value for it.
    live: Vec<bool>,
    /// Simulated time charged to programming retry backoff.
    retry_lost_ns: u64,
}

impl PerfMonitor {
    /// Opens a monitor for `events` on `core` with the given origin
    /// filter, programming the first multiplex group.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::NoEvents`] for an empty list and
    /// [`PerfError::UnknownEvent`] if an event is not in the core's
    /// catalog.
    pub fn open(
        core: &mut Core,
        events: Vec<EventId>,
        filter: OriginFilter,
    ) -> Result<Self, PerfError> {
        PerfMonitor::open_with_faults(core, events, filter, faults::plan())
    }

    /// [`PerfMonitor::open`] under an explicit fault plan instead of the
    /// ambient one. Fault streams are keyed by the core's noise base, so
    /// the injected schedule is a pure function of `(plan, core seed)` —
    /// independent of worker count or scheduling.
    ///
    /// # Errors
    ///
    /// As [`PerfMonitor::open`], plus [`PerfError::ProgramFailed`] when
    /// an injected MSR fault outlasts the initial programming's backoff
    /// schedule.
    pub fn open_with_faults(
        core: &mut Core,
        events: Vec<EventId>,
        filter: OriginFilter,
        plan: FaultPlan,
    ) -> Result<Self, PerfError> {
        if events.is_empty() {
            return Err(PerfError::NoEvents);
        }
        for &e in &events {
            if core.catalog().get(e).is_none() {
                return Err(PerfError::UnknownEvent(e));
            }
        }
        let groups: Vec<Vec<usize>> = (0..events.len())
            .collect::<Vec<_>>()
            .chunks(COUNTER_SLOTS)
            .map(<[usize]>::to_vec)
            .collect();
        let n = events.len();
        let active = plan.is_active();
        let instance = core.pmu().noise_base();
        let mut mon = PerfMonitor {
            events,
            filter,
            groups,
            active_group: 0,
            quantum_ns: DEFAULT_QUANTUM_NS,
            time_in_group_ns: 0,
            enabled_ns: 0,
            running_ns: vec![0; n],
            accumulated: vec![0.0; n],
            faults: plan,
            program_stream: active
                .then(|| FaultStream::new(&plan, faults::site::PMC_PROGRAM, instance)),
            read_stream: active
                .then(|| FaultStream::new(&plan, faults::site::COUNTER_READ, instance)),
            steal_stream: active
                .then(|| FaultStream::new(&plan, faults::site::SLOT_STEAL, instance)),
            live: vec![false; n],
            retry_lost_ns: 0,
        };
        mon.program_active(core)?;
        Ok(mon)
    }

    /// Overrides the multiplex rotation quantum.
    pub fn set_quantum(&mut self, quantum_ns: u64) {
        self.quantum_ns = quantum_ns.max(1);
    }

    /// The monitored events in request order.
    pub fn events(&self) -> &[EventId] {
        &self.events
    }

    /// Whether the monitor needs time multiplexing.
    pub fn is_multiplexed(&self) -> bool {
        self.groups.len() > 1
    }

    /// Whether any event of the active group is currently not counting
    /// (its slot lost programming to an injected persistent fault).
    pub fn degraded(&self) -> bool {
        self.groups[self.active_group]
            .iter()
            .any(|&idx| !self.live[idx])
    }

    /// Simulated time spent in programming-retry backoff so far.
    pub fn retry_lost_ns(&self) -> u64 {
        self.retry_lost_ns
    }

    /// Programs the active multiplex group, retrying each slot with
    /// exponential sim-time backoff when the fault plan injects an MSR
    /// write failure. A slot that stays unprogrammable is left dead
    /// (`live[idx] = false`) — its event reads as absent, never clean —
    /// and reported as the `Err`; the remaining slots still program.
    fn program_active(&mut self, core: &mut Core) -> Result<(), PerfError> {
        for slot in 0..COUNTER_SLOTS {
            core.pmu_mut().clear(slot);
        }
        self.live.iter_mut().for_each(|l| *l = false);
        let filter = self.filter;
        let mut first_failure = None;
        let members = self.groups[self.active_group].clone();
        for (slot, &idx) in members.iter().enumerate() {
            let mut attempts = 0;
            let programmed = loop {
                attempts += 1;
                let injected = match &mut self.program_stream {
                    Some(s) => s.chance(self.faults.pmc_program_fail),
                    None => false,
                };
                if !injected {
                    core.pmu_mut()
                        .program(
                            slot,
                            CounterConfig {
                                event: self.events[idx],
                                filter,
                            },
                        )
                        .expect("slot < COUNTER_SLOTS and events validated at open");
                    break true;
                }
                faults::report(
                    "pmc_program",
                    "fail",
                    &[("slot", slot as u64), ("attempt", u64::from(attempts))],
                );
                if attempts >= PROGRAM_ATTEMPTS {
                    break false;
                }
                // Sim-time exponential backoff before the retry.
                self.retry_lost_ns += RETRY_BACKOFF_NS << (attempts - 1);
            };
            self.live[idx] = programmed;
            if !programmed && first_failure.is_none() {
                first_failure = Some(PerfError::ProgramFailed { slot, attempts });
            }
        }
        match first_failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Applies the per-read value faults (corruption, saturation,
    /// 48-bit overflow wrap) to one collected counter value.
    fn fault_read_value(&mut self, slot: usize, v: u64) -> u64 {
        let Some(s) = self.read_stream.as_mut() else {
            return v;
        };
        let mut out = v;
        if s.chance(self.faults.counter_corrupt) {
            out ^= s.bits() & 0xFFFF;
            faults::report("counter_read", "corrupt", &[("slot", slot as u64)]);
        }
        if s.chance(self.faults.counter_saturate) {
            out = PMC_MASK;
            faults::report("counter_read", "saturate", &[("slot", slot as u64)]);
        }
        if s.chance(self.faults.counter_overflow) {
            // The 48-bit counter wrapped during the quantum: only the
            // low-order residue survives.
            out &= 0x3FF;
            faults::report("counter_read", "overflow", &[("slot", slot as u64)]);
        }
        out
    }

    fn collect_active(&mut self, core: &mut Core) {
        // One batched read of the whole active multiplex group instead of
        // four slot-by-slot RDPMC round trips.
        let group = core.pmu().read_group();
        // At most one slot per collection is stolen by a concurrent host
        // agent: its quantum's count belongs to the thief and is
        // discarded (absent, not fabricated).
        let stolen = self.steal_stream.as_mut().and_then(|s| {
            s.chance(self.faults.slot_steal)
                .then(|| s.uniform(COUNTER_SLOTS as u64) as usize)
        });
        let members = self.groups[self.active_group].clone();
        for (slot, &idx) in members.iter().enumerate() {
            if !self.live[idx] {
                // Dead slot: nothing was counting; leave the event absent.
                continue;
            }
            let v = group[slot].expect("live slots are programmed");
            core.pmu_mut().reset_value(slot);
            if stolen == Some(slot) {
                faults::report("slot_steal", "stolen", &[("slot", slot as u64)]);
                continue;
            }
            self.accumulated[idx] += self.fault_read_value(slot, v) as f64;
        }
    }

    /// Notifies the monitor that the core just executed `dur_ns` of work.
    /// Rotates the active multiplex group when the quantum expires.
    pub fn on_executed(&mut self, core: &mut Core, dur_ns: u64) {
        self.enabled_ns += dur_ns;
        for &idx in &self.groups[self.active_group] {
            if self.live[idx] {
                self.running_ns[idx] += dur_ns;
            }
        }
        self.time_in_group_ns += dur_ns;
        if self.is_multiplexed() && self.time_in_group_ns >= self.quantum_ns {
            self.collect_active(core);
            self.active_group = (self.active_group + 1) % self.groups.len();
            // A rotation that fails to program keeps the monitor running
            // degraded: the dead slots were reported per-attempt above
            // and read as absent until a later rotation succeeds.
            let _ = self.program_active(core);
            self.time_in_group_ns = 0;
        }
    }

    /// Reads the scaled cumulative counts of all events:
    /// `count * enabled / running`, the perf multiplexing estimate.
    pub fn read_scaled(&mut self, core: &mut Core) -> Vec<f64> {
        self.collect_active(core);
        let observe = self.is_multiplexed() && aegis_obs::enabled();
        self.accumulated
            .iter()
            .zip(&self.running_ns)
            .map(|(&acc, &run)| {
                if run == 0 {
                    0.0
                } else {
                    let scale = self.enabled_ns as f64 / run as f64;
                    if observe {
                        aegis_obs::histogram_record("perf.multiplex_scale", scale);
                    }
                    acc * scale
                }
            })
            .collect()
    }

    /// Reads scaled counts and resets the accumulation window — one
    /// sampling interval.
    pub fn sample_and_reset(&mut self, core: &mut Core) -> Vec<f64> {
        let out = self.read_scaled(core);
        self.accumulated.iter_mut().for_each(|v| *v = 0.0);
        self.running_ns.iter_mut().for_each(|v| *v = 0);
        self.enabled_ns = 0;
        out
    }

    /// Closes the monitor, freeing the hardware slots.
    pub fn close(self, core: &mut Core) {
        for slot in 0..COUNTER_SLOTS {
            core.pmu_mut().clear(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_faults::FaultPlan;
    use aegis_microarch::{ActivityVector, Feature, InterferenceConfig, MicroArch, Origin};

    fn core() -> Core {
        let mut c = Core::new(MicroArch::AmdEpyc7252, 11);
        c.set_interference(InterferenceConfig::isolated());
        c
    }

    fn uops_rate(r: f64) -> ActivityVector {
        ActivityVector::from_pairs(&[(Feature::UopsRetired, r)])
    }

    #[test]
    fn open_rejects_empty_and_unknown() {
        let mut c = core();
        assert_eq!(
            PerfMonitor::open(&mut c, vec![], OriginFilter::Any).err(),
            Some(PerfError::NoEvents)
        );
        assert_eq!(
            PerfMonitor::open(&mut c, vec![EventId(u32::MAX)], OriginFilter::Any).err(),
            Some(PerfError::UnknownEvent(EventId(u32::MAX)))
        );
    }

    #[test]
    fn four_events_not_multiplexed() {
        let mut c = core();
        let ids = c.catalog().attack_events().to_vec();
        let mon = PerfMonitor::open(&mut c, ids, OriginFilter::Any).unwrap();
        assert!(!mon.is_multiplexed());
    }

    #[test]
    fn counts_accumulate_unmultiplexed() {
        let mut c = core();
        let ev = c
            .catalog()
            .lookup(aegis_microarch::named::RETIRED_UOPS)
            .unwrap();
        let mut mon = PerfMonitor::open(&mut c, vec![ev], OriginFilter::Any).unwrap();
        for _ in 0..10 {
            c.run_mix(&uops_rate(100.0), 100_000, Origin::Host); // 0.1ms
            mon.on_executed(&mut c, 100_000);
        }
        let counts = mon.read_scaled(&mut c);
        // 1 ms total at 100 uops/us = 100k uops.
        assert!((counts[0] - 100_000.0).abs() < 15_000.0, "{}", counts[0]);
    }

    #[test]
    fn multiplexed_scaling_estimates_true_count() {
        let mut c = core();
        // Monitor RETIRED_UOPS plus 7 fillers → 2 groups, ~50% running each.
        let cat = c.catalog();
        let uops_ev = cat.lookup(aegis_microarch::named::RETIRED_UOPS).unwrap();
        let mut ids = vec![uops_ev];
        ids.extend(
            cat.events()
                .iter()
                .map(|e| e.id)
                .filter(|&e| e != uops_ev)
                .take(7),
        );
        let mut mon = PerfMonitor::open(&mut c, ids, OriginFilter::Any).unwrap();
        assert!(mon.is_multiplexed());
        mon.set_quantum(200_000);
        let steady = uops_rate(100.0);
        for _ in 0..200 {
            c.run_mix(&steady, 100_000, Origin::Host);
            mon.on_executed(&mut c, 100_000);
        }
        let counts = mon.read_scaled(&mut c);
        // Total 20 ms at 100 uops/us = 2e6 uops; RETIRED_UOPS has weight 1.0
        // and ran only ~half the time, so scaling must recover ~2e6.
        let expected = 2.0e6;
        assert!(
            (counts[0] - expected).abs() / expected < 0.25,
            "scaled {} vs expected {expected}",
            counts[0]
        );
    }

    #[test]
    fn sample_and_reset_windows_are_independent() {
        let mut c = core();
        let ev = c
            .catalog()
            .lookup(aegis_microarch::named::RETIRED_UOPS)
            .unwrap();
        let mut mon = PerfMonitor::open(&mut c, vec![ev], OriginFilter::Any).unwrap();
        c.run_mix(&uops_rate(50.0), 1_000_000, Origin::Host);
        mon.on_executed(&mut c, 1_000_000);
        let s1 = mon.sample_and_reset(&mut c);
        let s2 = mon.sample_and_reset(&mut c);
        assert!(s1[0] > 10_000.0);
        assert_eq!(s2[0], 0.0);
    }

    #[test]
    fn guest_filter_sees_only_guest_activity() {
        let mut c = core();
        let ev = c
            .catalog()
            .lookup(aegis_microarch::named::RETIRED_UOPS)
            .unwrap();
        let mut mon = PerfMonitor::open(&mut c, vec![ev], OriginFilter::GuestOnly(1)).unwrap();
        c.run_mix(&uops_rate(100.0), 1_000_000, Origin::Host);
        mon.on_executed(&mut c, 1_000_000);
        assert_eq!(mon.read_scaled(&mut c)[0], 0.0);
        c.run_mix(&uops_rate(100.0), 1_000_000, Origin::Guest(1));
        mon.on_executed(&mut c, 1_000_000);
        assert!(mon.read_scaled(&mut c)[0] > 0.0);
    }

    #[test]
    fn persistent_program_fault_errors_at_open() {
        let mut c = core();
        let ev = c
            .catalog()
            .lookup(aegis_microarch::named::RETIRED_UOPS)
            .unwrap();
        let plan = FaultPlan {
            seed: 1,
            pmc_program_fail: 1.0,
            ..FaultPlan::none()
        };
        match PerfMonitor::open_with_faults(&mut c, vec![ev], OriginFilter::Any, plan) {
            Err(PerfError::ProgramFailed { slot: 0, attempts }) => {
                assert_eq!(attempts, PROGRAM_ATTEMPTS);
            }
            other => panic!("expected ProgramFailed, got {other:?}"),
        }
    }

    #[test]
    fn transient_program_fault_recovers_with_backoff() {
        // Moderate failure rate: some attempts fail, the retry schedule
        // absorbs them, and the monitor still counts.
        let mut c = core();
        let ev = c
            .catalog()
            .lookup(aegis_microarch::named::RETIRED_UOPS)
            .unwrap();
        let plan = FaultPlan {
            seed: 3,
            pmc_program_fail: 0.4,
            ..FaultPlan::none()
        };
        let mut mon = PerfMonitor::open_with_faults(&mut c, vec![ev], OriginFilter::Any, plan)
            .expect("p=0.4 cannot survive 4 attempts at seed 3");
        assert!(!mon.degraded());
        c.run_mix(&uops_rate(100.0), 1_000_000, Origin::Host);
        mon.on_executed(&mut c, 1_000_000);
        assert!(mon.read_scaled(&mut c)[0] > 0.0);
    }

    #[test]
    fn inert_plan_matches_plain_open_bit_for_bit() {
        let run = |faulted: bool| {
            let mut c = core();
            let ev = c
                .catalog()
                .lookup(aegis_microarch::named::RETIRED_UOPS)
                .unwrap();
            let mut mon = if faulted {
                PerfMonitor::open_with_faults(
                    &mut c,
                    vec![ev],
                    OriginFilter::Any,
                    FaultPlan::none(),
                )
                .unwrap()
            } else {
                PerfMonitor::open(&mut c, vec![ev], OriginFilter::Any).unwrap()
            };
            for _ in 0..10 {
                c.run_mix(&uops_rate(70.0), 100_000, Origin::Host);
                mon.on_executed(&mut c, 100_000);
            }
            mon.read_scaled(&mut c)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn fault_schedule_is_reproducible() {
        let run = || {
            let mut c = core();
            let cat = c.catalog();
            let ids: Vec<EventId> = cat.events().iter().map(|e| e.id).take(8).collect();
            let plan = FaultPlan {
                seed: 77,
                pmc_program_fail: 0.2,
                slot_steal: 0.3,
                counter_corrupt: 0.3,
                counter_saturate: 0.05,
                counter_overflow: 0.05,
                ..FaultPlan::none()
            };
            let mut mon =
                PerfMonitor::open_with_faults(&mut c, ids, OriginFilter::Any, plan).unwrap();
            mon.set_quantum(200_000);
            for _ in 0..50 {
                c.run_mix(&uops_rate(90.0), 100_000, Origin::Host);
                mon.on_executed(&mut c, 100_000);
            }
            (mon.read_scaled(&mut c), mon.retry_lost_ns())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn close_frees_slots() {
        let mut c = core();
        let ev = c
            .catalog()
            .lookup(aegis_microarch::named::RETIRED_UOPS)
            .unwrap();
        let mon = PerfMonitor::open(&mut c, vec![ev], OriginFilter::Any).unwrap();
        mon.close(&mut c);
        assert!(c.pmu().rdpmc(0).is_err());
    }
}
