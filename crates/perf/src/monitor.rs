//! The perf-style monitor: programs the four hardware counter slots,
//! time-multiplexes larger event groups, and scales counts by
//! enabled/running time exactly like the Linux perf subsystem.

use aegis_microarch::{Core, CounterConfig, EventId, OriginFilter, COUNTER_SLOTS};
use std::fmt;

/// Default multiplex rotation quantum (the kernel default is on the order
/// of a scheduler tick).
pub const DEFAULT_QUANTUM_NS: u64 = 4_000_000;

/// Error opening or operating a [`PerfMonitor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfError {
    /// No events requested.
    NoEvents,
    /// An event id was rejected by the PMU (unknown on this core).
    UnknownEvent(EventId),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::NoEvents => f.write_str("no events requested"),
            PerfError::UnknownEvent(e) => write!(f, "event {e} unknown on this core"),
        }
    }
}

impl std::error::Error for PerfError {}

/// A perf-like monitor over one core.
///
/// When more events are requested than the four hardware slots, groups of
/// four are rotated on a time quantum and counts are *scaled* by
/// enabled/running time — the same time-multiplexing behaviour the paper
/// points out degrades accuracy, which is why the profiler monitors at
/// most `C = 4` events per pass.
///
/// The monitor is driven by the simulation loop: call
/// [`PerfMonitor::on_executed`] after each slice of core execution.
#[derive(Debug)]
pub struct PerfMonitor {
    events: Vec<EventId>,
    filter: OriginFilter,
    groups: Vec<Vec<usize>>,
    active_group: usize,
    quantum_ns: u64,
    time_in_group_ns: u64,
    enabled_ns: u64,
    running_ns: Vec<u64>,
    accumulated: Vec<f64>,
}

impl PerfMonitor {
    /// Opens a monitor for `events` on `core` with the given origin
    /// filter, programming the first multiplex group.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::NoEvents`] for an empty list and
    /// [`PerfError::UnknownEvent`] if an event is not in the core's
    /// catalog.
    pub fn open(
        core: &mut Core,
        events: Vec<EventId>,
        filter: OriginFilter,
    ) -> Result<Self, PerfError> {
        if events.is_empty() {
            return Err(PerfError::NoEvents);
        }
        for &e in &events {
            if core.catalog().get(e).is_none() {
                return Err(PerfError::UnknownEvent(e));
            }
        }
        let groups: Vec<Vec<usize>> = (0..events.len())
            .collect::<Vec<_>>()
            .chunks(COUNTER_SLOTS)
            .map(<[usize]>::to_vec)
            .collect();
        let n = events.len();
        let mut mon = PerfMonitor {
            events,
            filter,
            groups,
            active_group: 0,
            quantum_ns: DEFAULT_QUANTUM_NS,
            time_in_group_ns: 0,
            enabled_ns: 0,
            running_ns: vec![0; n],
            accumulated: vec![0.0; n],
        };
        mon.program_active(core);
        Ok(mon)
    }

    /// Overrides the multiplex rotation quantum.
    pub fn set_quantum(&mut self, quantum_ns: u64) {
        self.quantum_ns = quantum_ns.max(1);
    }

    /// The monitored events in request order.
    pub fn events(&self) -> &[EventId] {
        &self.events
    }

    /// Whether the monitor needs time multiplexing.
    pub fn is_multiplexed(&self) -> bool {
        self.groups.len() > 1
    }

    fn program_active(&mut self, core: &mut Core) {
        for slot in 0..COUNTER_SLOTS {
            core.pmu_mut().clear(slot);
        }
        let filter = self.filter;
        for (slot, &idx) in self.groups[self.active_group].iter().enumerate() {
            core.pmu_mut()
                .program(
                    slot,
                    CounterConfig {
                        event: self.events[idx],
                        filter,
                    },
                )
                .expect("events validated at open");
        }
    }

    fn collect_active(&mut self, core: &mut Core) {
        // One batched read of the whole active multiplex group instead of
        // four slot-by-slot RDPMC round trips.
        let group = core.pmu().read_group();
        for (slot, &idx) in self.groups[self.active_group].iter().enumerate() {
            let v = group[slot].expect("slot programmed") as f64;
            self.accumulated[idx] += v;
            core.pmu_mut().reset_value(slot);
        }
    }

    /// Notifies the monitor that the core just executed `dur_ns` of work.
    /// Rotates the active multiplex group when the quantum expires.
    pub fn on_executed(&mut self, core: &mut Core, dur_ns: u64) {
        self.enabled_ns += dur_ns;
        for &idx in &self.groups[self.active_group] {
            self.running_ns[idx] += dur_ns;
        }
        self.time_in_group_ns += dur_ns;
        if self.is_multiplexed() && self.time_in_group_ns >= self.quantum_ns {
            self.collect_active(core);
            self.active_group = (self.active_group + 1) % self.groups.len();
            self.program_active(core);
            self.time_in_group_ns = 0;
        }
    }

    /// Reads the scaled cumulative counts of all events:
    /// `count * enabled / running`, the perf multiplexing estimate.
    pub fn read_scaled(&mut self, core: &mut Core) -> Vec<f64> {
        self.collect_active(core);
        let observe = self.is_multiplexed() && aegis_obs::enabled();
        self.accumulated
            .iter()
            .zip(&self.running_ns)
            .map(|(&acc, &run)| {
                if run == 0 {
                    0.0
                } else {
                    let scale = self.enabled_ns as f64 / run as f64;
                    if observe {
                        aegis_obs::histogram_record("perf.multiplex_scale", scale);
                    }
                    acc * scale
                }
            })
            .collect()
    }

    /// Reads scaled counts and resets the accumulation window — one
    /// sampling interval.
    pub fn sample_and_reset(&mut self, core: &mut Core) -> Vec<f64> {
        let out = self.read_scaled(core);
        self.accumulated.iter_mut().for_each(|v| *v = 0.0);
        self.running_ns.iter_mut().for_each(|v| *v = 0);
        self.enabled_ns = 0;
        out
    }

    /// Closes the monitor, freeing the hardware slots.
    pub fn close(self, core: &mut Core) {
        for slot in 0..COUNTER_SLOTS {
            core.pmu_mut().clear(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::{ActivityVector, Feature, InterferenceConfig, MicroArch, Origin};

    fn core() -> Core {
        let mut c = Core::new(MicroArch::AmdEpyc7252, 11);
        c.set_interference(InterferenceConfig::isolated());
        c
    }

    fn uops_rate(r: f64) -> ActivityVector {
        ActivityVector::from_pairs(&[(Feature::UopsRetired, r)])
    }

    #[test]
    fn open_rejects_empty_and_unknown() {
        let mut c = core();
        assert_eq!(
            PerfMonitor::open(&mut c, vec![], OriginFilter::Any).err(),
            Some(PerfError::NoEvents)
        );
        assert_eq!(
            PerfMonitor::open(&mut c, vec![EventId(u32::MAX)], OriginFilter::Any).err(),
            Some(PerfError::UnknownEvent(EventId(u32::MAX)))
        );
    }

    #[test]
    fn four_events_not_multiplexed() {
        let mut c = core();
        let ids = c.catalog().attack_events().to_vec();
        let mon = PerfMonitor::open(&mut c, ids, OriginFilter::Any).unwrap();
        assert!(!mon.is_multiplexed());
    }

    #[test]
    fn counts_accumulate_unmultiplexed() {
        let mut c = core();
        let ev = c
            .catalog()
            .lookup(aegis_microarch::named::RETIRED_UOPS)
            .unwrap();
        let mut mon = PerfMonitor::open(&mut c, vec![ev], OriginFilter::Any).unwrap();
        for _ in 0..10 {
            c.run_mix(&uops_rate(100.0), 100_000, Origin::Host); // 0.1ms
            mon.on_executed(&mut c, 100_000);
        }
        let counts = mon.read_scaled(&mut c);
        // 1 ms total at 100 uops/us = 100k uops.
        assert!((counts[0] - 100_000.0).abs() < 15_000.0, "{}", counts[0]);
    }

    #[test]
    fn multiplexed_scaling_estimates_true_count() {
        let mut c = core();
        // Monitor RETIRED_UOPS plus 7 fillers → 2 groups, ~50% running each.
        let cat = c.catalog();
        let uops_ev = cat.lookup(aegis_microarch::named::RETIRED_UOPS).unwrap();
        let mut ids = vec![uops_ev];
        ids.extend(
            cat.events()
                .iter()
                .map(|e| e.id)
                .filter(|&e| e != uops_ev)
                .take(7),
        );
        let mut mon = PerfMonitor::open(&mut c, ids, OriginFilter::Any).unwrap();
        assert!(mon.is_multiplexed());
        mon.set_quantum(200_000);
        let steady = uops_rate(100.0);
        for _ in 0..200 {
            c.run_mix(&steady, 100_000, Origin::Host);
            mon.on_executed(&mut c, 100_000);
        }
        let counts = mon.read_scaled(&mut c);
        // Total 20 ms at 100 uops/us = 2e6 uops; RETIRED_UOPS has weight 1.0
        // and ran only ~half the time, so scaling must recover ~2e6.
        let expected = 2.0e6;
        assert!(
            (counts[0] - expected).abs() / expected < 0.25,
            "scaled {} vs expected {expected}",
            counts[0]
        );
    }

    #[test]
    fn sample_and_reset_windows_are_independent() {
        let mut c = core();
        let ev = c
            .catalog()
            .lookup(aegis_microarch::named::RETIRED_UOPS)
            .unwrap();
        let mut mon = PerfMonitor::open(&mut c, vec![ev], OriginFilter::Any).unwrap();
        c.run_mix(&uops_rate(50.0), 1_000_000, Origin::Host);
        mon.on_executed(&mut c, 1_000_000);
        let s1 = mon.sample_and_reset(&mut c);
        let s2 = mon.sample_and_reset(&mut c);
        assert!(s1[0] > 10_000.0);
        assert_eq!(s2[0], 0.0);
    }

    #[test]
    fn guest_filter_sees_only_guest_activity() {
        let mut c = core();
        let ev = c
            .catalog()
            .lookup(aegis_microarch::named::RETIRED_UOPS)
            .unwrap();
        let mut mon = PerfMonitor::open(&mut c, vec![ev], OriginFilter::GuestOnly(1)).unwrap();
        c.run_mix(&uops_rate(100.0), 1_000_000, Origin::Host);
        mon.on_executed(&mut c, 1_000_000);
        assert_eq!(mon.read_scaled(&mut c)[0], 0.0);
        c.run_mix(&uops_rate(100.0), 1_000_000, Origin::Guest(1));
        mon.on_executed(&mut c, 1_000_000);
        assert!(mon.read_scaled(&mut c)[0] > 0.0);
    }

    #[test]
    fn close_frees_slots() {
        let mut c = core();
        let ev = c
            .catalog()
            .lookup(aegis_microarch::named::RETIRED_UOPS)
            .unwrap();
        let mon = PerfMonitor::open(&mut c, vec![ev], OriginFilter::Any).unwrap();
        mon.close(&mut c);
        assert!(c.pmu().rdpmc(0).is_err());
    }
}
