//! Lane-batched trace recording over [`CoreBatch`]: one recorder driving
//! every lane of a lane group through the exact [`PerfMonitor`] +
//! [`TraceRecorder`] arithmetic, amortizing the monitor bookkeeping that
//! the scalar path repeats per forked host.
//!
//! # Why one shared fault/multiplex state is bit-exact
//!
//! In the fleet measurement plane every lane forks from the *same*
//! prepared host core ([`CoreBatch::from_core_state`]), so all lanes share
//! one measurement-noise base — and the scalar reference opens each fork's
//! monitor with fault streams keyed by that same base. Monitor fault
//! draws (programming failures, read corruption, slot steals) are
//! consumed on a purely *time- and structure-driven* schedule: one
//! `chance` per programming attempt, three per collected live slot, one
//! per collection for steals — never conditioned on counter *values*.
//! Lanes execute in lockstep (the driver reports identical durations to
//! every lane), so each fork's stream sits at the same position at every
//! call. The recorder therefore keeps **one** stream set, draws once per
//! structural event, and applies the drawn fault (the same XOR mask,
//! saturation, or wrap each fork would have drawn) to every lane's own
//! value. The same argument covers `live` flags, multiplex rotation, and
//! enabled/running time: they are identical across the scalar forks, so
//! they are shared here. Everything value-carrying — counter
//! accumulations and the traces themselves — stays per lane.
//!
//! One observable difference is allowed: `aegis_faults::report` and the
//! multiplex-scale histogram fire once per *batch* rather than once per
//! lane. Both are observability-only; trace bytes are unaffected.
//!
//! [`TraceRecorder`]: crate::TraceRecorder

use crate::monitor::{PerfError, DEFAULT_QUANTUM_NS, PMC_MASK, PROGRAM_ATTEMPTS, RETRY_BACKOFF_NS};
use crate::trace::Trace;
use aegis_faults::{self as faults, FaultPlan, FaultStream};
use aegis_microarch::{CoreBatch, CounterConfig, EventId, OriginFilter, COUNTER_SLOTS};

/// Records one [`Trace`] per lane of a [`CoreBatch`] lane group, sampling
/// at a fixed interval exactly like [`TraceRecorder`] does per core.
///
/// [`TraceRecorder`]: crate::TraceRecorder
#[derive(Debug)]
pub struct LaneTraceRecorder {
    events: Vec<EventId>,
    filter: OriginFilter,
    groups: Vec<Vec<usize>>,
    active_group: usize,
    quantum_ns: u64,
    time_in_group_ns: u64,
    /// Enabled/running bookkeeping is lockstep across lanes (see module
    /// docs), so it is stored once.
    enabled_ns: u64,
    running_ns: Vec<u64>,
    /// Per-lane accumulations, row `lane` of `n_events` values.
    accumulated: Vec<f64>,
    faults: FaultPlan,
    program_stream: Option<FaultStream>,
    read_stream: Option<FaultStream>,
    steal_stream: Option<FaultStream>,
    live: Vec<bool>,
    retry_lost_ns: u64,
    interval_ns: u64,
    elapsed_in_interval_ns: u64,
    traces: Vec<Trace>,
    n_lanes: usize,
    /// Scratch for one collection's raw per-(slot, lane) values.
    collect_scratch: Vec<u64>,
}

impl LaneTraceRecorder {
    /// Opens a recorder over every lane of `batch` — the lane-group
    /// analogue of [`TraceRecorder::open_with_faults`] per fork.
    ///
    /// All lanes must share one measurement-noise base (the lane-group
    /// invariant [`CoreBatch::from_core_state`] establishes); that base
    /// keys the shared fault streams exactly as it keys each scalar
    /// fork's.
    ///
    /// # Errors
    ///
    /// As [`TraceRecorder::open_with_faults`]: [`PerfError::NoEvents`],
    /// [`PerfError::UnknownEvent`], or [`PerfError::ProgramFailed`] when
    /// an injected MSR fault outlasts the backoff schedule. Because the
    /// fault schedule is keyed by the shared noise base, an open failure
    /// is common to every lane, exactly as it is to every scalar fork.
    ///
    /// # Panics
    ///
    /// If the batch has zero lanes or the lanes disagree on their noise
    /// base (not a lane group).
    ///
    /// [`TraceRecorder::open_with_faults`]: crate::TraceRecorder::open_with_faults
    pub fn open(
        batch: &mut CoreBatch,
        events: &[EventId],
        filter: OriginFilter,
        interval_ns: u64,
        plan: FaultPlan,
    ) -> Result<Self, PerfError> {
        if events.is_empty() {
            return Err(PerfError::NoEvents);
        }
        let catalog = batch.catalog();
        for &e in events {
            if catalog.get(e).is_none() {
                return Err(PerfError::UnknownEvent(e));
            }
        }
        let n_lanes = batch.n_lanes();
        assert!(n_lanes > 0, "lane group must have at least one lane");
        let instance = batch.noise_base(0);
        for lane in 1..n_lanes {
            assert_eq!(
                batch.noise_base(lane),
                instance,
                "LaneTraceRecorder requires a lane group (identical noise bases)"
            );
        }
        let groups: Vec<Vec<usize>> = (0..events.len())
            .collect::<Vec<_>>()
            .chunks(COUNTER_SLOTS)
            .map(<[usize]>::to_vec)
            .collect();
        let n = events.len();
        let active = plan.is_active();
        let mut rec = LaneTraceRecorder {
            events: events.to_vec(),
            filter,
            groups,
            active_group: 0,
            quantum_ns: DEFAULT_QUANTUM_NS,
            time_in_group_ns: 0,
            enabled_ns: 0,
            running_ns: vec![0; n],
            accumulated: vec![0.0; n * n_lanes],
            faults: plan,
            program_stream: active
                .then(|| FaultStream::new(&plan, faults::site::PMC_PROGRAM, instance)),
            read_stream: active
                .then(|| FaultStream::new(&plan, faults::site::COUNTER_READ, instance)),
            steal_stream: active
                .then(|| FaultStream::new(&plan, faults::site::SLOT_STEAL, instance)),
            live: vec![false; n],
            retry_lost_ns: 0,
            interval_ns: interval_ns.max(1),
            elapsed_in_interval_ns: 0,
            traces: (0..n_lanes)
                .map(|_| Trace::new(events.to_vec(), interval_ns))
                .collect(),
            n_lanes,
            collect_scratch: vec![0; COUNTER_SLOTS * n_lanes],
        };
        rec.program_active(batch)?;
        Ok(rec)
    }

    /// Whether the active group currently has a dead (injected fault)
    /// slot — common to every lane, as in each scalar fork.
    pub fn degraded(&self) -> bool {
        self.groups[self.active_group]
            .iter()
            .any(|&idx| !self.live[idx])
    }

    /// Completed samples so far (identical on every lane).
    pub fn len(&self) -> usize {
        self.traces[0].len()
    }

    /// Whether no full interval has completed yet.
    pub fn is_empty(&self) -> bool {
        self.traces[0].is_empty()
    }

    /// Mirrors `PerfMonitor::program_active`: one shared attempt/backoff
    /// schedule (the forks' schedules are identical), programming each
    /// surviving slot on every lane at once.
    fn program_active(&mut self, batch: &mut CoreBatch) -> Result<(), PerfError> {
        for slot in 0..COUNTER_SLOTS {
            batch.clear_slot(slot);
        }
        self.live.iter_mut().for_each(|l| *l = false);
        let filter = self.filter;
        let mut first_failure = None;
        let members = self.groups[self.active_group].clone();
        for (slot, &idx) in members.iter().enumerate() {
            let mut attempts = 0;
            let programmed = loop {
                attempts += 1;
                let injected = match &mut self.program_stream {
                    Some(s) => s.chance(self.faults.pmc_program_fail),
                    None => false,
                };
                if !injected {
                    batch
                        .program(
                            slot,
                            CounterConfig {
                                event: self.events[idx],
                                filter,
                            },
                        )
                        .expect("slot < COUNTER_SLOTS and events validated at open");
                    break true;
                }
                faults::report(
                    "pmc_program",
                    "fail",
                    &[("slot", slot as u64), ("attempt", u64::from(attempts))],
                );
                if attempts >= PROGRAM_ATTEMPTS {
                    break false;
                }
                self.retry_lost_ns += RETRY_BACKOFF_NS << (attempts - 1);
            };
            self.live[idx] = programmed;
            if !programmed && first_failure.is_none() {
                first_failure = Some(PerfError::ProgramFailed { slot, attempts });
            }
        }
        match first_failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Mirrors `PerfMonitor::collect_active` across all lanes: per-lane
    /// raw reads in the scalar `read_group` slot order, then one shared
    /// steal draw, then the shared per-slot value faults applied to every
    /// lane's own value.
    fn collect_active(&mut self, batch: &mut CoreBatch) {
        // Raw reads. The scalar `read_group` reads every programmed slot
        // in slot order; after `program_active` the programmed slots are
        // exactly the live member slots. Draw accounting is per
        // (lane, slot), so slot-major iteration is bit-equal to each
        // fork's own read.
        for slot in 0..COUNTER_SLOTS {
            if batch.programmed_event(slot).is_none() {
                continue;
            }
            for lane in 0..self.n_lanes {
                self.collect_scratch[slot * self.n_lanes + lane] = batch
                    .rdpmc(lane, slot)
                    .expect("live slots are programmed");
            }
        }
        let stolen = self.steal_stream.as_mut().and_then(|s| {
            s.chance(self.faults.slot_steal)
                .then(|| s.uniform(COUNTER_SLOTS as u64) as usize)
        });
        let members = self.groups[self.active_group].clone();
        for (slot, &idx) in members.iter().enumerate() {
            if !self.live[idx] {
                continue;
            }
            for lane in 0..self.n_lanes {
                batch.reset_value(lane, slot);
            }
            if stolen == Some(slot) {
                faults::report("slot_steal", "stolen", &[("slot", slot as u64)]);
                continue;
            }
            // Shared draw, per-lane application: each fork would have
            // drawn exactly this corruption mask / saturation / wrap at
            // this position of its own (identically keyed) stream.
            let (corrupt_mask, saturate, overflow) = match self.read_stream.as_mut() {
                None => (None, false, false),
                Some(s) => {
                    let mask = s.chance(self.faults.counter_corrupt).then(|| {
                        let m = s.bits() & 0xFFFF;
                        faults::report("counter_read", "corrupt", &[("slot", slot as u64)]);
                        m
                    });
                    let sat = s.chance(self.faults.counter_saturate);
                    if sat {
                        faults::report("counter_read", "saturate", &[("slot", slot as u64)]);
                    }
                    let ovf = s.chance(self.faults.counter_overflow);
                    if ovf {
                        faults::report("counter_read", "overflow", &[("slot", slot as u64)]);
                    }
                    (mask, sat, ovf)
                }
            };
            for lane in 0..self.n_lanes {
                let mut out = self.collect_scratch[slot * self.n_lanes + lane];
                if let Some(m) = corrupt_mask {
                    out ^= m;
                }
                if saturate {
                    out = PMC_MASK;
                }
                if overflow {
                    out &= 0x3FF;
                }
                self.accumulated[lane * self.events.len() + idx] += out as f64;
            }
        }
    }

    /// Reports that every lane executed `dur_ns`, rotating multiplex
    /// groups and closing sampling intervals exactly like the scalar
    /// monitor + recorder pair.
    pub fn on_executed(&mut self, batch: &mut CoreBatch, dur_ns: u64) {
        self.enabled_ns += dur_ns;
        for &idx in &self.groups[self.active_group] {
            if self.live[idx] {
                self.running_ns[idx] += dur_ns;
            }
        }
        self.time_in_group_ns += dur_ns;
        if self.groups.len() > 1 && self.time_in_group_ns >= self.quantum_ns {
            self.collect_active(batch);
            self.active_group = (self.active_group + 1) % self.groups.len();
            // A failed rotation keeps the recorder running degraded,
            // exactly like the scalar monitor.
            let _ = self.program_active(batch);
            self.time_in_group_ns = 0;
        }
        self.elapsed_in_interval_ns += dur_ns;
        while self.elapsed_in_interval_ns >= self.interval_ns {
            self.sample_and_reset(batch);
            self.elapsed_in_interval_ns -= self.interval_ns;
        }
    }

    /// Mirrors `PerfMonitor::sample_and_reset` + `Trace::push_slice` per
    /// lane: scaled counts (`count × enabled / running`) appended to each
    /// lane's trace, then the accumulation window reset.
    fn sample_and_reset(&mut self, batch: &mut CoreBatch) {
        self.collect_active(batch);
        let n = self.events.len();
        let multiplexed = self.groups.len() > 1;
        let observe = multiplexed && aegis_obs::enabled();
        let mut slice = vec![0.0; n];
        for lane in 0..self.n_lanes {
            for (i, s) in slice.iter_mut().enumerate() {
                let run = self.running_ns[i];
                *s = if run == 0 {
                    0.0
                } else {
                    let scale = self.enabled_ns as f64 / run as f64;
                    if observe && lane == 0 {
                        aegis_obs::histogram_record("perf.multiplex_scale", scale);
                    }
                    self.accumulated[lane * n + i] * scale
                };
            }
            self.traces[lane].push_slice(&slice);
        }
        self.accumulated.iter_mut().for_each(|v| *v = 0.0);
        self.running_ns.iter_mut().for_each(|v| *v = 0);
        self.enabled_ns = 0;
    }

    /// Stops recording and returns one trace per lane, freeing the
    /// counter slots.
    pub fn finish(self, batch: &mut CoreBatch) -> Vec<Trace> {
        for slot in 0..COUNTER_SLOTS {
            batch.clear_slot(slot);
        }
        self.traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::{
        named, ActivityVector, Core, Feature, InterferenceConfig, MicroArch, Origin,
    };

    fn prepared_core(seed: u64) -> Core {
        let mut c = Core::new(MicroArch::AmdEpyc7252, seed);
        c.set_interference(InterferenceConfig::isolated());
        c
    }

    fn rate(r: f64) -> ActivityVector {
        ActivityVector::from_pairs(&[(Feature::UopsRetired, r), (Feature::Cycles, 2.0 * r)])
    }

    /// Every lane, driven in lockstep with its scalar twin's recorder,
    /// produces a bit-identical trace — with and without active faults,
    /// single-group and multiplexed.
    #[test]
    fn lanes_bit_match_scalar_recorder() {
        for plan in [FaultPlan::none(), FaultPlan::smoke()] {
            for n_events in [1usize, 4, 6] {
                let core = prepared_core(9);
                let ids: Vec<EventId> = core
                    .catalog()
                    .events()
                    .iter()
                    .map(|e| e.id)
                    .take(n_events)
                    .collect();
                let mut batch = CoreBatch::from_core_state(&core, 3);
                let mut lrec = LaneTraceRecorder::open(
                    &mut batch,
                    &ids,
                    OriginFilter::Any,
                    1_000_000,
                    plan,
                )
                .unwrap();
                let mut twins: Vec<(Core, crate::TraceRecorder)> = (0..3)
                    .map(|_| {
                        let mut c = core.clone();
                        let r = crate::TraceRecorder::open_with_faults(
                            &mut c,
                            &ids,
                            OriginFilter::Any,
                            1_000_000,
                            plan,
                        )
                        .unwrap();
                        (c, r)
                    })
                    .collect();
                for tick in 0..50u64 {
                    let r = rate(40.0 + (tick % 7) as f64);
                    for lane in 0..3 {
                        batch.run_mix(lane, &r, 100_000, Origin::Host);
                    }
                    lrec.on_executed(&mut batch, 100_000);
                    for (c, rec) in &mut twins {
                        c.run_mix(&r, 100_000, Origin::Host);
                        rec.on_executed(c, 100_000);
                    }
                }
                let lane_traces = lrec.finish(&mut batch);
                for (lane, (mut c, rec)) in twins.into_iter().enumerate() {
                    let scalar = rec.finish(&mut c);
                    assert_eq!(
                        scalar.data, lane_traces[lane].data,
                        "lane {lane} diverged (events={n_events}, active={})",
                        plan.is_active()
                    );
                }
            }
        }
    }

    #[test]
    fn open_errors_match_scalar_semantics() {
        let core = prepared_core(3);
        let mut batch = CoreBatch::from_core_state(&core, 2);
        assert_eq!(
            LaneTraceRecorder::open(
                &mut batch,
                &[],
                OriginFilter::Any,
                1_000_000,
                FaultPlan::none()
            )
            .err(),
            Some(PerfError::NoEvents)
        );
        assert_eq!(
            LaneTraceRecorder::open(
                &mut batch,
                &[EventId(u32::MAX)],
                OriginFilter::Any,
                1_000_000,
                FaultPlan::none()
            )
            .err(),
            Some(PerfError::UnknownEvent(EventId(u32::MAX)))
        );
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        let plan = FaultPlan {
            seed: 1,
            pmc_program_fail: 1.0,
            ..FaultPlan::none()
        };
        // The persistent-fault open failure is shared by every lane,
        // exactly as every scalar fork hits it.
        match LaneTraceRecorder::open(&mut batch, &[ev], OriginFilter::Any, 1_000_000, plan) {
            Err(PerfError::ProgramFailed { slot: 0, .. }) => {}
            other => panic!("expected ProgramFailed, got {other:?}"),
        }
    }
}
