//! Interval-sampling trace recorder built on [`PerfMonitor`].

use crate::monitor::{PerfError, PerfMonitor};
use crate::trace::Trace;
use aegis_microarch::{Core, EventId, OriginFilter};

/// Records a [`Trace`] by sampling a [`PerfMonitor`] at a fixed interval
/// while the simulation loop reports executed time.
///
/// The paper's attacker samples four events every 1 ms for 3 s; the
/// recorder reproduces that acquisition loop.
#[derive(Debug)]
pub struct TraceRecorder {
    monitor: PerfMonitor,
    interval_ns: u64,
    elapsed_in_interval_ns: u64,
    trace: Trace,
}

impl TraceRecorder {
    /// Opens a recorder on `core` sampling `events` every `interval_ns`.
    ///
    /// # Errors
    ///
    /// Propagates [`PerfError`] from opening the monitor.
    pub fn open(
        core: &mut Core,
        events: &[EventId],
        filter: OriginFilter,
        interval_ns: u64,
    ) -> Result<Self, PerfError> {
        let monitor = PerfMonitor::open(core, events.to_vec(), filter)?;
        Ok(TraceRecorder::from_monitor(monitor, events, interval_ns))
    }

    /// [`TraceRecorder::open`] under an explicit fault plan (passed down
    /// to [`PerfMonitor::open_with_faults`]).
    ///
    /// # Errors
    ///
    /// Propagates [`PerfError`] from opening the monitor.
    pub fn open_with_faults(
        core: &mut Core,
        events: &[EventId],
        filter: OriginFilter,
        interval_ns: u64,
        plan: aegis_faults::FaultPlan,
    ) -> Result<Self, PerfError> {
        let monitor = PerfMonitor::open_with_faults(core, events.to_vec(), filter, plan)?;
        Ok(TraceRecorder::from_monitor(monitor, events, interval_ns))
    }

    fn from_monitor(monitor: PerfMonitor, events: &[EventId], interval_ns: u64) -> Self {
        TraceRecorder {
            monitor,
            interval_ns: interval_ns.max(1),
            elapsed_in_interval_ns: 0,
            trace: Trace::new(events.to_vec(), interval_ns),
        }
    }

    /// Whether the underlying monitor currently has a dead (injected
    /// fault) slot in its active group.
    pub fn degraded(&self) -> bool {
        self.monitor.degraded()
    }

    /// Reports that the core executed `dur_ns`; closes sampling intervals
    /// as they complete. For exact sampling, drive the simulation with
    /// ticks that divide the interval.
    pub fn on_executed(&mut self, core: &mut Core, dur_ns: u64) {
        self.monitor.on_executed(core, dur_ns);
        self.elapsed_in_interval_ns += dur_ns;
        while self.elapsed_in_interval_ns >= self.interval_ns {
            let slice = self.monitor.sample_and_reset(core);
            self.trace.push_slice(&slice);
            self.elapsed_in_interval_ns -= self.interval_ns;
        }
    }

    /// Completed samples so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether no full interval has completed yet.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Stops recording and returns the trace, freeing the counters.
    pub fn finish(self, core: &mut Core) -> Trace {
        self.monitor.close(core);
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::{named, ActivityVector, Feature, InterferenceConfig, MicroArch, Origin};

    #[test]
    fn records_expected_number_of_slices() {
        let mut core = Core::new(MicroArch::AmdEpyc7252, 3);
        core.set_interference(InterferenceConfig::isolated());
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        let mut rec =
            TraceRecorder::open(&mut core, &[ev], OriginFilter::Any, 1_000_000).unwrap();
        let rate = ActivityVector::from_pairs(&[(Feature::UopsRetired, 10.0)]);
        // 30 ticks of 100 µs = 3 ms → 3 slices of 1 ms.
        for _ in 0..30 {
            core.run_mix(&rate, 100_000, Origin::Host);
            rec.on_executed(&mut core, 100_000);
        }
        let trace = rec.finish(&mut core);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.n_events(), 1);
        for &v in trace.row(0) {
            assert!((v - 10_000.0).abs() < 3_000.0, "{v}");
        }
    }

    #[test]
    fn partial_interval_not_emitted() {
        let mut core = Core::new(MicroArch::AmdEpyc7252, 3);
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        let mut rec =
            TraceRecorder::open(&mut core, &[ev], OriginFilter::Any, 1_000_000).unwrap();
        rec.on_executed(&mut core, 900_000);
        assert!(rec.is_empty());
        rec.on_executed(&mut core, 100_000);
        assert_eq!(rec.len(), 1);
    }
}
