//! Sampled HPC traces: the time-series matrices exchanged between the
//! attacker, the profiler and the defense evaluation.

use aegis_microarch::EventId;
use serde::{Deserialize, Serialize};

/// A sampled HPC leakage trace: for each monitored event, a time series of
/// per-interval counts.
///
/// This is the `x ∈ X` object of the paper's attack abstraction: "each
/// trace is a time-series of length `T`, where every time slice `x[t]` is
/// a vector of monitored events". The paper's attacker samples 4 events at
/// 1 ms for 3 s, giving a 4×3000 tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Monitored events, one per row.
    pub events: Vec<EventId>,
    /// Sampling interval in nanoseconds.
    pub interval_ns: u64,
    /// `data[e][t]` = scaled count of `events[e]` in interval `t`.
    pub data: Vec<Vec<f64>>,
}

impl Trace {
    /// Creates an empty trace for the given events and interval.
    pub fn new(events: Vec<EventId>, interval_ns: u64) -> Self {
        let n = events.len();
        Trace {
            events,
            interval_ns,
            data: vec![Vec::new(); n],
        }
    }

    /// Number of monitored events (rows).
    pub fn n_events(&self) -> usize {
        self.events.len()
    }

    /// Number of time slices (columns).
    pub fn len(&self) -> usize {
        self.data.first().map_or(0, Vec::len)
    }

    /// Whether the trace has no samples yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one time slice (one value per event).
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() != self.n_events()`.
    pub fn push_slice(&mut self, slice: &[f64]) {
        assert_eq!(slice.len(), self.n_events(), "slice arity mismatch");
        for (row, &v) in self.data.iter_mut().zip(slice) {
            row.push(v);
        }
    }

    /// The series of one event row.
    pub fn row(&self, event_idx: usize) -> &[f64] {
        &self.data[event_idx]
    }

    /// Flattens to a feature vector (row-major), the layout consumed by
    /// the attack models.
    pub fn to_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_events() * self.len());
        for row in &self.data {
            out.extend_from_slice(row);
        }
        out
    }

    /// Total counts per event over the whole trace.
    pub fn totals(&self) -> Vec<f64> {
        self.data.iter().map(|r| r.iter().sum()).collect()
    }

    /// Peak (maximum) per-interval count over all events and slices —
    /// the `p` of the paper's constant-output and random-noise baselines.
    pub fn peak(&self) -> f64 {
        self.data
            .iter()
            .flat_map(|r| r.iter().copied())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        let mut t = Trace::new(vec![EventId(0), EventId(1)], 1_000_000);
        t.push_slice(&[1.0, 10.0]);
        t.push_slice(&[2.0, 20.0]);
        t.push_slice(&[3.0, 30.0]);
        t
    }

    #[test]
    fn dimensions() {
        let t = trace();
        assert_eq!(t.n_events(), 2);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn rows_and_flatten() {
        let t = trace();
        assert_eq!(t.row(1), &[10.0, 20.0, 30.0]);
        assert_eq!(t.to_flat(), vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn totals_and_peak() {
        let t = trace();
        assert_eq!(t.totals(), vec![6.0, 60.0]);
        assert_eq!(t.peak(), 30.0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        trace().push_slice(&[1.0]);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(vec![EventId(0)], 1);
        assert!(t.is_empty());
        assert_eq!(t.peak(), 0.0);
    }
}
