//! Property tests pinning the flat-`Mat` learning kernels to their
//! nested-`Vec` scalar references: for any randomly drawn dataset and
//! training configuration, `train`/`fit` must be **bit-identical** to
//! `train_scalar`/`fit_scalar` under the same RNG seed. `assert_eq!` on
//! the models compares every `f64` exactly — the flat refactor changes
//! storage and scratch reuse, never arithmetic or accumulation order.

use aegis_attack::{Dataset, Mat, Mlp, MlpConfig, Pca, SoftmaxRegression, TrainConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesizes a labelled dataset from a seed: `n` samples of dimension
/// `dim` over `k` classes, with a per-class offset so training has
/// signal to descend on (degenerate all-noise sets still must agree,
/// but separable ones exercise more of the update path).
fn random_dataset(seed: u64, n: usize, dim: usize, k: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % k;
        let row: Vec<f64> = (0..dim)
            .map(|j| rng.gen_range(-1.0..1.0) + (label * (j % 3)) as f64 * 0.5)
            .collect();
        samples.push(row);
        labels.push(label);
    }
    Dataset::new(samples, labels, k)
}

proptest! {
    // Each case trains two models to completion; keep the batch small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mlp_flat_is_bit_identical_to_scalar_reference(
        seed in 0u64..1_000_000,
        n in 4usize..16,
        dim in 2usize..7,
        k in 2usize..4,
        hidden in 2usize..6,
        batch_size in 1usize..5,
    ) {
        let train = random_dataset(seed, n, dim, k);
        let val = random_dataset(seed ^ 0x5a5a, n / 2 + 2, dim, k);
        let cfg = MlpConfig { hidden, epochs: 3, lr: 0.05, batch_size };
        let (flat, flat_curve) =
            Mlp::train(&train, &val, cfg, &mut StdRng::seed_from_u64(seed));
        let (scalar, scalar_curve) =
            Mlp::train_scalar(&train, &val, cfg, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(flat, scalar);
        prop_assert_eq!(flat_curve, scalar_curve);
    }

    #[test]
    fn softmax_flat_is_bit_identical_to_scalar_reference(
        seed in 0u64..1_000_000,
        n in 4usize..16,
        dim in 2usize..7,
        k in 2usize..4,
        batch_size in 1usize..5,
        l2_idx in 0usize..3,
    ) {
        let l2 = [0.0, 1e-4, 1e-2][l2_idx];
        let train = random_dataset(seed, n, dim, k);
        let val = random_dataset(seed ^ 0xa5a5, n / 2 + 2, dim, k);
        let cfg = TrainConfig { epochs: 4, lr: 0.1, batch_size, l2 };
        let (flat, flat_curve) =
            SoftmaxRegression::train(&train, &val, cfg, &mut StdRng::seed_from_u64(seed));
        let (scalar, scalar_curve) =
            SoftmaxRegression::train_scalar(&train, &val, cfg, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(flat, scalar);
        prop_assert_eq!(flat_curve, scalar_curve);
    }

    #[test]
    fn pca_flat_is_bit_identical_to_scalar_reference(
        seed in 0u64..1_000_000,
        n in 2usize..20,
        dim in 1usize..9,
        k in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nested: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| rng.gen_range(-2.0..2.0) * (1.0 + (i * j % 5) as f64))
                    .collect()
            })
            .collect();
        let flat = Pca::fit(&Mat::from_rows(&nested), k);
        let scalar = Pca::fit_scalar(&nested, k);
        prop_assert_eq!(flat, scalar);
    }
}
