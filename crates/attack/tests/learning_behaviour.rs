//! Behavioural tests of the attacker's toolbox on synthetic channels:
//! the accuracy-collapse-under-noise property every defense figure rests
//! on, and the agreement between the MI estimators and the classifiers.

use aegis_attack::{
    label_feature_mi, mutual_information_hist, trace_features, Dataset, GaussianNb, Pca,
    Standardizer,
};
use aegis_microarch::rand_util::normal;
use aegis_perf::Trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A synthetic "HPC channel": class means spaced `gap` apart in 8
/// dimensions with unit within-class noise, plus optional channel noise.
fn channel(classes: usize, n_per: usize, gap: f64, noise: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(Vec::new(), Vec::new(), classes);
    for c in 0..classes {
        for _ in 0..n_per {
            let row: Vec<f64> = (0..8)
                .map(|d| {
                    let mu = gap * c as f64 * ((d % 3) as f64 + 1.0);
                    normal(&mut rng, mu, 1.0) + normal(&mut rng, 0.0, noise)
                })
                .collect();
            ds.push(row, c);
        }
    }
    ds
}

fn accuracy(ds: &Dataset, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut train, mut val) = ds.split(0.7, &mut rng);
    let st = Standardizer::fit(&train.samples);
    st.apply_dataset(&mut train);
    st.apply_dataset(&mut val);
    GaussianNb::fit(&train).accuracy(&val)
}

#[test]
fn accuracy_collapses_monotonically_with_channel_noise() {
    let clean = accuracy(&channel(10, 30, 2.0, 0.0, 1), 1);
    let mild = accuracy(&channel(10, 30, 2.0, 4.0, 1), 1);
    let heavy = accuracy(&channel(10, 30, 2.0, 40.0, 1), 1);
    assert!(clean > 0.95, "clean {clean}");
    assert!(
        mild < clean && mild > heavy,
        "clean {clean} mild {mild} heavy {heavy}"
    );
    assert!(heavy < 0.3, "heavy {heavy}");
}

#[test]
fn mi_estimate_tracks_classifier_accuracy() {
    // The defense evaluation's core argument: when I(feature; label)
    // collapses, so does any classifier.
    let mi_of = |noise: f64| {
        let ds = channel(4, 400, 3.0, noise, 2);
        let xs: Vec<f64> = ds.samples.iter().map(|r| r[0]).collect();
        label_feature_mi(&ds.labels, &xs, 4, 16)
    };
    let clean_mi = mi_of(0.0);
    let noisy_mi = mi_of(30.0);
    assert!(clean_mi > 1.2, "clean MI {clean_mi}");
    assert!(noisy_mi < clean_mi / 3.0, "noisy MI {noisy_mi}");
    let clean_acc = accuracy(&channel(4, 100, 3.0, 0.0, 2), 2);
    let noisy_acc = accuracy(&channel(4, 100, 3.0, 30.0, 2), 2);
    assert!(clean_acc > noisy_acc + 0.3);
}

#[test]
fn pca_feature_preserves_class_separation() {
    let ds = channel(3, 100, 5.0, 0.0, 3);
    let pca = Pca::fit(&ds.samples, 1);
    let mut class_means = vec![0.0f64; 3];
    let mut counts = vec![0usize; 3];
    for (x, &y) in ds.samples.iter().zip(&ds.labels) {
        class_means[y] += pca.transform1(x);
        counts[y] += 1;
    }
    for (m, c) in class_means.iter_mut().zip(counts) {
        *m /= c as f64;
    }
    let mut sorted = class_means.clone();
    sorted.sort_by(f64::total_cmp);
    assert!(sorted[1] - sorted[0] > 3.0);
    assert!(sorted[2] - sorted[1] > 3.0);
}

#[test]
fn common_mode_removal_defeats_correlated_but_not_independent_noise() {
    // The rationale for injecting noise in several micro-architectural
    // directions (lanes): noise along a *single* shared direction can be
    // projected out by an attacker (here: subtracting the row mean),
    // while independent per-dimension noise cannot.
    let mut rng = StdRng::seed_from_u64(4);
    let base = channel(6, 60, 2.5, 0.0, 4);
    let noised = |correlated: bool, rng: &mut StdRng| -> Dataset {
        let mut ds = base.clone();
        for row in &mut ds.samples {
            if correlated {
                let n = normal(rng, 0.0, 12.0);
                for x in row.iter_mut() {
                    *x += n; // one shared direction (all-ones)
                }
            } else {
                for x in row.iter_mut() {
                    *x += normal(rng, 0.0, 12.0);
                }
            }
        }
        ds
    };
    let common_mode_removed = |ds: &Dataset| -> Dataset {
        let mut out = ds.clone();
        for row in &mut out.samples {
            let mean = row.iter().sum::<f64>() / row.len() as f64;
            for x in row.iter_mut() {
                *x -= mean;
            }
        }
        out
    };
    let corr = accuracy(&common_mode_removed(&noised(true, &mut rng)), 4);
    let indep = accuracy(&common_mode_removed(&noised(false, &mut rng)), 4);
    assert!(
        corr > indep + 0.25,
        "common-mode removal: correlated {corr} vs independent {indep}"
    );
}

#[test]
fn trace_features_expose_both_shape_and_volume() {
    let mut a = Trace::new(vec![aegis_microarch::EventId(0)], 1);
    let mut b = Trace::new(vec![aegis_microarch::EventId(0)], 1);
    // Same total, different temporal shape.
    for t in 0..8 {
        a.push_slice(&[if t < 4 { 10.0 } else { 0.0 }]);
        b.push_slice(&[5.0]);
    }
    let fa = trace_features(&a, 2);
    let fb = trace_features(&b, 2);
    // Totals agree (last-but-one aggregate feature), pooled shape differs.
    assert_eq!(fa[fa.len() - 2], fb[fb.len() - 2]);
    assert_ne!(fa[..4], fb[..4]);
}

#[test]
fn mi_hist_is_symmetric() {
    let mut rng = StdRng::seed_from_u64(5);
    let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 0.0, 1.0)).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| 0.7 * x + normal(&mut rng, 0.0, 0.5))
        .collect();
    let ab = mutual_information_hist(&xs, &ys, 16);
    let ba = mutual_information_hist(&ys, &xs, 16);
    assert!((ab - ba).abs() < 1e-9);
    assert!(ab > 0.3);
}
