//! Sequence decoding for the model extraction attack.
//!
//! The paper frames MEA as sequence-to-sequence learning with a CTC
//! decoder. Our reproduction classifies each sampling window into a layer
//! type and applies CTC-style greedy decoding: collapse consecutive
//! repeats (layers span many windows) and drop the blank/idle symbol. The
//! attack metric is the fraction of matched layers between prediction and
//! label ("the accuracy reflects the statistics of the matched layers
//! between prediction and label sequences"), which we compute from the
//! Levenshtein alignment.

/// Collapses consecutive repeated symbols and removes `blank`, the CTC
/// greedy decode of a per-window prediction sequence.
///
/// # Example
///
/// ```
/// use aegis_attack::ctc_collapse;
/// let windows = [1, 1, 1, 0, 2, 2, 0, 0, 1];
/// assert_eq!(ctc_collapse(&windows, 0), vec![1, 2, 1]);
/// ```
pub fn ctc_collapse(windows: &[usize], blank: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut prev: Option<usize> = None;
    for &w in windows {
        if Some(w) != prev && w != blank {
            out.push(w);
        }
        prev = Some(w);
    }
    out
}

/// Levenshtein edit distance between two symbol sequences.
pub fn levenshtein(a: &[usize], b: &[usize]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ai) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &bj) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ai != bj);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Layer-match accuracy: `1 - edit_distance / max(len)`, clamped at 0.
/// `1.0` means the predicted layer sequence equals the ground truth.
pub fn layer_match_accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    let denom = predicted.len().max(truth.len());
    if denom == 0 {
        return 1.0;
    }
    let d = levenshtein(predicted, truth);
    (1.0 - d as f64 / denom as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapse_removes_repeats_and_blanks() {
        assert_eq!(ctc_collapse(&[0, 0, 0], 0), Vec::<usize>::new());
        assert_eq!(ctc_collapse(&[1, 1, 2, 2, 2, 3], 0), vec![1, 2, 3]);
        // A blank between equal symbols re-emits the symbol.
        assert_eq!(ctc_collapse(&[1, 0, 1], 0), vec![1, 1]);
    }

    #[test]
    fn levenshtein_known_cases() {
        assert_eq!(levenshtein(&[], &[]), 0);
        assert_eq!(levenshtein(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(levenshtein(&[1, 2, 3], &[1, 3]), 1);
        assert_eq!(levenshtein(&[1, 2, 3], &[4, 5, 6]), 3);
        assert_eq!(levenshtein(&[], &[1, 2]), 2);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        let a = [1, 2, 3, 4, 2];
        let b = [2, 3, 2, 2];
        assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn accuracy_bounds() {
        assert_eq!(layer_match_accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(layer_match_accuracy(&[], &[]), 1.0);
        assert_eq!(layer_match_accuracy(&[9, 9, 9], &[1, 2, 3]), 0.0);
        let partial = layer_match_accuracy(&[1, 2, 4], &[1, 2, 3]);
        assert!((partial - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_penalizes_length_mismatch() {
        let acc = layer_match_accuracy(&[1, 2], &[1, 2, 3, 4]);
        assert!((acc - 0.5).abs() < 1e-12);
    }
}
