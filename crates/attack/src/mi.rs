//! Empirical mutual-information estimation.
//!
//! Fig. 9c of the paper evaluates the defense by the mutual information
//! `I(X; X')` between clean and noised HPC leakage traces; as noise grows
//! the MI collapses, bounding what *any* attacker can learn. This module
//! estimates MI from samples by histogram discretization.

/// Estimates `I(X; Y)` in bits from paired scalar samples using an
/// equal-width 2-D histogram with `bins × bins` cells.
///
/// # Panics
///
/// Panics if the slices have different lengths or `bins < 2`.
pub fn mutual_information_hist(xs: &[f64], ys: &[f64], bins: usize) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    assert!(bins >= 2, "need at least two bins");
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let bx = Binner::fit(xs, bins);
    let by = Binner::fit(ys, bins);
    let mut joint = vec![0usize; bins * bins];
    let mut px = vec![0usize; bins];
    let mut py = vec![0usize; bins];
    for (&x, &y) in xs.iter().zip(ys) {
        let i = bx.bin(x);
        let j = by.bin(y);
        joint[i * bins + j] += 1;
        px[i] += 1;
        py[j] += 1;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for i in 0..bins {
        for j in 0..bins {
            let c = joint[i * bins + j];
            if c == 0 {
                continue;
            }
            let pxy = c as f64 / nf;
            let pi = px[i] as f64 / nf;
            let pj = py[j] as f64 / nf;
            mi += pxy * (pxy / (pi * pj)).log2();
        }
    }
    mi.max(0.0)
}

/// Estimates `I(label; X)` in bits between a discrete label and a scalar
/// feature — the attacker-relevant leakage of one feature dimension.
///
/// # Panics
///
/// Panics if slice lengths differ or `bins < 2`.
pub fn label_feature_mi(labels: &[usize], xs: &[f64], n_labels: usize, bins: usize) -> f64 {
    assert_eq!(labels.len(), xs.len(), "paired samples required");
    assert!(bins >= 2, "need at least two bins");
    let n = xs.len();
    if n == 0 || n_labels < 2 {
        return 0.0;
    }
    let bx = Binner::fit(xs, bins);
    let mut joint = vec![0usize; n_labels * bins];
    let mut pl = vec![0usize; n_labels];
    let mut px = vec![0usize; bins];
    for (&l, &x) in labels.iter().zip(xs) {
        let j = bx.bin(x);
        joint[l * bins + j] += 1;
        pl[l] += 1;
        px[j] += 1;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for l in 0..n_labels {
        for j in 0..bins {
            let c = joint[l * bins + j];
            if c == 0 {
                continue;
            }
            let plx = c as f64 / nf;
            let pi = pl[l] as f64 / nf;
            let pj = px[j] as f64 / nf;
            mi += plx * (plx / (pi * pj)).log2();
        }
    }
    mi.max(0.0)
}

struct Binner {
    lo: f64,
    width: f64,
    bins: usize,
}

impl Binner {
    fn fit(xs: &[f64], bins: usize) -> Self {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let width = ((hi - lo) / bins as f64).max(1e-300);
        Binner { lo, width, bins }
    }

    fn bin(&self, x: f64) -> usize {
        (((x - self.lo) / self.width) as usize).min(self.bins - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::rand_util::normal;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identical_variables_have_high_mi() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 0.0, 1.0)).collect();
        let mi = mutual_information_hist(&xs, &xs, 16);
        assert!(mi > 3.0, "{mi}");
    }

    #[test]
    fn independent_variables_have_low_mi() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 0.0, 1.0)).collect();
        let ys: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 0.0, 1.0)).collect();
        let mi = mutual_information_hist(&xs, &ys, 16);
        assert!(mi < 0.05, "{mi}");
    }

    #[test]
    fn mi_decreases_with_added_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 0.0, 1.0)).collect();
        let mut last = f64::INFINITY;
        for noise in [0.1, 1.0, 10.0] {
            let ys: Vec<f64> = xs
                .iter()
                .map(|&x| x + normal(&mut rng, 0.0, noise))
                .collect();
            let mi = mutual_information_hist(&xs, &ys, 16);
            assert!(mi < last, "noise {noise}: {mi} !< {last}");
            last = mi;
        }
    }

    #[test]
    fn label_mi_detects_separated_classes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut labels = Vec::new();
        let mut xs = Vec::new();
        for _ in 0..10_000 {
            let l = rng.gen_range(0..2usize);
            labels.push(l);
            xs.push(normal(&mut rng, l as f64 * 10.0, 1.0));
        }
        let mi = label_feature_mi(&labels, &xs, 2, 16);
        assert!(mi > 0.9, "{mi}"); // ~1 bit for 2 separable classes
    }

    #[test]
    fn label_mi_of_uninformative_feature_is_small() {
        let mut rng = StdRng::seed_from_u64(5);
        let labels: Vec<usize> = (0..10_000).map(|_| rng.gen_range(0..4usize)).collect();
        let xs: Vec<f64> = (0..10_000).map(|_| normal(&mut rng, 0.0, 1.0)).collect();
        let mi = label_feature_mi(&labels, &xs, 4, 16);
        assert!(mi < 0.05, "{mi}");
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mutual_information_hist(&[], &[], 4), 0.0);
        assert_eq!(label_feature_mi(&[], &[], 4, 4), 0.0);
    }
}
