//! A one-hidden-layer perceptron with ReLU activation, trained by SGD.
//!
//! A slightly stronger learner than [`SoftmaxRegression`] for non-linear
//! boundaries; used by the robust-attacker scenario of Fig. 9b where the
//! adversary trains on noisy traces.
//!
//! The hot path ([`Mlp::train`]) runs on flat [`Mat`] weights with all
//! scratch (gradients, activations) allocated once per call and zeroed
//! per minibatch; [`Mlp::train_scalar`] keeps the original nested
//! `Vec<Vec<f64>>` implementation as the bit-identical reference the
//! property tests compare against.
//!
//! [`SoftmaxRegression`]: crate::SoftmaxRegression

use crate::dataset::Dataset;
use crate::mat::Mat;
use crate::softmax::{argmax, softmax, softmax_inplace};
use crate::train::{EpochStats, TrainingCurve};
use aegis_microarch::rand_util::normal;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// MLP hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Minibatch size.
    pub batch_size: usize,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 64,
            epochs: 40,
            lr: 0.02,
            batch_size: 32,
        }
    }
}

/// A trained multilayer perceptron (input → ReLU hidden → softmax).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    w1: Mat, // [hidden][dim]
    b1: Vec<f64>,
    w2: Mat, // [class][hidden]
    b2: Vec<f64>,
    dim: usize,
}

impl Mlp {
    /// Trains on `train`, evaluating on `val` after each epoch.
    ///
    /// Bit-identical to [`Mlp::train_scalar`] for the same RNG seed: the
    /// per-sample accumulation order is unchanged, only the storage is
    /// flat and the scratch buffers are reused across batches.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn train(
        train: &Dataset,
        val: &Dataset,
        cfg: MlpConfig,
        rng: &mut StdRng,
    ) -> (Self, TrainingCurve) {
        assert!(!train.is_empty(), "empty training set");
        let dim = train.dim();
        let k = train.n_classes;
        let h = cfg.hidden.max(1);
        let s1 = (2.0 / dim as f64).sqrt();
        let s2 = (2.0 / h as f64).sqrt();
        let mut m = Mlp {
            w1: init_normal(h, dim, s1, rng),
            b1: vec![0.0; h],
            w2: init_normal(k, h, s2, rng),
            b2: vec![0.0; k],
            dim,
        };
        let mut curve = TrainingCurve::new();
        let mut order: Vec<usize> = (0..train.len()).collect();
        // Scratch shared by every minibatch of every epoch: gradients plus
        // the forward/backward activations of the sample being processed.
        let mut gw1 = Mat::zeros(h, dim);
        let mut gb1 = vec![0.0; h];
        let mut gw2 = Mat::zeros(k, h);
        let mut gb2 = vec![0.0; k];
        let mut hidden = vec![0.0; h];
        let mut p = vec![0.0; k];
        let mut dh = vec![0.0; h];
        for epoch in 0..cfg.epochs {
            order.shuffle(rng);
            let mut loss_acc = 0.0;
            let mut correct = 0usize;
            for batch in order.chunks(cfg.batch_size.max(1)) {
                gw1.fill_zero();
                gb1.fill(0.0);
                gw2.fill_zero();
                gb2.fill(0.0);
                for &i in batch {
                    let x = train.samples.row(i);
                    let y = train.labels[i];
                    // Fused forward into scratch.
                    for (j, hj) in hidden.iter_mut().enumerate() {
                        let dot: f64 =
                            m.w1.row(j).iter().zip(x).map(|(wi, xi)| wi * xi).sum();
                        *hj = (dot + m.b1[j]).max(0.0);
                    }
                    for (c, pc) in p.iter_mut().enumerate() {
                        *pc = m.w2.row(c).iter().zip(&hidden).map(|(wi, hi)| wi * hi).sum::<f64>()
                            + m.b2[c];
                    }
                    softmax_inplace(&mut p);
                    loss_acc += -(p[y].max(1e-12)).ln();
                    if argmax(&p) == y {
                        correct += 1;
                    }
                    // Output layer gradient.
                    dh.fill(0.0);
                    for c in 0..k {
                        let err = p[c] - f64::from(c == y);
                        let w2c = m.w2.row(c);
                        for (j, (g, hj)) in gw2.row_mut(c).iter_mut().zip(&hidden).enumerate() {
                            *g += err * hj;
                            dh[j] += err * w2c[j];
                        }
                        gb2[c] += err;
                    }
                    // Hidden layer gradient (ReLU mask).
                    for j in 0..h {
                        if hidden[j] <= 0.0 {
                            continue;
                        }
                        for (g, xi) in gw1.row_mut(j).iter_mut().zip(x) {
                            *g += dh[j] * xi;
                        }
                        gb1[j] += dh[j];
                    }
                }
                let scale = cfg.lr / batch.len() as f64;
                for (j, (b, gb)) in m.b1.iter_mut().zip(&gb1).enumerate() {
                    for (w, g) in m.w1.row_mut(j).iter_mut().zip(gw1.row(j)) {
                        *w -= scale * g;
                    }
                    *b -= scale * gb;
                }
                for (c, (b, gb)) in m.b2.iter_mut().zip(&gb2).enumerate() {
                    for (w, g) in m.w2.row_mut(c).iter_mut().zip(gw2.row(c)) {
                        *w -= scale * g;
                    }
                    *b -= scale * gb;
                }
            }
            curve.push(EpochStats {
                epoch,
                train_loss: loss_acc / train.len() as f64,
                train_acc: correct as f64 / train.len() as f64,
                val_acc: m.accuracy(val),
            });
        }
        (m, curve)
    }

    /// The original nested-`Vec` training loop, kept verbatim as the
    /// reference implementation for the flat↔scalar property tests.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn train_scalar(
        train: &Dataset,
        val: &Dataset,
        cfg: MlpConfig,
        rng: &mut StdRng,
    ) -> (Self, TrainingCurve) {
        assert!(!train.is_empty(), "empty training set");
        let dim = train.dim();
        let k = train.n_classes;
        let h = cfg.hidden.max(1);
        let s1 = (2.0 / dim as f64).sqrt();
        let s2 = (2.0 / h as f64).sqrt();
        let mut w1: Vec<Vec<f64>> = (0..h)
            .map(|_| (0..dim).map(|_| normal(rng, 0.0, s1)).collect())
            .collect();
        let mut b1 = vec![0.0; h];
        let mut w2: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..h).map(|_| normal(rng, 0.0, s2)).collect())
            .collect();
        let mut b2 = vec![0.0; k];
        let forward = |w1: &[Vec<f64>],
                       b1: &[f64],
                       w2: &[Vec<f64>],
                       b2: &[f64],
                       x: &[f64]|
         -> (Vec<f64>, Vec<f64>) {
            let hidden: Vec<f64> = w1
                .iter()
                .zip(b1)
                .map(|(w, b)| (w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b).max(0.0))
                .collect();
            let logits: Vec<f64> = w2
                .iter()
                .zip(b2)
                .map(|(w, b)| w.iter().zip(&hidden).map(|(wi, hi)| wi * hi).sum::<f64>() + b)
                .collect();
            let p = softmax(&logits);
            (hidden, p)
        };
        let mut curve = TrainingCurve::new();
        let mut order: Vec<usize> = (0..train.len()).collect();
        for epoch in 0..cfg.epochs {
            order.shuffle(rng);
            let mut loss_acc = 0.0;
            let mut correct = 0usize;
            for batch in order.chunks(cfg.batch_size.max(1)) {
                let mut gw1 = vec![vec![0.0; dim]; h];
                let mut gb1 = vec![0.0; h];
                let mut gw2 = vec![vec![0.0; h]; k];
                let mut gb2 = vec![0.0; k];
                for &i in batch {
                    let x = &train.samples[i];
                    let y = train.labels[i];
                    let (hidden, p) = forward(&w1, &b1, &w2, &b2, x);
                    loss_acc += -(p[y].max(1e-12)).ln();
                    if argmax(&p) == y {
                        correct += 1;
                    }
                    // Output layer gradient.
                    let mut dh = vec![0.0; h];
                    for c in 0..k {
                        let err = p[c] - f64::from(c == y);
                        for (j, (g, hj)) in gw2[c].iter_mut().zip(&hidden).enumerate() {
                            *g += err * hj;
                            dh[j] += err * w2[c][j];
                        }
                        gb2[c] += err;
                    }
                    // Hidden layer gradient (ReLU mask).
                    for j in 0..h {
                        if hidden[j] <= 0.0 {
                            continue;
                        }
                        for (g, xi) in gw1[j].iter_mut().zip(x) {
                            *g += dh[j] * xi;
                        }
                        gb1[j] += dh[j];
                    }
                }
                let scale = cfg.lr / batch.len() as f64;
                for j in 0..h {
                    for (w, g) in w1[j].iter_mut().zip(&gw1[j]) {
                        *w -= scale * g;
                    }
                    b1[j] -= scale * gb1[j];
                }
                for c in 0..k {
                    for (w, g) in w2[c].iter_mut().zip(&gw2[c]) {
                        *w -= scale * g;
                    }
                    b2[c] -= scale * gb2[c];
                }
            }
            let m = Mlp {
                w1: Mat::from_rows(&w1),
                b1: b1.clone(),
                w2: Mat::from_rows(&w2),
                b2: b2.clone(),
                dim,
            };
            curve.push(EpochStats {
                epoch,
                train_loss: loss_acc / train.len() as f64,
                train_acc: correct as f64 / train.len() as f64,
                val_acc: m.accuracy(val),
            });
        }
        let m = Mlp {
            w1: Mat::from_rows(&w1),
            b1,
            w2: Mat::from_rows(&w2),
            b2,
            dim,
        };
        (m, curve)
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let hidden: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(w, b)| (w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b).max(0.0))
            .collect();
        let logits: Vec<f64> = self
            .w2
            .iter()
            .zip(&self.b2)
            .map(|(w, b)| w.iter().zip(&hidden).map(|(wi, hi)| wi * hi).sum::<f64>() + b)
            .collect();
        let p = softmax(&logits);
        (hidden, p)
    }

    /// Class probabilities for one sample.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn probabilities(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        self.forward(x).1
    }

    /// Predicted class.
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.probabilities(x))
    }

    /// Accuracy over a dataset (0 if empty).
    pub fn accuracy(&self, ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 0.0;
        }
        let correct = ds
            .samples
            .iter()
            .zip(&ds.labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / ds.len() as f64
    }
}

/// Draws a `rows × cols` matrix of `N(0, s²)` entries in row-major order —
/// the same RNG consumption order as the nested initializer it replaces.
fn init_normal(rows: usize, cols: usize, s: f64, rng: &mut StdRng) -> Mat {
    let mut m = Mat::with_capacity(rows, cols);
    let mut row = vec![0.0; cols];
    for _ in 0..rows {
        for w in &mut row {
            *w = normal(rng, 0.0, s);
        }
        m.push_row(&row);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn learns_xor_which_softmax_cannot() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ds = Dataset::new(vec![], vec![], 2);
        for _ in 0..300 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                let label = usize::from((a > 0.5) != (b > 0.5));
                ds.push(
                    vec![normal(&mut rng, a, 0.1), normal(&mut rng, b, 0.1)],
                    label,
                );
            }
        }
        let (train, val) = ds.split(0.7, &mut rng);
        let cfg = MlpConfig {
            hidden: 16,
            epochs: 60,
            lr: 0.1,
            batch_size: 16,
        };
        let (mlp, curve) = Mlp::train(&train, &val, cfg, &mut rng);
        assert!(curve.final_val_acc() > 0.95, "{}", curve.final_val_acc());
        assert_eq!(mlp.predict(&[0.0, 0.0]), 0);
        assert_eq!(mlp.predict(&[1.0, 0.0]), 1);
    }

    #[test]
    fn probabilities_normalized() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ds = Dataset::new(vec![], vec![], 3);
        for i in 0..30 {
            ds.push(vec![i as f64, -(i as f64)], i % 3);
        }
        let (train, val) = ds.split(0.7, &mut rng);
        let cfg = MlpConfig {
            epochs: 2,
            ..MlpConfig::default()
        };
        let (mlp, _) = Mlp::train(&train, &val, cfg, &mut rng);
        let p = mlp.probabilities(&[1.0, 2.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flat_matches_scalar_reference() {
        let mut ds = Dataset::new(vec![], vec![], 3);
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..60 {
            ds.push(
                vec![normal(&mut rng, i as f64 % 3.0, 0.4), normal(&mut rng, 0.0, 1.0)],
                i % 3,
            );
        }
        let (train, val) = ds.split(0.7, &mut rng);
        let cfg = MlpConfig {
            hidden: 8,
            epochs: 5,
            lr: 0.05,
            batch_size: 8,
        };
        let (flat, curve_f) = Mlp::train(&train, &val, cfg, &mut StdRng::seed_from_u64(42));
        let (scalar, curve_s) =
            Mlp::train_scalar(&train, &val, cfg, &mut StdRng::seed_from_u64(42));
        assert_eq!(flat, scalar);
        assert_eq!(curve_f, curve_s);
    }
}
