//! Labeled trace datasets and feature extraction.

use crate::mat::Mat;
use aegis_par::store::usize_from_u64;
use aegis_par::{ColumnFrame, ColumnSchema, Columnar, FrameError, FrameReader};
use aegis_perf::Trace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// The length of the feature vector [`trace_features`] produces: per
/// event row, `ceil(samples / pool)` pooled values plus the two
/// aggregate (total, peak) features.
pub fn trace_feature_len(n_events: usize, samples_per_event: usize, pool: usize) -> usize {
    assert!(pool > 0, "pool must be positive");
    n_events * (samples_per_event.div_ceil(pool) + 2)
}

/// Turns a raw HPC trace into a fixed-length feature vector by average-
/// pooling each event row with the given window, then concatenating rows.
///
/// Pooling tames the 4×3000 dimensionality the paper's CNN consumes while
/// preserving the temporal envelope the attacks rely on.
///
/// # Panics
///
/// Panics if `pool == 0`.
pub fn trace_features(trace: &Trace, pool: usize) -> Vec<f64> {
    let mut out = Vec::new();
    trace_features_into(trace, pool, &mut out);
    out
}

/// [`trace_features`] into a caller-owned buffer: the buffer is cleared,
/// reserved to the exact pooled length, and filled — hot loops that
/// extract features per unit reuse one scratch vector instead of
/// allocating per trace.
///
/// # Panics
///
/// Panics if `pool == 0`.
pub fn trace_features_into(trace: &Trace, pool: usize, out: &mut Vec<f64>) {
    assert!(pool > 0, "pool must be positive");
    // Every row of a recorded trace has the same sample count, so the
    // pooled length is known up front — one exact reservation instead of
    // amortized growth per chunk.
    let samples = trace.data.first().map_or(0, Vec::len);
    out.clear();
    out.reserve(trace_feature_len(trace.data.len(), samples, pool));
    for row in &trace.data {
        for chunk in row.chunks(pool) {
            out.push(chunk.iter().sum::<f64>() / chunk.len() as f64);
        }
        // Aggregate statistics per event row: the whole-trace envelope the
        // paper's CNN pools up to, handed to the linear learner directly.
        let total: f64 = row.iter().sum();
        let peak = row.iter().copied().fold(0.0, f64::max);
        out.push(total);
        out.push(peak);
    }
    debug_assert_eq!(
        out.len(),
        trace_feature_len(trace.data.len(), samples, pool),
        "pooled length formula out of sync"
    );
}

/// A labeled dataset of feature vectors, stored as one contiguous
/// row-major buffer (`samples.row(i)` is sample `i`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature vectors, one matrix row per sample.
    pub samples: Mat,
    /// Class label per sample.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl Dataset {
    /// Creates a dataset from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, rows are ragged, or a label is out of
    /// range.
    pub fn new(samples: Vec<Vec<f64>>, labels: Vec<usize>, n_classes: usize) -> Self {
        Dataset::from_mat(Mat::from_rows(&samples), labels, n_classes)
    }

    /// Creates a dataset from an already-flat sample matrix.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or a label is out of range.
    pub fn from_mat(samples: Mat, labels: Vec<usize>, n_classes: usize) -> Self {
        assert_eq!(samples.rows(), labels.len(), "samples/labels mismatch");
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");
        Dataset {
            samples,
            labels,
            n_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.rows()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Feature dimensionality (0 when empty).
    pub fn dim(&self) -> usize {
        self.samples.cols()
    }

    /// Sample `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn sample(&self, i: usize) -> &[f64] {
        self.samples.row(i)
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.n_classes` or the feature length differs
    /// from earlier samples.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        self.push_slice(&features, label);
    }

    /// Adds one sample from a borrowed slice (no intermediate `Vec`).
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.n_classes` or the feature length differs
    /// from earlier samples.
    pub fn push_slice(&mut self, features: &[f64], label: usize) {
        assert!(label < self.n_classes, "label out of range");
        self.samples.push_row(features);
        self.labels.push(label);
    }

    /// Copies the first `n` samples into a new dataset (training-curve
    /// prefixes).
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn head(&self, n: usize) -> Dataset {
        Dataset {
            samples: self.samples.head(n),
            labels: self.labels[..n].to_vec(),
            n_classes: self.n_classes,
        }
    }

    /// Splits into shuffled train/validation subsets; `train_frac` is the
    /// training share (the paper uses 70/30).
    pub fn split(&self, train_frac: f64, rng: &mut StdRng) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_train = (self.len() as f64 * train_frac.clamp(0.0, 1.0)).round() as usize;
        let make = |ids: &[usize]| {
            let mut samples = Mat::with_capacity(ids.len(), self.dim());
            let mut labels = Vec::with_capacity(ids.len());
            for &i in ids {
                samples.push_row(self.samples.row(i));
                labels.push(self.labels[i]);
            }
            Dataset {
                samples,
                labels,
                n_classes: self.n_classes,
            }
        };
        (make(&idx[..n_train]), make(&idx[n_train..]))
    }
}

/// The sample matrix rides [`Mat`]'s page encoding; labels are one `u64`
/// column (they index classes, so the widening is exact); `n_classes`
/// trails as a one-element bookkeeping column. Decode re-validates the
/// [`Dataset::from_mat`] invariants as errors, not panics: a corrupt
/// artifact must read as a miss.
impl Columnar for Dataset {
    fn schema() -> ColumnSchema {
        ColumnSchema::new("attack/dataset", 1)
    }

    fn encode_columns(&self, frame: &mut ColumnFrame) {
        self.samples.encode_columns(frame);
        frame.push_u64(self.labels.iter().map(|&l| l as u64).collect());
        frame.push_u64(vec![self.n_classes as u64]);
    }

    fn decode_columns(reader: &mut FrameReader) -> Result<Self, FrameError> {
        let samples = Mat::decode_columns(reader)?;
        let labels: Vec<usize> = reader
            .u64s()?
            .into_iter()
            .map(|l| usize_from_u64(l, "dataset label"))
            .collect::<Result<_, _>>()?;
        let tail = reader.u64s()?;
        let [n_classes] = tail[..] else {
            return Err(FrameError::new("dataset class-count column malformed"));
        };
        let n_classes = usize_from_u64(n_classes, "dataset n_classes")?;
        if samples.rows() != labels.len() {
            return Err(FrameError::new("dataset samples/labels mismatch"));
        }
        if labels.iter().any(|&l| l >= n_classes) {
            return Err(FrameError::new("dataset label out of range"));
        }
        Ok(Dataset {
            samples,
            labels,
            n_classes,
        })
    }
}

/// Per-feature standardization parameters fitted on a training set and
/// reused verbatim on validation/attack data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits per-feature mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Mat) -> Self {
        assert!(!data.is_empty(), "cannot standardize an empty set");
        let d = data.cols();
        let n = data.rows() as f64;
        let mut mean = vec![0.0; d];
        for row in data {
            for (m, x) in mean.iter_mut().zip(row) {
                *m += x / n;
            }
        }
        let mut std = vec![0.0; d];
        for row in data {
            for ((s, x), m) in std.iter_mut().zip(row).zip(&mean) {
                *s += (x - m).powi(2) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-9);
        }
        Standardizer { mean, std }
    }

    /// Standardizes one sample in place.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        for ((xi, m), s) in x.iter_mut().zip(&self.mean).zip(&self.std) {
            *xi = (*xi - m) / s;
        }
    }

    /// Standardizes a whole dataset in place.
    pub fn apply_dataset(&self, ds: &mut Dataset) {
        for row in &mut ds.samples {
            self.apply(row);
        }
    }
}

impl Columnar for Standardizer {
    fn schema() -> ColumnSchema {
        ColumnSchema::new("attack/standardizer", 1)
    }

    fn encode_columns(&self, frame: &mut ColumnFrame) {
        frame.push_f64(self.mean.clone());
        frame.push_f64(self.std.clone());
    }

    fn decode_columns(reader: &mut FrameReader) -> Result<Self, FrameError> {
        let mean = reader.f64s()?;
        let std = reader.f64s()?;
        if mean.len() != std.len() {
            return Err(FrameError::new("standardizer mean/std length mismatch"));
        }
        Ok(Standardizer { mean, std })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::EventId;
    use rand::SeedableRng;

    #[test]
    fn trace_features_pools_rows() {
        let mut t = Trace::new(vec![EventId(0), EventId(1)], 1);
        t.push_slice(&[1.0, 10.0]);
        t.push_slice(&[3.0, 20.0]);
        t.push_slice(&[5.0, 30.0]);
        let f = trace_features(&t, 2);
        assert_eq!(f, vec![2.0, 5.0, 9.0, 5.0, 15.0, 30.0, 60.0, 30.0]);
    }

    #[test]
    fn trace_feature_len_pins_the_output_length() {
        // 2 events × 3 samples pooled by 2 → ceil(3/2) + 2 = 4 per row.
        assert_eq!(trace_feature_len(2, 3, 2), 8);
        for (events, samples, pool) in
            [(1usize, 1usize, 1usize), (4, 3000, 20), (4, 301, 25), (3, 0, 7)]
        {
            let mut t = Trace::new((0..events).map(|i| EventId(i as u32)).collect(), 1);
            for s in 0..samples {
                t.push_slice(&vec![s as f64; events]);
            }
            let f = trace_features(&t, pool);
            assert_eq!(
                f.len(),
                trace_feature_len(events, samples, pool),
                "events {events} samples {samples} pool {pool}"
            );
        }
    }

    #[test]
    fn split_preserves_all_samples() {
        let ds = Dataset::new(
            (0..100).map(|i| vec![i as f64]).collect(),
            (0..100).map(|i| i % 4).collect(),
            4,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let (tr, va) = ds.split(0.7, &mut rng);
        assert_eq!(tr.len(), 70);
        assert_eq!(va.len(), 30);
        let mut all: Vec<f64> = tr.samples.iter().chain(&va.samples).map(|s| s[0]).collect();
        all.sort_by(f64::total_cmp);
        assert_eq!(all, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn head_takes_a_prefix() {
        let ds = Dataset::new(
            (0..10).map(|i| vec![i as f64]).collect(),
            (0..10).map(|i| i % 2).collect(),
            2,
        );
        let h = ds.head(4);
        assert_eq!(h.len(), 4);
        assert_eq!(h.sample(3), &[3.0]);
        assert_eq!(h.labels, vec![0, 1, 0, 1]);
    }

    #[test]
    fn standardizer_zero_means_unit_std() {
        let data: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, 100.0 + 2.0 * i as f64])
            .collect();
        let mat = Mat::from_rows(&data);
        let std = Standardizer::fit(&mat);
        let mut transformed = mat.clone();
        for row in &mut transformed {
            std.apply(row);
        }
        for d in 0..2 {
            let col: Vec<f64> = transformed.iter().map(|r| r[d]).collect();
            assert!(crate::stats::mean(&col).abs() < 1e-9);
            assert!((crate::stats::std_dev(&col) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standardizer_is_reusable_on_new_data() {
        let data = Mat::from_rows(&[vec![0.0], vec![2.0]]);
        let std = Standardizer::fit(&data);
        let mut x = vec![4.0];
        std.apply(&mut x);
        assert!((x[0] - 3.0).abs() < 1e-9); // (4-1)/1
    }

    #[test]
    fn dataset_and_standardizer_columnar_roundtrip() {
        let ds = Dataset::new(
            (0..6).map(|i| vec![i as f64, -(i as f64) / 3.0]).collect(),
            (0..6).map(|i| i % 3).collect(),
            3,
        );
        assert_eq!(Dataset::from_frame(ds.to_frame()).unwrap(), ds);

        let std = Standardizer::fit(&ds.samples);
        assert_eq!(Standardizer::from_frame(std.to_frame()).unwrap(), std);

        // Labels beyond the decoded class count are an error, not data.
        let mut frame = ColumnFrame::new();
        ds.samples.encode_columns(&mut frame);
        frame.push_u64(vec![0, 1, 2, 0, 1, 9]);
        frame.push_u64(vec![3]);
        assert!(Dataset::from_frame(frame).is_err());
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn push_validates_label() {
        let mut ds = Dataset::new(vec![], vec![], 3);
        ds.push(vec![1.0], 3);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn new_validates_lengths() {
        Dataset::new(vec![vec![1.0]], vec![], 1);
    }
}
