//! A dense row-major matrix: one contiguous `Vec<f64>` plus dimensions.
//!
//! The learning plane stores every sample set and weight block in a
//! `Mat` so the hot SGD/PCA loops walk a single flat allocation instead
//! of chasing one heap pointer per row (`Vec<Vec<f64>>`). Rows are
//! exposed as slices (`row`, `iter`, indexing), which keeps the
//! per-sample arithmetic — and therefore the floating-point accumulation
//! order — identical to the nested layout it replaces.

use aegis_par::{ColumnFrame, ColumnSchema, Columnar, FrameError, FrameReader};
use serde::{Deserialize, Serialize};

/// A row-major `rows × cols` matrix backed by one contiguous buffer.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Mat {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Mat {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// An empty matrix with `cols` fixed and room reserved for `rows`.
    pub fn with_capacity(rows: usize, cols: usize) -> Self {
        Mat {
            data: Vec::with_capacity(rows * cols),
            rows: 0,
            cols,
        }
    }

    /// Copies nested rows into a flat matrix.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            data.extend_from_slice(row);
        }
        Mat {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// Builds a matrix from a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(data: Vec<f64>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer/dims mismatch");
        Mat { data, rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Appends one row. The first push fixes the column count.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the established column count.
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.data.is_empty() {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// The whole buffer, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole buffer, mutable (e.g. `fill(0.0)` to reuse scratch).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Zeroes every element in place, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Iterates over rows as slices.
    pub fn iter(&self) -> RowIter<'_> {
        RowIter { mat: self, next: 0 }
    }

    /// Iterates over rows as mutable slices.
    pub fn iter_mut(&mut self) -> RowIterMut<'_> {
        RowIterMut {
            rest: &mut self.data,
            cols: self.cols,
            remaining: self.rows,
        }
    }

    /// Copies the first `n` rows into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n > rows`.
    pub fn head(&self, n: usize) -> Mat {
        assert!(n <= self.rows, "head({n}) of a {}-row matrix", self.rows);
        Mat {
            data: self.data[..n * self.cols].to_vec(),
            rows: n,
            cols: self.cols,
        }
    }
}

/// The columnar encoding is the in-memory layout itself: one `u64`
/// dims column `[rows, cols]`, then the row-major buffer as a single
/// `f64` page — a warm load copies the page straight into `data`.
impl Columnar for Mat {
    fn schema() -> ColumnSchema {
        ColumnSchema::new("attack/mat", 1)
    }

    fn encode_columns(&self, frame: &mut ColumnFrame) {
        frame.push_u64(vec![self.rows as u64, self.cols as u64]);
        frame.push_f64(self.data.clone());
    }

    fn decode_columns(reader: &mut FrameReader) -> Result<Self, FrameError> {
        let dims = reader.u64s()?;
        let [rows, cols] = dims[..] else {
            return Err(FrameError::new("mat dims column malformed"));
        };
        let rows = aegis_par::store::usize_from_u64(rows, "mat rows")?;
        let cols = aegis_par::store::usize_from_u64(cols, "mat cols")?;
        let data = reader.f64s()?;
        if data.len() != rows.checked_mul(cols).ok_or_else(|| {
            FrameError::new("mat dims overflow")
        })? {
            return Err(FrameError::new("mat buffer/dims mismatch"));
        }
        Ok(Mat { data, rows, cols })
    }
}

impl std::ops::Index<usize> for Mat {
    type Output = [f64];

    fn index(&self, i: usize) -> &[f64] {
        self.row(i)
    }
}

impl std::ops::IndexMut<usize> for Mat {
    fn index_mut(&mut self, i: usize) -> &mut [f64] {
        self.row_mut(i)
    }
}

/// Borrowing row iterator (`&Mat` yields `&[f64]`).
#[derive(Debug, Clone)]
pub struct RowIter<'a> {
    mat: &'a Mat,
    next: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = &'a [f64];

    fn next(&mut self) -> Option<&'a [f64]> {
        if self.next >= self.mat.rows {
            return None;
        }
        let row = self.mat.row(self.next);
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.mat.rows - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for RowIter<'_> {}

/// Mutable row iterator (`&mut Mat` yields `&mut [f64]`).
#[derive(Debug)]
pub struct RowIterMut<'a> {
    rest: &'a mut [f64],
    cols: usize,
    remaining: usize,
}

impl<'a> Iterator for RowIterMut<'a> {
    type Item = &'a mut [f64];

    fn next(&mut self) -> Option<&'a mut [f64]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let rest = std::mem::take(&mut self.rest);
        let (row, rest) = rest.split_at_mut(self.cols);
        self.rest = rest;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RowIterMut<'_> {}

impl<'a> IntoIterator for &'a Mat {
    type Item = &'a [f64];
    type IntoIter = RowIter<'a>;

    fn into_iter(self) -> RowIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &'a mut Mat {
    type Item = &'a mut [f64];
    type IntoIter = RowIterMut<'a>;

    fn into_iter(self) -> RowIterMut<'a> {
        self.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrips_through_row_access() {
        let m = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(&m[2], &[5.0, 6.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn push_row_fixes_columns_on_first_push() {
        let mut m = Mat::default();
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn push_row_rejects_ragged_rows() {
        let mut m = Mat::default();
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        Mat::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn iterators_visit_rows_in_order() {
        let mut m = Mat::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let seen: Vec<f64> = m.iter().map(|r| r[0]).collect();
        assert_eq!(seen, vec![1.0, 2.0, 3.0]);
        for row in &mut m {
            row[0] *= 10.0;
        }
        assert_eq!(m.as_slice(), &[10.0, 20.0, 30.0]);
    }

    #[test]
    fn head_copies_a_prefix() {
        let m = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let h = m.head(2);
        assert_eq!(h.rows(), 2);
        assert_eq!(h.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_mat_iterates_nothing() {
        let m = Mat::default();
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn columnar_roundtrip_is_bit_exact() {
        let m = Mat::from_rows(&[vec![1.5, -0.0], vec![f64::NAN, 2.0f64.powi(-40)]]);
        let back = Mat::from_frame(m.to_frame()).unwrap();
        assert_eq!(back.rows(), 2);
        assert_eq!(back.cols(), 2);
        assert_eq!(
            back.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            m.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        // A frame whose buffer disagrees with its dims must not decode.
        let mut frame = aegis_par::ColumnFrame::new();
        frame.push_u64(vec![2, 2]);
        frame.push_f64(vec![1.0; 3]);
        assert!(Mat::from_frame(frame).is_err());
    }

    #[test]
    fn scratch_reuse_via_fill_zero() {
        let mut g = Mat::zeros(2, 2);
        g[0][0] = 5.0;
        g.fill_zero();
        assert_eq!(g.as_slice(), &[0.0; 4]);
    }
}
