//! Gaussian class-conditional classifier (diagonal LDA / naive Bayes).
//!
//! The paper models per-secret HPC feature values as univariate Gaussians
//! (Section V-B); the matching attacker fits exactly that generative
//! model: per-class feature means with pooled per-dimension variances,
//! predicting by maximum posterior. On the simulated channel this learner
//! reaches the paper's ≳90% clean accuracies where a small
//! softmax/MLP underfits the ordinal keystroke-counting task, and it
//! collapses identically under DP noise — which is the property the
//! defense evaluation needs.

use crate::dataset::Dataset;
use crate::mat::Mat;
use aegis_par::store::usize_from_u64;
use aegis_par::{ColumnFrame, ColumnSchema, Columnar, FrameError, FrameReader};
use serde::{Deserialize, Serialize};

/// A fitted Gaussian class-conditional classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNb {
    /// Per-class feature means, `[class][dim]`.
    means: Mat,
    /// Pooled within-class variance per dimension.
    pooled_var: Vec<f64>,
    /// Log prior per class.
    log_prior: Vec<f64>,
    dim: usize,
}

impl GaussianNb {
    /// Fits the model.
    ///
    /// Classes absent from `train` receive the global mean and a −∞-free
    /// prior floor, so they are effectively never predicted.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit(train: &Dataset) -> Self {
        assert!(!train.is_empty(), "empty training set");
        let dim = train.dim();
        let k = train.n_classes;
        let mut counts = vec![0usize; k];
        let mut means = Mat::zeros(k, dim);
        for (x, &y) in train.samples.iter().zip(&train.labels) {
            counts[y] += 1;
            for (m, xi) in means.row_mut(y).iter_mut().zip(x) {
                *m += xi;
            }
        }
        let global_mean: Vec<f64> = {
            let mut g = vec![0.0; dim];
            for x in &train.samples {
                for (gi, xi) in g.iter_mut().zip(x) {
                    *gi += xi / train.len() as f64;
                }
            }
            g
        };
        for (c, m) in means.iter_mut().enumerate() {
            if counts[c] == 0 {
                m.copy_from_slice(&global_mean);
            } else {
                for mi in m.iter_mut() {
                    *mi /= counts[c] as f64;
                }
            }
        }
        // Pooled within-class variance per dimension.
        let mut pooled_var = vec![0.0; dim];
        for (x, &y) in train.samples.iter().zip(&train.labels) {
            for ((v, xi), m) in pooled_var.iter_mut().zip(x).zip(means.row(y)) {
                *v += (xi - m).powi(2);
            }
        }
        for v in &mut pooled_var {
            *v = (*v / train.len() as f64).max(1e-12);
        }
        let log_prior: Vec<f64> = counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    // Unseen classes must never win a posterior comparison.
                    f64::MIN / 2.0
                } else {
                    (c as f64 / train.len() as f64).ln()
                }
            })
            .collect();
        GaussianNb {
            means,
            pooled_var,
            log_prior,
            dim,
        }
    }

    /// Unnormalized log posterior per class.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn log_posteriors(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        self.means
            .iter()
            .zip(&self.log_prior)
            .map(|(m, lp)| {
                let mut ll = *lp;
                for ((xi, mi), v) in x.iter().zip(m).zip(&self.pooled_var) {
                    ll -= (xi - mi).powi(2) / (2.0 * v);
                }
                ll
            })
            .collect()
    }

    /// Predicted class.
    pub fn predict(&self, x: &[f64]) -> usize {
        let post = self.log_posteriors(x);
        let mut best = 0;
        for (i, &p) in post.iter().enumerate().skip(1) {
            if p > post[best] {
                best = i;
            }
        }
        best
    }

    /// Accuracy over a dataset (0 when empty).
    pub fn accuracy(&self, ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 0.0;
        }
        let correct = ds
            .samples
            .iter()
            .zip(&ds.labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / ds.len() as f64
    }

    /// Mean negative log-likelihood of the true class (a cross-entropy
    /// analogue for training curves); 0 when empty.
    pub fn mean_nll(&self, ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        for (x, &y) in ds.samples.iter().zip(&ds.labels) {
            let post = self.log_posteriors(x);
            // log-softmax over posteriors.
            let max = post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let lse = max + post.iter().map(|&p| (p - max).exp()).sum::<f64>().ln();
            acc += lse - post[y];
        }
        acc / ds.len() as f64
    }
}

impl Columnar for GaussianNb {
    fn schema() -> ColumnSchema {
        ColumnSchema::new("attack/gaussian-nb", 1)
    }

    fn encode_columns(&self, frame: &mut ColumnFrame) {
        self.means.encode_columns(frame);
        frame.push_f64(self.pooled_var.clone());
        frame.push_f64(self.log_prior.clone());
        frame.push_u64(vec![self.dim as u64]);
    }

    fn decode_columns(reader: &mut FrameReader) -> Result<Self, FrameError> {
        let means = Mat::decode_columns(reader)?;
        let pooled_var = reader.f64s()?;
        let log_prior = reader.f64s()?;
        let tail = reader.u64s()?;
        let [dim] = tail[..] else {
            return Err(FrameError::new("nb dim column malformed"));
        };
        let dim = usize_from_u64(dim, "nb dim")?;
        if means.cols() != dim || pooled_var.len() != dim || log_prior.len() != means.rows() {
            return Err(FrameError::new("nb component dimensions disagree"));
        }
        Ok(GaussianNb {
            means,
            pooled_var,
            log_prior,
            dim,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::rand_util::normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ordinal_dataset(n_per: usize, noise_dims: usize, rng: &mut StdRng) -> Dataset {
        let mut ds = Dataset::new(vec![], vec![], 10);
        for _ in 0..n_per {
            for c in 0..10usize {
                let mut x = vec![normal(rng, c as f64, 0.05)];
                for _ in 0..noise_dims {
                    x.push(normal(rng, 0.0, 1.0));
                }
                ds.push(x, c);
            }
        }
        ds
    }

    #[test]
    fn solves_the_ordinal_task_softmax_struggles_with() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = ordinal_dataset(16, 27, &mut rng);
        let (train, val) = ds.split(0.7, &mut rng);
        let nb = GaussianNb::fit(&train);
        assert!(nb.accuracy(&val) > 0.9, "{}", nb.accuracy(&val));
    }

    #[test]
    fn respects_class_priors() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ds = Dataset::new(vec![], vec![], 2);
        // Overlapping classes, 9:1 prior.
        for _ in 0..900 {
            ds.push(vec![normal(&mut rng, 0.0, 1.0)], 0);
        }
        for _ in 0..100 {
            ds.push(vec![normal(&mut rng, 0.5, 1.0)], 1);
        }
        let nb = GaussianNb::fit(&ds);
        // A mildly class-1-looking point is still called class 0.
        assert_eq!(nb.predict(&[0.4]), 0);
    }

    #[test]
    fn nll_decreases_with_separation() {
        let mut rng = StdRng::seed_from_u64(3);
        let close = {
            let mut ds = Dataset::new(vec![], vec![], 2);
            for _ in 0..200 {
                ds.push(vec![normal(&mut rng, 0.0, 1.0)], 0);
                ds.push(vec![normal(&mut rng, 0.5, 1.0)], 1);
            }
            ds
        };
        let far = {
            let mut ds = Dataset::new(vec![], vec![], 2);
            for _ in 0..200 {
                ds.push(vec![normal(&mut rng, 0.0, 1.0)], 0);
                ds.push(vec![normal(&mut rng, 10.0, 1.0)], 1);
            }
            ds
        };
        let nb_close = GaussianNb::fit(&close);
        let nb_far = GaussianNb::fit(&far);
        assert!(nb_far.mean_nll(&far) < nb_close.mean_nll(&close));
    }

    #[test]
    fn unseen_classes_are_never_predicted() {
        let ds = Dataset::new(vec![vec![0.0], vec![1.0]], vec![0, 1], 3);
        let nb = GaussianNb::fit(&ds);
        for x in [-5.0, 0.0, 0.5, 1.0, 5.0] {
            assert_ne!(nb.predict(&[x]), 2);
        }
    }

    #[test]
    fn random_features_stay_near_chance() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(4);
        let mut ds = Dataset::new(vec![], vec![], 4);
        for _ in 0..800 {
            ds.push(
                vec![normal(&mut rng, 0.0, 1.0), normal(&mut rng, 0.0, 1.0)],
                rng.gen_range(0..4),
            );
        }
        let (train, val) = ds.split(0.7, &mut rng);
        let nb = GaussianNb::fit(&train);
        assert!(nb.accuracy(&val) < 0.45, "{}", nb.accuracy(&val));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        GaussianNb::fit(&Dataset::new(vec![], vec![], 2));
    }

    #[test]
    fn columnar_roundtrip_predicts_identically() {
        let mut rng = StdRng::seed_from_u64(5);
        let ds = ordinal_dataset(8, 3, &mut rng);
        let nb = GaussianNb::fit(&ds);
        let back = GaussianNb::from_frame(nb.to_frame()).unwrap();
        assert_eq!(back, nb);
        for x in ds.samples.iter().take(20) {
            assert_eq!(back.predict(x), nb.predict(x));
        }
        // Disagreeing component dimensions must not decode.
        let mut frame = aegis_par::ColumnFrame::new();
        nb.means.encode_columns(&mut frame);
        frame.push_f64(vec![1.0; nb.dim + 1]);
        frame.push_f64(nb.log_prior.clone());
        frame.push_u64(vec![nb.dim as u64]);
        assert!(GaussianNb::from_frame(frame).is_err());
    }
}
