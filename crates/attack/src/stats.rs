//! Basic statistics: moments, Gaussian fitting, Q-Q analysis.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (averaging the middle pair for even lengths); 0 when empty.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// A univariate Gaussian, the distribution the paper fits to HPC event
/// values per secret ("we follow previous work to fit the monitored event
/// values as a Gaussian-like unimodal distribution").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    /// Mean.
    pub mu: f64,
    /// Standard deviation (floored at a tiny positive value).
    pub sigma: f64,
}

impl Gaussian {
    /// Fits mean and standard deviation to samples.
    pub fn fit(xs: &[f64]) -> Self {
        Gaussian {
            mu: mean(xs),
            sigma: std_dev(xs).max(1e-12),
        }
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Standard-normal quantile (inverse CDF) via the Acklam
    /// approximation, used for Q-Q plots.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn standard_quantile(p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0,1)");
        // Acklam's rational approximation, |relative error| < 1.15e-9.
        const A: [f64; 6] = [
            -3.969683028665376e+01,
            2.209460984245205e+02,
            -2.759285104469687e+02,
            1.383_577_518_672_69e2,
            -3.066479806614716e+01,
            2.506628277459239e+00,
        ];
        const B: [f64; 5] = [
            -5.447609879822406e+01,
            1.615858368580409e+02,
            -1.556989798598866e+02,
            6.680131188771972e+01,
            -1.328068155288572e+01,
        ];
        const C: [f64; 6] = [
            -7.784894002430293e-03,
            -3.223964580411365e-01,
            -2.400758277161838e+00,
            -2.549732539343734e+00,
            4.374664141464968e+00,
            2.938163982698783e+00,
        ];
        const D: [f64; 4] = [
            7.784695709041462e-03,
            3.224671290700398e-01,
            2.445134137142996e+00,
            3.754408661907416e+00,
        ];
        let p_low = 0.02425;
        if p < p_low {
            let q = (-2.0 * p.ln()).sqrt();
            (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        } else if p <= 1.0 - p_low {
            let q = p - 0.5;
            let r = q * q;
            (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
                / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
        } else {
            -Self::standard_quantile(1.0 - p)
        }
    }
}

/// One point of a Q-Q plot: theoretical standard-normal quantile vs the
/// standardized sample quantile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QqPoint {
    /// Theoretical N(0,1) quantile.
    pub theoretical: f64,
    /// Standardized sample quantile.
    pub sample: f64,
}

/// Q-Q points of `xs` against N(0,1) after standardization (Fig. 3b).
pub fn qq_against_normal(xs: &[f64]) -> Vec<QqPoint> {
    let g = Gaussian::fit(xs);
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| QqPoint {
            theoretical: Gaussian::standard_quantile((i as f64 + 0.5) / n as f64),
            sample: (x - g.mu) / g.sigma,
        })
        .collect()
}

/// Pearson correlation of the Q-Q points — near 1.0 indicates normality.
pub fn qq_correlation(points: &[QqPoint]) -> f64 {
    let xs: Vec<f64> = points.iter().map(|p| p.theoretical).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.sample).collect();
    correlation(&xs, &ys)
}

/// Pearson correlation coefficient; 0 when degenerate.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let mx = mean(&xs[..n]);
    let my = mean(&ys[..n]);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::rand_util::normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_of_known_data() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn gaussian_fit_recovers_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let g = Gaussian::fit(&xs);
        assert!((g.mu - 5.0).abs() < 0.05, "{}", g.mu);
        assert!((g.sigma - 2.0).abs() < 0.05, "{}", g.sigma);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = Gaussian {
            mu: 0.0,
            sigma: 1.0,
        };
        let mut acc = 0.0;
        let dx = 0.01;
        let mut x = -8.0;
        while x < 8.0 {
            acc += g.pdf(x) * dx;
            x += dx;
        }
        assert!((acc - 1.0).abs() < 1e-3, "{acc}");
    }

    #[test]
    fn quantile_is_inverse_of_cdf_landmarks() {
        assert!((Gaussian::standard_quantile(0.5)).abs() < 1e-8);
        assert!((Gaussian::standard_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((Gaussian::standard_quantile(0.025) + 1.959964).abs() < 1e-4);
    }

    #[test]
    fn qq_of_gaussian_data_is_straight() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..5_000).map(|_| normal(&mut rng, 10.0, 3.0)).collect();
        let corr = qq_correlation(&qq_against_normal(&xs));
        assert!(corr > 0.999, "{corr}");
    }

    #[test]
    fn qq_of_uniform_data_deviates() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..5_000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let corr = qq_correlation(&qq_against_normal(&xs));
        assert!(corr < 0.999, "{corr}");
    }

    #[test]
    fn correlation_of_linear_data_is_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_bad_probability() {
        Gaussian::standard_quantile(0.0);
    }
}
