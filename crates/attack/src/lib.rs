//! # aegis-attack
//!
//! The attacker's toolbox, implemented from scratch: feature extraction
//! from HPC traces, statistics (Gaussian fitting, Q-Q analysis), PCA,
//! classifiers (softmax regression and an MLP, standing in for the
//! paper's CNN), CTC-style sequence decoding for model extraction, and
//! empirical mutual-information estimators used to evaluate the defense.
//!
//! The paper's central claim is information-theoretic — DP noise destroys
//! the correlation between secrets and HPC observations for *any*
//! machine-learning attacker — so the exact learner is fungible; these
//! learners reach the paper's ≳90% clean accuracy on the simulated
//! channel and collapse identically under the defense.

mod ctc;
mod dataset;
mod mat;
mod mi;
mod mlp;
mod nb;
mod pca;
mod softmax;
mod stats;
mod train;

pub use ctc::{ctc_collapse, layer_match_accuracy, levenshtein};
pub use dataset::{trace_feature_len, trace_features, trace_features_into, Dataset, Standardizer};
pub use mat::{Mat, RowIter, RowIterMut};
pub use mi::{label_feature_mi, mutual_information_hist};
pub use mlp::{Mlp, MlpConfig};
pub use nb::GaussianNb;
pub use pca::Pca;
pub use softmax::{SoftmaxRegression, TrainConfig};
pub use stats::{
    correlation, mean, median, qq_against_normal, qq_correlation, std_dev, variance, Gaussian,
    QqPoint,
};
pub use train::{EpochStats, TrainingCurve};
