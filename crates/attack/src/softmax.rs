//! Multinomial logistic (softmax) regression trained with minibatch SGD.
//!
//! Stands in for the paper's CNN classifier in the website-fingerprinting
//! and keystroke-sniffing attacks: the defense's claim is information-
//! theoretic, so any learner that reaches ≳90% accuracy on the clean
//! channel demonstrates the same accuracy collapse under DP noise.
//!
//! The hot path ([`SoftmaxRegression::train`]) runs on a flat [`Mat`]
//! weight block with gradient and probability scratch reused across
//! minibatches; [`SoftmaxRegression::train_scalar`] keeps the nested
//! `Vec<Vec<f64>>` loop as the bit-identical property-test reference.

use crate::dataset::Dataset;
use crate::mat::Mat;
use crate::train::{EpochStats, TrainingCurve};
use aegis_microarch::rand_util::normal;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// SGD hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Minibatch size.
    pub batch_size: usize,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 60,
            lr: 0.02,
            batch_size: 16,
            l2: 1e-4,
        }
    }
}

/// A trained softmax-regression classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxRegression {
    w: Mat, // [class][dim]
    b: Vec<f64>,
    dim: usize,
}

impl SoftmaxRegression {
    /// Trains on `train`, evaluating on `val` after each epoch.
    ///
    /// Bit-identical to [`SoftmaxRegression::train_scalar`] for the same
    /// RNG seed: the accumulation order is unchanged, only storage is
    /// flat and scratch is reused across batches.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or dimensions are inconsistent.
    pub fn train(
        train: &Dataset,
        val: &Dataset,
        cfg: TrainConfig,
        rng: &mut StdRng,
    ) -> (Self, TrainingCurve) {
        assert!(!train.is_empty(), "empty training set");
        let dim = train.dim();
        let k = train.n_classes;
        let mut model = SoftmaxRegression {
            w: init_normal(k, dim, 0.01, rng),
            b: vec![0.0; k],
            dim,
        };
        let mut curve = TrainingCurve::new();
        let mut order: Vec<usize> = (0..train.len()).collect();
        // Adam optimizer state (first/second moments per parameter).
        let mut adam = AdamState::new(k, dim);
        // Per-call scratch, zeroed per batch / per sample instead of
        // reallocated.
        let mut grad_w = Mat::zeros(k, dim);
        let mut grad_b = vec![0.0; k];
        let mut p = vec![0.0; k];
        for epoch in 0..cfg.epochs {
            order.shuffle(rng);
            let mut loss_acc = 0.0;
            let mut correct = 0usize;
            for batch in order.chunks(cfg.batch_size.max(1)) {
                grad_w.fill_zero();
                grad_b.fill(0.0);
                for &i in batch {
                    let x = train.samples.row(i);
                    let y = train.labels[i];
                    for (c, pc) in p.iter_mut().enumerate() {
                        *pc = model.w.row(c).iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>()
                            + model.b[c];
                    }
                    softmax_inplace(&mut p);
                    loss_acc += -(p[y].max(1e-12)).ln();
                    if argmax(&p) == y {
                        correct += 1;
                    }
                    for c in 0..k {
                        let err = p[c] - f64::from(c == y);
                        for (g, xi) in grad_w.row_mut(c).iter_mut().zip(x) {
                            *g += err * xi;
                        }
                        grad_b[c] += err;
                    }
                }
                let inv = 1.0 / batch.len() as f64;
                for (c, gb) in grad_b.iter_mut().enumerate() {
                    for g in grad_w.row_mut(c) {
                        *g *= inv;
                    }
                    *gb *= inv;
                    let wc = model.w.row(c);
                    for (g, w) in grad_w.row_mut(c).iter_mut().zip(wc) {
                        *g += cfg.l2 * w;
                    }
                }
                adam.step(cfg.lr, &grad_w, &grad_b, &mut model.w, &mut model.b);
            }
            curve.push(EpochStats {
                epoch,
                train_loss: loss_acc / train.len() as f64,
                train_acc: correct as f64 / train.len() as f64,
                val_acc: model.accuracy(val),
            });
        }
        (model, curve)
    }

    /// The original nested-`Vec` training loop, kept verbatim as the
    /// reference implementation for the flat↔scalar property tests.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or dimensions are inconsistent.
    pub fn train_scalar(
        train: &Dataset,
        val: &Dataset,
        cfg: TrainConfig,
        rng: &mut StdRng,
    ) -> (Self, TrainingCurve) {
        assert!(!train.is_empty(), "empty training set");
        let dim = train.dim();
        let k = train.n_classes;
        let mut w: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..dim).map(|_| normal(rng, 0.0, 0.01)).collect())
            .collect();
        let mut b = vec![0.0; k];
        let probabilities = |w: &[Vec<f64>], b: &[f64], x: &[f64]| -> Vec<f64> {
            let logits: Vec<f64> = w
                .iter()
                .zip(b)
                .map(|(w, b)| w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b)
                .collect();
            softmax(&logits)
        };
        let mut curve = TrainingCurve::new();
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut adam = AdamScalar::new(k, dim);
        for epoch in 0..cfg.epochs {
            order.shuffle(rng);
            let mut loss_acc = 0.0;
            let mut correct = 0usize;
            for batch in order.chunks(cfg.batch_size.max(1)) {
                let mut grad_w = vec![vec![0.0; dim]; k];
                let mut grad_b = vec![0.0; k];
                for &i in batch {
                    let x = &train.samples[i];
                    let y = train.labels[i];
                    let p = probabilities(&w, &b, x);
                    loss_acc += -(p[y].max(1e-12)).ln();
                    if argmax(&p) == y {
                        correct += 1;
                    }
                    for c in 0..k {
                        let err = p[c] - f64::from(c == y);
                        for (g, xi) in grad_w[c].iter_mut().zip(x) {
                            *g += err * xi;
                        }
                        grad_b[c] += err;
                    }
                }
                let inv = 1.0 / batch.len() as f64;
                for c in 0..k {
                    for g in &mut grad_w[c] {
                        *g *= inv;
                    }
                    grad_b[c] *= inv;
                    for (j, wj) in w[c].iter_mut().enumerate() {
                        grad_w[c][j] += cfg.l2 * *wj;
                    }
                }
                adam.step(cfg.lr, &grad_w, &grad_b, &mut w, &mut b);
            }
            let model = SoftmaxRegression {
                w: Mat::from_rows(&w),
                b: b.clone(),
                dim,
            };
            curve.push(EpochStats {
                epoch,
                train_loss: loss_acc / train.len() as f64,
                train_acc: correct as f64 / train.len() as f64,
                val_acc: model.accuracy(val),
            });
        }
        let model = SoftmaxRegression {
            w: Mat::from_rows(&w),
            b,
            dim,
        };
        (model, curve)
    }

    /// Class probabilities for one sample.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn probabilities(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        let logits: Vec<f64> = self
            .w
            .iter()
            .zip(&self.b)
            .map(|(w, b)| w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b)
            .collect();
        softmax(&logits)
    }

    /// Predicted class for one sample.
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.probabilities(x))
    }

    /// Accuracy over a dataset (0 if empty).
    pub fn accuracy(&self, ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 0.0;
        }
        let correct = ds
            .samples
            .iter()
            .zip(&ds.labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / ds.len() as f64
    }
}

/// Draws a `rows × cols` matrix of `N(0, s²)` entries in row-major order —
/// the same RNG consumption order as the nested initializer it replaces.
fn init_normal(rows: usize, cols: usize, s: f64, rng: &mut StdRng) -> Mat {
    let mut m = Mat::with_capacity(rows, cols);
    let mut row = vec![0.0; cols];
    for _ in 0..rows {
        for w in &mut row {
            *w = normal(rng, 0.0, s);
        }
        m.push_row(&row);
    }
    m
}

const BETA1: f64 = 0.9;
const BETA2: f64 = 0.999;
const ADAM_EPS: f64 = 1e-8;

/// Adam optimizer state over the flat `[class][dim]` weights and biases.
#[derive(Debug, Clone)]
pub(crate) struct AdamState {
    m_w: Mat,
    v_w: Mat,
    m_b: Vec<f64>,
    v_b: Vec<f64>,
    t: u64,
}

impl AdamState {
    pub(crate) fn new(k: usize, dim: usize) -> Self {
        AdamState {
            m_w: Mat::zeros(k, dim),
            v_w: Mat::zeros(k, dim),
            m_b: vec![0.0; k],
            v_b: vec![0.0; k],
            t: 0,
        }
    }

    pub(crate) fn step(
        &mut self,
        lr: f64,
        grad_w: &Mat,
        grad_b: &[f64],
        w: &mut Mat,
        b: &mut [f64],
    ) {
        self.t += 1;
        let bc1 = 1.0 - BETA1.powi(self.t as i32);
        let bc2 = 1.0 - BETA2.powi(self.t as i32);
        for c in 0..w.rows() {
            let (gw, wc) = (grad_w.row(c), w.row_mut(c));
            let (mw, vw) = (self.m_w.row_mut(c), self.v_w.row_mut(c));
            for j in 0..wc.len() {
                let g = gw[j];
                let m = &mut mw[j];
                let v = &mut vw[j];
                *m = BETA1 * *m + (1.0 - BETA1) * g;
                *v = BETA2 * *v + (1.0 - BETA2) * g * g;
                wc[j] -= lr * (*m / bc1) / ((*v / bc2).sqrt() + ADAM_EPS);
            }
            let g = grad_b[c];
            let m = &mut self.m_b[c];
            let v = &mut self.v_b[c];
            *m = BETA1 * *m + (1.0 - BETA1) * g;
            *v = BETA2 * *v + (1.0 - BETA2) * g * g;
            b[c] -= lr * (*m / bc1) / ((*v / bc2).sqrt() + ADAM_EPS);
        }
    }
}

/// The nested-`Vec` Adam loop used only by [`SoftmaxRegression::train_scalar`].
#[derive(Debug, Clone)]
struct AdamScalar {
    m_w: Vec<Vec<f64>>,
    v_w: Vec<Vec<f64>>,
    m_b: Vec<f64>,
    v_b: Vec<f64>,
    t: u64,
}

impl AdamScalar {
    fn new(k: usize, dim: usize) -> Self {
        AdamScalar {
            m_w: vec![vec![0.0; dim]; k],
            v_w: vec![vec![0.0; dim]; k],
            m_b: vec![0.0; k],
            v_b: vec![0.0; k],
            t: 0,
        }
    }

    fn step(
        &mut self,
        lr: f64,
        grad_w: &[Vec<f64>],
        grad_b: &[f64],
        w: &mut [Vec<f64>],
        b: &mut [f64],
    ) {
        self.t += 1;
        let bc1 = 1.0 - BETA1.powi(self.t as i32);
        let bc2 = 1.0 - BETA2.powi(self.t as i32);
        for c in 0..w.len() {
            for j in 0..w[c].len() {
                let g = grad_w[c][j];
                let m = &mut self.m_w[c][j];
                let v = &mut self.v_w[c][j];
                *m = BETA1 * *m + (1.0 - BETA1) * g;
                *v = BETA2 * *v + (1.0 - BETA2) * g * g;
                w[c][j] -= lr * (*m / bc1) / ((*v / bc2).sqrt() + ADAM_EPS);
            }
            let g = grad_b[c];
            let m = &mut self.m_b[c];
            let v = &mut self.v_b[c];
            *m = BETA1 * *m + (1.0 - BETA1) * g;
            *v = BETA2 * *v + (1.0 - BETA2) * g * g;
            b[c] -= lr * (*m / bc1) / ((*v / bc2).sqrt() + ADAM_EPS);
        }
    }
}

/// Numerically stable softmax.
pub(crate) fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Numerically stable softmax computed in place over a logits buffer.
///
/// Same arithmetic, same order as [`softmax`] — exponentials in index
/// order, one left-to-right sum, then the division — so the results are
/// bit-identical; it just reuses the caller's buffer.
pub(crate) fn softmax_inplace(logits: &mut [f64]) {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for l in logits.iter_mut() {
        *l = (*l - max).exp();
    }
    let sum: f64 = logits.iter().sum();
    for l in logits.iter_mut() {
        *l /= sum;
    }
}

/// Index of the maximum element (first on ties, 0 when empty).
pub(crate) fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gaussian_blobs(n_per: usize, rng: &mut StdRng) -> Dataset {
        let centers = [[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]];
        let mut ds = Dataset::new(vec![], vec![], 3);
        for (label, c) in centers.iter().enumerate() {
            for _ in 0..n_per {
                ds.push(vec![normal(rng, c[0], 0.6), normal(rng, c[1], 0.6)], label);
            }
        }
        ds
    }

    #[test]
    fn learns_separable_blobs() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = gaussian_blobs(200, &mut rng);
        let (train, val) = ds.split(0.7, &mut rng);
        let (model, curve) =
            SoftmaxRegression::train(&train, &val, TrainConfig::default(), &mut rng);
        assert!(curve.final_val_acc() > 0.95, "{}", curve.final_val_acc());
        assert!(model.accuracy(&val) > 0.95);
    }

    #[test]
    fn loss_decreases_over_training() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = gaussian_blobs(100, &mut rng);
        let (train, val) = ds.split(0.7, &mut rng);
        let (_, curve) = SoftmaxRegression::train(&train, &val, TrainConfig::default(), &mut rng);
        let first = curve.epochs.first().unwrap().train_loss;
        let last = curve.epochs.last().unwrap().train_loss;
        assert!(last < first * 0.5, "first {first} last {last}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = gaussian_blobs(30, &mut rng);
        let (train, val) = ds.split(0.8, &mut rng);
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let (model, _) = SoftmaxRegression::train(&train, &val, cfg, &mut rng);
        let p = model.probabilities(&[1.0, 1.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn random_labels_stay_near_chance() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(4);
        let mut ds = Dataset::new(vec![], vec![], 4);
        for _ in 0..400 {
            ds.push(
                vec![normal(&mut rng, 0.0, 1.0), normal(&mut rng, 0.0, 1.0)],
                rng.gen_range(0..4),
            );
        }
        let (train, val) = ds.split(0.7, &mut rng);
        let (_, curve) = SoftmaxRegression::train(&train, &val, TrainConfig::default(), &mut rng);
        assert!(curve.final_val_acc() < 0.45, "{}", curve.final_val_acc());
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn softmax_inplace_bit_matches_allocating_softmax() {
        let logits = vec![-3.25, 0.0, 1.5, 700.0, -700.0];
        let reference = softmax(&logits);
        let mut buf = logits;
        softmax_inplace(&mut buf);
        assert_eq!(buf, reference);
    }

    #[test]
    fn argmax_ties_take_first() {
        assert_eq!(argmax(&[1.0, 1.0, 0.0]), 0);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn flat_matches_scalar_reference() {
        let mut rng = StdRng::seed_from_u64(9);
        let ds = gaussian_blobs(40, &mut rng);
        let (train, val) = ds.split(0.7, &mut rng);
        let cfg = TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        };
        let (flat, curve_f) =
            SoftmaxRegression::train(&train, &val, cfg, &mut StdRng::seed_from_u64(42));
        let (scalar, curve_s) =
            SoftmaxRegression::train_scalar(&train, &val, cfg, &mut StdRng::seed_from_u64(42));
        assert_eq!(flat, scalar);
        assert_eq!(curve_f, curve_s);
    }
}
