//! Multinomial logistic (softmax) regression trained with minibatch SGD.
//!
//! Stands in for the paper's CNN classifier in the website-fingerprinting
//! and keystroke-sniffing attacks: the defense's claim is information-
//! theoretic, so any learner that reaches ≳90% accuracy on the clean
//! channel demonstrates the same accuracy collapse under DP noise.

use crate::dataset::Dataset;
use crate::train::{EpochStats, TrainingCurve};
use aegis_microarch::rand_util::normal;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// SGD hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Minibatch size.
    pub batch_size: usize,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 60,
            lr: 0.02,
            batch_size: 16,
            l2: 1e-4,
        }
    }
}

/// A trained softmax-regression classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxRegression {
    w: Vec<Vec<f64>>, // [class][dim]
    b: Vec<f64>,
    dim: usize,
}

impl SoftmaxRegression {
    /// Trains on `train`, evaluating on `val` after each epoch.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or dimensions are inconsistent.
    pub fn train(
        train: &Dataset,
        val: &Dataset,
        cfg: TrainConfig,
        rng: &mut StdRng,
    ) -> (Self, TrainingCurve) {
        assert!(!train.is_empty(), "empty training set");
        let dim = train.dim();
        let k = train.n_classes;
        let mut model = SoftmaxRegression {
            w: (0..k)
                .map(|_| (0..dim).map(|_| normal(rng, 0.0, 0.01)).collect())
                .collect(),
            b: vec![0.0; k],
            dim,
        };
        let mut curve = TrainingCurve::new();
        let mut order: Vec<usize> = (0..train.len()).collect();
        // Adam optimizer state (first/second moments per parameter).
        let mut adam = AdamState::new(k, dim);
        for epoch in 0..cfg.epochs {
            order.shuffle(rng);
            let mut loss_acc = 0.0;
            let mut correct = 0usize;
            for batch in order.chunks(cfg.batch_size.max(1)) {
                let mut grad_w = vec![vec![0.0; dim]; k];
                let mut grad_b = vec![0.0; k];
                for &i in batch {
                    let x = &train.samples[i];
                    let y = train.labels[i];
                    let p = model.probabilities(x);
                    loss_acc += -(p[y].max(1e-12)).ln();
                    if argmax(&p) == y {
                        correct += 1;
                    }
                    for c in 0..k {
                        let err = p[c] - f64::from(c == y);
                        for (g, xi) in grad_w[c].iter_mut().zip(x) {
                            *g += err * xi;
                        }
                        grad_b[c] += err;
                    }
                }
                let inv = 1.0 / batch.len() as f64;
                for c in 0..k {
                    for g in &mut grad_w[c] {
                        *g *= inv;
                    }
                    grad_b[c] *= inv;
                    for (j, w) in model.w[c].iter_mut().enumerate() {
                        grad_w[c][j] += cfg.l2 * *w;
                    }
                }
                adam.step(cfg.lr, &grad_w, &grad_b, &mut model.w, &mut model.b);
            }
            curve.push(EpochStats {
                epoch,
                train_loss: loss_acc / train.len() as f64,
                train_acc: correct as f64 / train.len() as f64,
                val_acc: model.accuracy(val),
            });
        }
        (model, curve)
    }

    /// Class probabilities for one sample.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn probabilities(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        let logits: Vec<f64> = self
            .w
            .iter()
            .zip(&self.b)
            .map(|(w, b)| w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b)
            .collect();
        softmax(&logits)
    }

    /// Predicted class for one sample.
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.probabilities(x))
    }

    /// Accuracy over a dataset (0 if empty).
    pub fn accuracy(&self, ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 0.0;
        }
        let correct = ds
            .samples
            .iter()
            .zip(&ds.labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / ds.len() as f64
    }
}

/// Adam optimizer state over the `[class][dim]` weights and biases.
#[derive(Debug, Clone)]
pub(crate) struct AdamState {
    m_w: Vec<Vec<f64>>,
    v_w: Vec<Vec<f64>>,
    m_b: Vec<f64>,
    v_b: Vec<f64>,
    t: u64,
}

impl AdamState {
    const BETA1: f64 = 0.9;
    const BETA2: f64 = 0.999;
    const EPS: f64 = 1e-8;

    pub(crate) fn new(k: usize, dim: usize) -> Self {
        AdamState {
            m_w: vec![vec![0.0; dim]; k],
            v_w: vec![vec![0.0; dim]; k],
            m_b: vec![0.0; k],
            v_b: vec![0.0; k],
            t: 0,
        }
    }

    pub(crate) fn step(
        &mut self,
        lr: f64,
        grad_w: &[Vec<f64>],
        grad_b: &[f64],
        w: &mut [Vec<f64>],
        b: &mut [f64],
    ) {
        self.t += 1;
        let bc1 = 1.0 - Self::BETA1.powi(self.t as i32);
        let bc2 = 1.0 - Self::BETA2.powi(self.t as i32);
        for c in 0..w.len() {
            for j in 0..w[c].len() {
                let g = grad_w[c][j];
                let m = &mut self.m_w[c][j];
                let v = &mut self.v_w[c][j];
                *m = Self::BETA1 * *m + (1.0 - Self::BETA1) * g;
                *v = Self::BETA2 * *v + (1.0 - Self::BETA2) * g * g;
                w[c][j] -= lr * (*m / bc1) / ((*v / bc2).sqrt() + Self::EPS);
            }
            let g = grad_b[c];
            let m = &mut self.m_b[c];
            let v = &mut self.v_b[c];
            *m = Self::BETA1 * *m + (1.0 - Self::BETA1) * g;
            *v = Self::BETA2 * *v + (1.0 - Self::BETA2) * g * g;
            b[c] -= lr * (*m / bc1) / ((*v / bc2).sqrt() + Self::EPS);
        }
    }
}

/// Numerically stable softmax.
pub(crate) fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Index of the maximum element (first on ties, 0 when empty).
pub(crate) fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gaussian_blobs(n_per: usize, rng: &mut StdRng) -> Dataset {
        let centers = [[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]];
        let mut ds = Dataset::new(vec![], vec![], 3);
        for (label, c) in centers.iter().enumerate() {
            for _ in 0..n_per {
                ds.push(vec![normal(rng, c[0], 0.6), normal(rng, c[1], 0.6)], label);
            }
        }
        ds
    }

    #[test]
    fn learns_separable_blobs() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = gaussian_blobs(200, &mut rng);
        let (train, val) = ds.split(0.7, &mut rng);
        let (model, curve) =
            SoftmaxRegression::train(&train, &val, TrainConfig::default(), &mut rng);
        assert!(curve.final_val_acc() > 0.95, "{}", curve.final_val_acc());
        assert!(model.accuracy(&val) > 0.95);
    }

    #[test]
    fn loss_decreases_over_training() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = gaussian_blobs(100, &mut rng);
        let (train, val) = ds.split(0.7, &mut rng);
        let (_, curve) = SoftmaxRegression::train(&train, &val, TrainConfig::default(), &mut rng);
        let first = curve.epochs.first().unwrap().train_loss;
        let last = curve.epochs.last().unwrap().train_loss;
        assert!(last < first * 0.5, "first {first} last {last}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = gaussian_blobs(30, &mut rng);
        let (train, val) = ds.split(0.8, &mut rng);
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let (model, _) = SoftmaxRegression::train(&train, &val, cfg, &mut rng);
        let p = model.probabilities(&[1.0, 1.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn random_labels_stay_near_chance() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(4);
        let mut ds = Dataset::new(vec![], vec![], 4);
        for _ in 0..400 {
            ds.push(
                vec![normal(&mut rng, 0.0, 1.0), normal(&mut rng, 0.0, 1.0)],
                rng.gen_range(0..4),
            );
        }
        let (train, val) = ds.split(0.7, &mut rng);
        let (_, curve) = SoftmaxRegression::train(&train, &val, TrainConfig::default(), &mut rng);
        assert!(curve.final_val_acc() < 0.45, "{}", curve.final_val_acc());
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn argmax_ties_take_first() {
        assert_eq!(argmax(&[1.0, 1.0, 0.0]), 0);
        assert_eq!(argmax(&[]), 0);
    }
}
