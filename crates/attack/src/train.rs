//! Training-curve recording shared by the attack models.

use serde::{Deserialize, Serialize};

/// Metrics recorded at the end of one training epoch — the series plotted
/// in Fig. 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Mean training cross-entropy loss.
    pub train_loss: f64,
    /// Training accuracy in `[0, 1]`.
    pub train_acc: f64,
    /// Validation accuracy in `[0, 1]`.
    pub val_acc: f64,
}

/// A full training curve.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainingCurve {
    /// Per-epoch statistics in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainingCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one epoch.
    pub fn push(&mut self, stats: EpochStats) {
        self.epochs.push(stats);
    }

    /// Final validation accuracy, 0 if no epochs were recorded.
    pub fn final_val_acc(&self) -> f64 {
        self.epochs.last().map_or(0.0, |e| e.val_acc)
    }

    /// Best validation accuracy across epochs.
    pub fn best_val_acc(&self) -> f64 {
        self.epochs.iter().map(|e| e.val_acc).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_on_empty_curve() {
        let c = TrainingCurve::new();
        assert_eq!(c.final_val_acc(), 0.0);
        assert_eq!(c.best_val_acc(), 0.0);
    }

    #[test]
    fn best_and_final_differ() {
        let mut c = TrainingCurve::new();
        for (i, v) in [0.5, 0.9, 0.8].iter().enumerate() {
            c.push(EpochStats {
                epoch: i,
                train_loss: 1.0,
                train_acc: *v,
                val_acc: *v,
            });
        }
        assert_eq!(c.final_val_acc(), 0.8);
        assert_eq!(c.best_val_acc(), 0.9);
    }
}
