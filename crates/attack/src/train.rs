//! Training-curve recording shared by the attack models.

use aegis_par::store::usize_from_u64;
use aegis_par::{ColumnFrame, ColumnSchema, Columnar, FrameError, FrameReader};
use serde::{Deserialize, Serialize};

/// Metrics recorded at the end of one training epoch — the series plotted
/// in Fig. 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Mean training cross-entropy loss.
    pub train_loss: f64,
    /// Training accuracy in `[0, 1]`.
    pub train_acc: f64,
    /// Validation accuracy in `[0, 1]`.
    pub val_acc: f64,
}

/// A full training curve.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainingCurve {
    /// Per-epoch statistics in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainingCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one epoch.
    pub fn push(&mut self, stats: EpochStats) {
        self.epochs.push(stats);
    }

    /// Final validation accuracy, 0 if no epochs were recorded.
    pub fn final_val_acc(&self) -> f64 {
        self.epochs.last().map_or(0.0, |e| e.val_acc)
    }

    /// Best validation accuracy across epochs.
    pub fn best_val_acc(&self) -> f64 {
        self.epochs.iter().map(|e| e.val_acc).fold(0.0, f64::max)
    }
}

/// A genuinely columnar curve: one column per metric, epochs aligned by
/// index.
impl Columnar for TrainingCurve {
    fn schema() -> ColumnSchema {
        ColumnSchema::new("attack/training-curve", 1)
    }

    fn encode_columns(&self, frame: &mut ColumnFrame) {
        frame.push_u64(self.epochs.iter().map(|e| e.epoch as u64).collect());
        frame.push_f64(self.epochs.iter().map(|e| e.train_loss).collect());
        frame.push_f64(self.epochs.iter().map(|e| e.train_acc).collect());
        frame.push_f64(self.epochs.iter().map(|e| e.val_acc).collect());
    }

    fn decode_columns(reader: &mut FrameReader) -> Result<Self, FrameError> {
        let epoch = reader.u64s()?;
        let train_loss = reader.f64s()?;
        let train_acc = reader.f64s()?;
        let val_acc = reader.f64s()?;
        if train_loss.len() != epoch.len()
            || train_acc.len() != epoch.len()
            || val_acc.len() != epoch.len()
        {
            return Err(FrameError::new("training-curve columns misaligned"));
        }
        let epochs = epoch
            .into_iter()
            .zip(train_loss)
            .zip(train_acc)
            .zip(val_acc)
            .map(|(((e, train_loss), train_acc), val_acc)| {
                Ok(EpochStats {
                    epoch: usize_from_u64(e, "curve epoch")?,
                    train_loss,
                    train_acc,
                    val_acc,
                })
            })
            .collect::<Result<_, FrameError>>()?;
        Ok(TrainingCurve { epochs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_on_empty_curve() {
        let c = TrainingCurve::new();
        assert_eq!(c.final_val_acc(), 0.0);
        assert_eq!(c.best_val_acc(), 0.0);
    }

    #[test]
    fn best_and_final_differ() {
        let mut c = TrainingCurve::new();
        for (i, v) in [0.5, 0.9, 0.8].iter().enumerate() {
            c.push(EpochStats {
                epoch: i,
                train_loss: 1.0,
                train_acc: *v,
                val_acc: *v,
            });
        }
        assert_eq!(c.final_val_acc(), 0.8);
        assert_eq!(c.best_val_acc(), 0.9);
    }

    #[test]
    fn columnar_roundtrip_preserves_every_epoch() {
        let mut c = TrainingCurve::new();
        for i in 0..5 {
            c.push(EpochStats {
                epoch: i,
                train_loss: 1.0 / (i + 1) as f64,
                train_acc: 0.1 * i as f64,
                val_acc: 0.09 * i as f64,
            });
        }
        assert_eq!(TrainingCurve::from_frame(c.to_frame()).unwrap(), c);
        assert_eq!(
            TrainingCurve::from_frame(TrainingCurve::new().to_frame()).unwrap(),
            TrainingCurve::new()
        );
    }
}
