//! Principal component analysis via power iteration with deflation.
//!
//! The Application Profiler reduces each monitored HPC time series to a
//! one-dimensional feature with PCA before Gaussian modelling (Section
//! V-B); the attack pipeline can also use it for dimensionality reduction.
//!
//! [`Pca::fit`] runs on a flat [`Mat`] (contiguous centered copy,
//! contiguous component block, power-iteration work vector hoisted out of
//! the loop); [`Pca::fit_scalar`] keeps the nested reference the property
//! tests compare against bit-for-bit.

use crate::mat::Mat;
use serde::{Deserialize, Serialize};

/// A fitted PCA model: per-feature means plus the top-`k` principal
/// directions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    mean: Vec<f64>,
    components: Mat,
    explained: Vec<f64>,
}

impl Pca {
    /// Fits the top `k` principal components of `data` (rows = samples).
    ///
    /// Uses power iteration on the implicit covariance (never forming the
    /// d×d matrix), deflating after each recovered component — accurate
    /// for the well-separated leading eigenvalues this codebase needs and
    /// fast for wide data. Bit-identical to [`Pca::fit_scalar`]: the only
    /// differences are contiguous storage and the reuse of one hoisted
    /// work vector across power iterations.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `k == 0`.
    pub fn fit(data: &Mat, k: usize) -> Self {
        assert!(!data.is_empty(), "PCA needs at least one sample");
        assert!(k > 0, "k must be positive");
        let d = data.cols();
        let n = data.rows();
        let mut mean = vec![0.0; d];
        for row in data {
            for (m, x) in mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        // Centered copy, one contiguous block.
        let mut centered = data.clone();
        for row in &mut centered {
            for (x, m) in row.iter_mut().zip(&mean) {
                *x -= m;
            }
        }
        let k = k.min(d).min(n.max(1));
        let mut components = Mat::with_capacity(k, d);
        let mut explained = Vec::with_capacity(k);
        // Power-iteration work vector, allocated once for the whole fit and
        // zeroed per iteration (same values as a fresh `vec![0.0; d]`).
        let mut w = vec![0.0; d];
        for comp_idx in 0..k {
            // Deterministic, non-degenerate start vector.
            let mut v: Vec<f64> = (0..d)
                .map(|i| if i % (comp_idx + 2) == 0 { 1.0 } else { 0.5 })
                .collect();
            orthogonalize(&mut v, components.iter());
            normalize(&mut v);
            let mut eigenvalue = 0.0;
            for _ in 0..100 {
                // w = Cov · v  computed as  Xᶜᵀ (Xᶜ v) / n.
                w.fill(0.0);
                for row in &centered {
                    let proj: f64 = row.iter().zip(&v).map(|(a, b)| a * b).sum();
                    for (wi, xi) in w.iter_mut().zip(row) {
                        *wi += proj * xi;
                    }
                }
                for wi in &mut w {
                    *wi /= n as f64;
                }
                orthogonalize(&mut w, components.iter());
                let w_norm = norm(&w);
                if w_norm < 1e-15 {
                    eigenvalue = 0.0;
                    break;
                }
                for wi in &mut w {
                    *wi /= w_norm;
                }
                let delta: f64 = w.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
                v.copy_from_slice(&w);
                eigenvalue = w_norm;
                if delta < 1e-10 {
                    break;
                }
            }
            components.push_row(&v);
            explained.push(eigenvalue);
        }
        Pca {
            mean,
            components,
            explained,
        }
    }

    /// The original nested-`Vec` fit, kept verbatim as the reference
    /// implementation for the flat↔scalar property tests (including the
    /// per-iteration work-vector allocation the flat path hoists).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, rows are ragged, or `k == 0`.
    pub fn fit_scalar(data: &[Vec<f64>], k: usize) -> Self {
        assert!(!data.is_empty(), "PCA needs at least one sample");
        assert!(k > 0, "k must be positive");
        let d = data[0].len();
        assert!(data.iter().all(|r| r.len() == d), "ragged data");
        let n = data.len();
        let mut mean = vec![0.0; d];
        for row in data {
            for (m, x) in mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        // Centered copy.
        let centered: Vec<Vec<f64>> = data
            .iter()
            .map(|r| r.iter().zip(&mean).map(|(x, m)| x - m).collect())
            .collect();
        let k = k.min(d).min(n.max(1));
        let mut components: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut explained = Vec::with_capacity(k);
        for comp_idx in 0..k {
            // Deterministic, non-degenerate start vector.
            let mut v: Vec<f64> = (0..d)
                .map(|i| if i % (comp_idx + 2) == 0 { 1.0 } else { 0.5 })
                .collect();
            orthogonalize(&mut v, components.iter().map(Vec::as_slice));
            normalize(&mut v);
            let mut eigenvalue = 0.0;
            for _ in 0..100 {
                // w = Cov · v  computed as  Xᶜᵀ (Xᶜ v) / n.
                let mut w = vec![0.0; d];
                for row in &centered {
                    let proj: f64 = row.iter().zip(&v).map(|(a, b)| a * b).sum();
                    for (wi, xi) in w.iter_mut().zip(row) {
                        *wi += proj * xi;
                    }
                }
                for wi in &mut w {
                    *wi /= n as f64;
                }
                orthogonalize(&mut w, components.iter().map(Vec::as_slice));
                let w_norm = norm(&w);
                if w_norm < 1e-15 {
                    eigenvalue = 0.0;
                    break;
                }
                for wi in &mut w {
                    *wi /= w_norm;
                }
                let delta: f64 = w.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
                v = w;
                eigenvalue = w_norm;
                if delta < 1e-10 {
                    break;
                }
            }
            components.push(v);
            explained.push(eigenvalue);
        }
        Pca {
            mean,
            components: Mat::from_rows(&components),
            explained,
        }
    }

    /// Number of fitted components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Variance explained by each component (eigenvalues).
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained
    }

    /// Projects a sample onto the principal directions.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        self.components
            .iter()
            .map(|c| {
                c.iter()
                    .zip(x.iter().zip(&self.mean))
                    .map(|(ci, (xi, mi))| ci * (xi - mi))
                    .sum()
            })
            .collect()
    }

    /// Projects onto the first principal component only — the profiler's
    /// scalar feature extraction.
    pub fn transform1(&self, x: &[f64]) -> f64 {
        self.transform(x)[0]
    }
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn normalize(v: &mut [f64]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

fn orthogonalize<'a>(v: &mut [f64], basis: impl IntoIterator<Item = &'a [f64]>) {
    for b in basis {
        let proj: f64 = v.iter().zip(b).map(|(a, c)| a * c).sum();
        for (vi, bi) in v.iter_mut().zip(b) {
            *vi -= proj * bi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::rand_util::normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn anisotropic_data() -> Mat {
        // Variance 25 along (1,1)/√2, variance 1 along (1,-1)/√2.
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<Vec<f64>> = (0..2_000)
            .map(|_| {
                let a = normal(&mut rng, 0.0, 5.0);
                let b = normal(&mut rng, 0.0, 1.0);
                let s = std::f64::consts::FRAC_1_SQRT_2;
                vec![s * (a + b) + 3.0, s * (a - b) - 1.0]
            })
            .collect();
        Mat::from_rows(&rows)
    }

    #[test]
    fn recovers_dominant_direction() {
        let pca = Pca::fit(&anisotropic_data(), 2);
        let c = &pca.transform(&[4.0, 0.0]); // point along (1,1) from mean
        let _ = c;
        let comp = &pca.explained_variance();
        assert!(comp[0] > 20.0 && comp[0] < 30.0, "{comp:?}");
        assert!(comp[1] > 0.5 && comp[1] < 2.0, "{comp:?}");
    }

    #[test]
    fn components_are_orthonormal() {
        let pca = Pca::fit(&anisotropic_data(), 2);
        // Check orthonormality directly on stored components.
        let comps = &pca.components;
        let dot: f64 = comps
            .row(0)
            .iter()
            .zip(comps.row(1))
            .map(|(a, b)| a * b)
            .sum();
        assert!(dot.abs() < 1e-6, "dot {dot}");
        for c in comps {
            let n: f64 = c.iter().map(|x| x * x).sum();
            assert!((n - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn transform_centers_data() {
        let data = anisotropic_data();
        let pca = Pca::fit(&data, 1);
        let mean_proj: f64 =
            data.iter().map(|r| pca.transform1(r)).sum::<f64>() / data.rows() as f64;
        assert!(mean_proj.abs() < 1e-6, "{mean_proj}");
    }

    #[test]
    fn transform1_separates_classes() {
        // Two 3-D clusters; PCA-1 should separate them.
        let mut rng = StdRng::seed_from_u64(5);
        let mut data = Mat::default();
        for _ in 0..200 {
            data.push_row(&[
                normal(&mut rng, 0.0, 0.3),
                normal(&mut rng, 0.0, 0.3),
                normal(&mut rng, 0.0, 0.3),
            ]);
            data.push_row(&[
                normal(&mut rng, 4.0, 0.3),
                normal(&mut rng, 4.0, 0.3),
                normal(&mut rng, 4.0, 0.3),
            ]);
        }
        let pca = Pca::fit(&data, 1);
        let a = pca.transform1(&[0.0, 0.0, 0.0]);
        let b = pca.transform1(&[4.0, 4.0, 4.0]);
        assert!((a - b).abs() > 5.0, "a {a} b {b}");
    }

    #[test]
    fn k_clamped_to_dimension() {
        let data = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![0.0, 1.0]]);
        let pca = Pca::fit(&data, 10);
        assert_eq!(pca.n_components(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_data_panics() {
        Pca::fit_scalar(&[vec![1.0], vec![1.0, 2.0]], 1);
    }

    #[test]
    #[should_panic]
    fn empty_data_panics() {
        Pca::fit(&Mat::default(), 1);
    }

    #[test]
    fn constant_data_yields_zero_variance() {
        let data = Mat::from_rows(&vec![vec![2.0, 2.0]; 10]);
        let pca = Pca::fit(&data, 1);
        assert!(pca.explained_variance()[0].abs() < 1e-12);
        assert_eq!(pca.transform1(&[2.0, 2.0]), 0.0);
    }

    #[test]
    fn flat_matches_scalar_reference() {
        let data = anisotropic_data();
        let nested: Vec<Vec<f64>> = data.iter().map(<[f64]>::to_vec).collect();
        let flat = Pca::fit(&data, 2);
        let scalar = Pca::fit_scalar(&nested, 2);
        assert_eq!(flat, scalar);
    }
}
