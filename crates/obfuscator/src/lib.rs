//! # aegis-obfuscator
//!
//! The Event Obfuscator (Module 3 of Aegis): the online, in-guest defense
//! that injects instruction-gadget noise into the protected VM's
//! execution flow so the malicious hypervisor's HPC observations become
//! differentially private.
//!
//! Architecture (Fig. 7 of the paper): a kernel module monitors the real
//! HPC values (needed by the d* mechanism) and streams them over a
//! netlink-style channel to a userspace daemon, whose *noise calculator*
//! draws from a precomputed Laplace buffer and whose *noise injector*
//! executes the covering [`GadgetStack`] the computed number of times per
//! interval. The injector runs on the same vCPU as the protected
//! application, indistinguishable to the host under SEV.
//!
//! Also provided: the Section IX baseline strategies
//! ([`UniformRandomNoise`], [`ConstantOutput`]) used to show why the DP
//! mechanisms are the better trade-off.

mod baselines;
mod daemon;
mod stack;

pub use baselines::{ConstantOutput, SecretConstantNoise, UniformRandomNoise};
pub use daemon::{
    Obfuscator, ObfuscatorConfig, STALE_INTERVALS_DEGRADED, STARVED_TICKS_DEGRADED,
};
pub use stack::GadgetStack;
