//! The Event Obfuscator runtime: kernel module, userspace daemon, and the
//! noise injector (Fig. 7 of the paper).
//!
//! The *kernel module* launches the protection service and, for the d*
//! mechanism, monitors the real-time HPC values with RDPMC, forwarding
//! them to userspace over a netlink-style channel. The *userspace daemon*
//! computes the per-interval noise value from precomputed random draws
//! (the noise calculator) and converts it into a number of gadget-stack
//! repetitions injected into the VM's execution flow (the noise
//! injector). Both the protected application and the injector are pinned
//! to the same vCPU, so the hypervisor cannot tell them apart.

use crate::stack::GadgetStack;
use aegis_dp::{ClipBound, NoiseMechanism};
use aegis_faults::{self as faults, site, FaultPlan, FaultStream};
use aegis_microarch::{ActivityVector, Feature};
use aegis_sev::{ActivitySource, ProtectionStatus};
use crossbeam::channel::{bounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Consecutive zero-grant ticks before the injector reports itself
/// [`ProtectionStatus::Degraded`]. Together with the host watchdog's own
/// bound this keeps detection well inside one 1 ms attacker sample.
pub const STARVED_TICKS_DEGRADED: u32 = 4;

/// Consecutive intervals without a fresh kernel-module sample before the
/// daemon treats its feed as dead and falls back to ceiling injection.
pub const STALE_INTERVALS_DEGRADED: u32 = 3;

/// Obfuscator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObfuscatorConfig {
    /// Noise recomputation interval (matches the attacker's 1 ms sampling
    /// in the paper's evaluation).
    pub interval_ns: u64,
    /// `S`: reference-event (µops) counts per normalized noise unit. The
    /// DP mechanisms work on normalized data with sensitivity 1; this
    /// scale converts their output back to injectable counts.
    pub noise_scale_counts: f64,
    /// Clip bound on normalized noise (`[0, B_u]`): injected instruction
    /// counts cannot be negative.
    pub clip: ClipBound,
}

impl Default for ObfuscatorConfig {
    fn default() -> Self {
        ObfuscatorConfig {
            // Five injection intervals per 1 ms attacker sample: the
            // daemon sustains a high injection rate, so no attacker slice
            // is ever noise-free despite the [0, B_u] clipping.
            interval_ns: 200_000,
            noise_scale_counts: 5.0e4,
            clip: ClipBound::injection(12.0),
        }
    }
}

/// One HPC sample forwarded from the kernel module to the daemon.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HpcSample {
    /// 1-based interval index.
    t: usize,
    /// Normalized reference-event value of the interval.
    x_norm: f64,
}

/// The in-guest kernel module: monitors the protected vCPU's HPC values
/// and streams them to the userspace daemon.
#[derive(Debug)]
struct KernelModule {
    tx: Sender<HpcSample>,
}

impl KernelModule {
    fn publish(&self, sample: HpcSample) {
        // A full channel means the daemon stalled; dropping the sample
        // mirrors netlink's lossy behaviour under back-pressure.
        let _ = self.tx.try_send(sample);
    }
}

/// The userspace daemon: noise calculator + injector arithmetic.
struct UserDaemon {
    rx: Receiver<HpcSample>,
    mechanism: Box<dyn NoiseMechanism>,
    clip: ClipBound,
}

impl UserDaemon {
    /// Consumes pending samples and returns the normalized (clipped)
    /// noise for the most recent one.
    fn compute_noise(&mut self) -> Option<f64> {
        let mut latest = None;
        while let Ok(sample) = self.rx.try_recv() {
            // Every sample must pass through the mechanism so stateful
            // mechanisms (d*) see a gapless series.
            let noise = self.mechanism.noise_at(sample.t, sample.x_norm);
            latest = Some(self.clip.clip(noise));
        }
        latest
    }
}

/// The Event Obfuscator: an [`ActivitySource`] installed on the protected
/// vCPU that injects `reps = clip(noise)·S / unit_µops` gadget-stack
/// repetitions per interval.
pub struct Obfuscator {
    stack: GadgetStack,
    cfg: ObfuscatorConfig,
    kernel: KernelModule,
    daemon: UserDaemon,
    /// Signature-diverse gadget groups: `(summed activity, µops)` per
    /// lane. Each interval executes one lane, so the injected noise
    /// direction varies across intervals instead of scaling a single
    /// fixed activity vector — mirroring the per-event noise computation
    /// of the paper's daemon.
    lanes: Vec<(ActivityVector, f64)>,
    lane_rng: StdRng,
    // Interval accounting.
    elapsed_in_interval_ns: u64,
    app_counts_accum: f64,
    t: usize,
    current_rate: ActivityVector,
    injected_counts: f64,
    // Hot reload: a staged stack waiting for the next interval boundary.
    pending_stack: Option<GadgetStack>,
    generation: u64,
    // Fault injection + self-supervision.
    faults: FaultPlan,
    drop_stream: Option<FaultStream>,
    reload_stream: Option<FaultStream>,
    starved_ticks: u32,
    stale_intervals: u32,
}

impl Obfuscator {
    /// Creates an obfuscator injecting `stack` repetitions governed by
    /// `mechanism`.
    pub fn new(
        stack: GadgetStack,
        mechanism: Box<dyn NoiseMechanism>,
        cfg: ObfuscatorConfig,
    ) -> Self {
        Self::with_seed(stack, mechanism, cfg, 0)
    }

    /// Creates an obfuscator with an explicit lane-scheduling seed and
    /// the ambient [`FaultPlan`].
    pub fn with_seed(
        stack: GadgetStack,
        mechanism: Box<dyn NoiseMechanism>,
        cfg: ObfuscatorConfig,
        seed: u64,
    ) -> Self {
        Self::with_faults(stack, mechanism, cfg, seed, faults::plan())
    }

    /// Creates an obfuscator with an explicit seed and fault plan.
    pub fn with_faults(
        stack: GadgetStack,
        mechanism: Box<dyn NoiseMechanism>,
        cfg: ObfuscatorConfig,
        seed: u64,
        plan: FaultPlan,
    ) -> Self {
        let (tx, rx) = bounded(64);
        let lanes = build_lanes(&stack);
        Obfuscator {
            stack,
            cfg,
            kernel: KernelModule { tx },
            daemon: UserDaemon {
                rx,
                mechanism,
                clip: cfg.clip,
            },
            lanes,
            lane_rng: StdRng::seed_from_u64(seed ^ 0x1a4e_5000),
            elapsed_in_interval_ns: 0,
            app_counts_accum: 0.0,
            t: 0,
            current_rate: ActivityVector::ZERO,
            injected_counts: 0.0,
            pending_stack: None,
            generation: 0,
            faults: plan,
            drop_stream: plan
                .is_active()
                .then(|| FaultStream::new(&plan, site::NETLINK, seed)),
            reload_stream: plan
                .is_active()
                .then(|| FaultStream::new(&plan, site::SERVICE_RELOAD, seed)),
            starved_ticks: 0,
            stale_intervals: 0,
        }
    }

    /// The configured mechanism's name.
    pub fn mechanism_name(&self) -> &'static str {
        self.daemon.mechanism.name()
    }

    /// The configured privacy budget ε.
    pub fn epsilon(&self) -> f64 {
        self.daemon.mechanism.epsilon()
    }

    /// Total reference-event counts injected so far (the noise volume of
    /// the Section IX comparisons).
    pub fn injected_counts(&self) -> f64 {
        self.injected_counts
    }

    /// The injected gadget stack.
    pub fn stack(&self) -> &GadgetStack {
        &self.stack
    }

    /// Stages `stack` to replace the live gadget stack at the next
    /// interval boundary. The swap is atomic from the injection plane's
    /// point of view: the interval in flight drains under the old
    /// stack's lanes, the next interval injects through the new ones,
    /// and the mechanism's noise series, the interval counter, and the
    /// accumulated kernel-module samples all continue gapless. Staging
    /// again before the boundary replaces the previously staged stack.
    ///
    /// Under an active fault plan the apply itself can tear
    /// (`reload_torn`): the staged stack is lost at the boundary and
    /// [`Obfuscator::stack_generation`] does not advance — the old plan
    /// stays fully attached, which is what lets a supervisor detect the
    /// torn swap and restage.
    pub fn begin_reload(&mut self, stack: GadgetStack) {
        self.pending_stack = Some(stack);
    }

    /// Number of plan swaps applied so far. A supervisor staging a
    /// reload watches this advance to confirm the swap landed.
    pub fn stack_generation(&self) -> u64 {
        self.generation
    }

    /// Whether a staged stack is still waiting for its boundary.
    pub fn reload_pending(&self) -> bool {
        self.pending_stack.is_some()
    }

    /// Completed noise intervals so far (the daemon's `t` counter). The
    /// service plane's reload test pins this gapless across swaps.
    pub fn intervals(&self) -> usize {
        self.t
    }

    /// Whether the obfuscator currently considers its own protection
    /// degraded (starved of cycles or running on a stale sample feed).
    pub fn degraded(&self) -> bool {
        self.protection_status() == ProtectionStatus::Degraded
    }

    fn inject_lane(&mut self, counts: f64) {
        // Execute one signature lane this interval; the noise counts
        // land on that lane's events at the calibrated effect ratio.
        let lane = self.lane_rng.gen_range(0..self.lanes.len());
        let (activity, lane_uops) = &self.lanes[lane];
        let reps = counts / lane_uops.max(1.0);
        let interval_us = self.cfg.interval_ns as f64 / 1_000.0;
        self.current_rate = activity.scaled(reps / interval_us);
        self.injected_counts += counts;
    }

    fn close_interval(&mut self) {
        // Interval boundary: apply a staged plan swap before computing
        // the next interval's injection, so the closing interval drained
        // entirely under the old stack and the next one is entirely new.
        if let Some(stack) = self.pending_stack.take() {
            let torn = self
                .reload_stream
                .as_mut()
                .is_some_and(|s| s.chance(self.faults.reload_torn));
            if torn {
                faults::report(
                    "service",
                    "reload_torn",
                    &[("t", self.t as u64), ("generation", self.generation)],
                );
            } else {
                self.lanes = build_lanes(&stack);
                self.stack = stack;
                self.generation += 1;
                aegis_obs::counter_add("obfuscator.plan_swaps", 1.0);
            }
        }
        self.t += 1;
        let x_norm = self.app_counts_accum / self.cfg.noise_scale_counts;
        self.app_counts_accum = 0.0;
        let dropped = self
            .drop_stream
            .as_mut()
            .is_some_and(|s| s.chance(self.faults.sample_drop));
        if dropped {
            faults::report("netlink", "sample_drop", &[("t", self.t as u64)]);
        } else {
            self.kernel.publish(HpcSample { t: self.t, x_norm });
        }
        if let Some(noise_norm) = self.daemon.compute_noise() {
            self.stale_intervals = 0;
            let counts = noise_norm * self.cfg.noise_scale_counts;
            self.inject_lane(counts);
        } else {
            // No fresh sample reached the daemon this interval: the
            // kernel-module feed is lossy or dead. After a bounded number
            // of stale intervals, fall back to injecting at the clip
            // ceiling — a degraded interval is maximally noisy, never
            // clean.
            self.stale_intervals = self.stale_intervals.saturating_add(1);
            if self.stale_intervals == STALE_INTERVALS_DEGRADED {
                aegis_obs::counter_add("obfuscator.stale_feed_episodes", 1.0);
                aegis_obs::event("obfuscator.stale_feed", &[("kind", "fault")]);
            }
            if self.stale_intervals >= STALE_INTERVALS_DEGRADED {
                let counts = self.cfg.clip.hi * self.cfg.noise_scale_counts;
                self.inject_lane(counts);
            }
        }
    }
}

/// Groups the stack's gadgets into up to four lanes by the dominant
/// distinctive feature of their activity signature, so lanes point in
/// different micro-architectural directions.
fn build_lanes(stack: &GadgetStack) -> Vec<(ActivityVector, f64)> {
    const N_LANES: usize = 4;
    let mut lanes: Vec<ActivityVector> = vec![ActivityVector::ZERO; N_LANES];
    for pg in &stack.per_gadget {
        // Dominant feature excluding the universal ones.
        let mut best = Feature::Loads;
        let mut best_v = -1.0;
        for (f, v) in pg.iter_nonzero() {
            if matches!(
                f,
                Feature::UopsRetired
                    | Feature::InstrRetired
                    | Feature::Cycles
                    | Feature::StallCycles
            ) {
                continue;
            }
            if v > best_v {
                best_v = v;
                best = f;
            }
        }
        lanes[best.index() % N_LANES] += *pg;
    }
    let lanes: Vec<(ActivityVector, f64)> = lanes
        .into_iter()
        .filter(|l| !l.is_zero())
        .map(|l| {
            let uops = l[Feature::UopsRetired].max(1.0);
            (l, uops)
        })
        .collect();
    if lanes.is_empty() {
        vec![(stack.unit_activity, stack.unit_uops())]
    } else {
        lanes
    }
}

impl Drop for Obfuscator {
    fn drop(&mut self) {
        // Metrics land once per obfuscator lifetime, not once per 200 µs
        // interval: `close_interval` is on the simulation's hot path and
        // must not take the registry lock there.
        if self.t > 0 && aegis_obs::enabled() {
            let registry = aegis_obs::global();
            registry.counter_add("obfuscator.injected_counts", self.injected_counts);
            registry.counter_add("obfuscator.intervals", self.t as f64);
        }
    }
}

impl std::fmt::Debug for Obfuscator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obfuscator")
            .field("mechanism", &self.mechanism_name())
            .field("epsilon", &self.epsilon())
            .field("stack_len", &self.stack.len())
            .field("t", &self.t)
            .finish()
    }
}

impl ActivitySource for Obfuscator {
    fn demand(&mut self) -> Option<ActivityVector> {
        Some(self.current_rate)
    }

    fn advance(&mut self, _plan_ns: u64) {
        // Injection has no plan of its own; the rate is recomputed from
        // the observed wall time in `observe_coscheduled`.
    }

    fn observe_coscheduled(&mut self, app_rate: &ActivityVector, tick_ns: u64) {
        let tick_us = tick_ns as f64 / 1_000.0;
        self.app_counts_accum += app_rate[Feature::UopsRetired] * tick_us;
        self.elapsed_in_interval_ns += tick_ns;
        while self.elapsed_in_interval_ns >= self.cfg.interval_ns {
            self.elapsed_in_interval_ns -= self.cfg.interval_ns;
            self.close_interval();
        }
    }

    fn note_execution(&mut self, granted_ns: u64) {
        // The injection thread's own stall watchdog: a healthy scheduler
        // always grants the injector a nonzero share, so consecutive
        // zero grants mean the daemon's injection is not reaching the
        // vCPU at all.
        if granted_ns == 0 {
            self.starved_ticks = self.starved_ticks.saturating_add(1);
            if self.starved_ticks == STARVED_TICKS_DEGRADED {
                aegis_obs::counter_add("obfuscator.starved_episodes", 1.0);
                aegis_obs::event("obfuscator.starved", &[("kind", "fault")]);
            }
        } else {
            self.starved_ticks = 0;
        }
    }

    fn protection_status(&self) -> ProtectionStatus {
        if self.starved_ticks >= STARVED_TICKS_DEGRADED
            || self.stale_intervals >= STALE_INTERVALS_DEGRADED
        {
            ProtectionStatus::Degraded
        } else {
            ProtectionStatus::Healthy
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        // The service plane drives hot reloads through this after the
        // obfuscator has been boxed into the host.
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::ConstantOutput;
    use aegis_dp::{DStarMechanism, LaplaceMechanism};
    use aegis_fuzzer::Gadget;
    use aegis_isa::{IsaCatalog, Vendor, WellKnown};
    use aegis_microarch::{Core, InterferenceConfig, MicroArch};

    fn stack() -> GadgetStack {
        let catalog = IsaCatalog::synthetic(Vendor::Amd, 7);
        let mut core = Core::new(MicroArch::AmdEpyc7252, 7);
        core.set_interference(InterferenceConfig::isolated());
        GadgetStack::calibrate(
            &catalog,
            &mut core,
            vec![Gadget::new(WellKnown::Clflush.id(), WellKnown::Load64.id())],
            100,
        )
    }

    fn drive(obf: &mut Obfuscator, ticks: usize, app_uops_per_us: f64) -> Vec<f64> {
        let app = ActivityVector::from_pairs(&[(Feature::UopsRetired, app_uops_per_us)]);
        let mut rates = Vec::new();
        for _ in 0..ticks {
            obf.observe_coscheduled(&app, 100_000);
            rates.push(obf.demand().unwrap()[Feature::UopsRetired]);
        }
        rates
    }

    #[test]
    fn injects_laplace_scale_noise() {
        let cfg = ObfuscatorConfig::default();
        let mut obf = Obfuscator::new(stack(), Box::new(LaplaceMechanism::new(1.0, 42)), cfg);
        // 200 ms of 100 µs ticks.
        drive(&mut obf, 2000, 400.0);
        let total = obf.injected_counts();
        let n_intervals = 200_000_000 / cfg.interval_ns;
        // E[clip(Lap(1))] ≈ 0.43 normalized units → ~0.43·S per interval.
        let per_interval = total / n_intervals as f64;
        let expected = 0.43 * cfg.noise_scale_counts;
        assert!(
            (per_interval - expected).abs() / expected < 0.3,
            "per-interval {per_interval} vs ~{expected}"
        );
    }

    #[test]
    fn smaller_epsilon_injects_more() {
        let cfg = ObfuscatorConfig::default();
        let mut strong = Obfuscator::new(stack(), Box::new(LaplaceMechanism::new(0.125, 1)), cfg);
        let mut weak = Obfuscator::new(stack(), Box::new(LaplaceMechanism::new(8.0, 1)), cfg);
        drive(&mut strong, 2000, 400.0);
        drive(&mut weak, 2000, 400.0);
        assert!(
            strong.injected_counts() > 4.0 * weak.injected_counts(),
            "strong {} weak {}",
            strong.injected_counts(),
            weak.injected_counts()
        );
    }

    #[test]
    fn dstar_injects_more_than_laplace_at_equal_epsilon() {
        let cfg = ObfuscatorConfig::default();
        let mut lap = Obfuscator::new(stack(), Box::new(LaplaceMechanism::new(1.0, 5)), cfg);
        let mut ds = Obfuscator::new(stack(), Box::new(DStarMechanism::new(1.0, 5)), cfg);
        drive(&mut lap, 4000, 400.0);
        drive(&mut ds, 4000, 400.0);
        assert!(
            ds.injected_counts() > 1.5 * lap.injected_counts(),
            "dstar {} laplace {}",
            ds.injected_counts(),
            lap.injected_counts()
        );
    }

    #[test]
    fn rate_is_zero_before_first_interval() {
        let mut obf = Obfuscator::new(
            stack(),
            Box::new(LaplaceMechanism::new(1.0, 1)),
            ObfuscatorConfig::default(),
        );
        assert!(obf.demand().unwrap().is_zero());
        // One tick (100 µs) is still inside the first 200 µs interval.
        let rates = drive(&mut obf, 1, 100.0);
        assert!(rates.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn constant_output_fills_to_peak() {
        let cfg = ObfuscatorConfig {
            clip: ClipBound::injection(1e9),
            ..ObfuscatorConfig::default()
        };
        // App runs at 400 uops/us → 400·interval_us counts per interval,
        // i.e. that over S in normalized units; fill to peak 6.0.
        let mut obf = Obfuscator::new(stack(), Box::new(ConstantOutput::new(6.0)), cfg);
        drive(&mut obf, 1000, 400.0); // 100 ms
        let n_intervals = 100_000_000 / cfg.interval_ns;
        let per_interval = obf.injected_counts() / n_intervals as f64 / cfg.noise_scale_counts;
        let interval_us = cfg.interval_ns as f64 / 1_000.0;
        let expected = 6.0 - 400.0 * interval_us / cfg.noise_scale_counts;
        assert!(
            (per_interval - expected).abs() < 0.1,
            "{per_interval} vs {expected}"
        );
    }

    #[test]
    fn injection_rate_reflects_noise_counts() {
        let cfg = ObfuscatorConfig::default();
        let mut obf = Obfuscator::new(stack(), Box::new(ConstantOutput::new(1.0)), cfg);
        // App idle → x=0 → noise = 1.0 unit = S counts per interval
        // = S/interval_us uops/us injected rate.
        let rates = drive(&mut obf, 50, 0.0);
        let last = *rates.last().unwrap();
        let interval_us = cfg.interval_ns as f64 / 1_000.0;
        let expected = cfg.noise_scale_counts / interval_us;
        assert!(
            (last - expected).abs() < expected * 0.05,
            "{last} vs {expected}"
        );
    }

    #[test]
    fn starvation_watchdog_degrades_and_recovers() {
        let mut obf = Obfuscator::new(
            stack(),
            Box::new(LaplaceMechanism::new(1.0, 1)),
            ObfuscatorConfig::default(),
        );
        for _ in 0..STARVED_TICKS_DEGRADED - 1 {
            obf.note_execution(0);
            assert_eq!(obf.protection_status(), ProtectionStatus::Healthy);
        }
        obf.note_execution(0);
        assert_eq!(obf.protection_status(), ProtectionStatus::Degraded);
        assert!(obf.degraded());
        obf.note_execution(50_000);
        assert_eq!(obf.protection_status(), ProtectionStatus::Healthy);
    }

    #[test]
    fn dropped_sample_feed_falls_back_to_ceiling_injection() {
        let cfg = ObfuscatorConfig::default();
        let plan = FaultPlan {
            seed: 7,
            sample_drop: 1.0,
            ..FaultPlan::none()
        };
        let mut obf = Obfuscator::with_faults(
            stack(),
            Box::new(ConstantOutput::new(0.5)),
            cfg,
            0,
            plan,
        );
        // Every published sample is dropped → after the stale threshold
        // the daemon injects at the clip ceiling instead of going quiet.
        let rates = drive(&mut obf, 40, 100.0);
        assert!(obf.degraded());
        let last = *rates.last().unwrap();
        let interval_us = cfg.interval_ns as f64 / 1_000.0;
        let ceiling = cfg.clip.hi * cfg.noise_scale_counts / interval_us;
        assert!(
            (last - ceiling).abs() < ceiling * 0.05,
            "degraded rate {last} should sit at the ceiling {ceiling}"
        );
        assert!(obf.injected_counts() > 0.0);
    }

    #[test]
    fn inert_plan_matches_no_fault_layer() {
        let cfg = ObfuscatorConfig::default();
        let mut a = Obfuscator::new(stack(), Box::new(LaplaceMechanism::new(1.0, 3)), cfg);
        let mut b = Obfuscator::with_faults(
            stack(),
            Box::new(LaplaceMechanism::new(1.0, 3)),
            cfg,
            0,
            FaultPlan::none(),
        );
        let ra = drive(&mut a, 500, 300.0);
        let rb = drive(&mut b, 500, 300.0);
        assert_eq!(ra, rb);
        assert_eq!(a.injected_counts(), b.injected_counts());
    }

    fn stack2() -> GadgetStack {
        let catalog = IsaCatalog::synthetic(Vendor::Amd, 7);
        let mut core = Core::new(MicroArch::AmdEpyc7252, 7);
        core.set_interference(InterferenceConfig::isolated());
        GadgetStack::calibrate(
            &catalog,
            &mut core,
            vec![
                Gadget::new(WellKnown::Clflush.id(), WellKnown::Load64.id()),
                Gadget::new(WellKnown::Load64.id(), WellKnown::Store64.id()),
            ],
            100,
        )
    }

    #[test]
    fn reload_with_identical_stack_is_invisible() {
        // A swap to a bit-identical stack must leave every injected rate
        // unchanged vs an untouched twin: the mechanism stream, lane
        // RNG, interval counter, and sample accumulator all continue
        // gapless through the boundary.
        let cfg = ObfuscatorConfig::default();
        let mut a = Obfuscator::new(stack(), Box::new(LaplaceMechanism::new(1.0, 3)), cfg);
        let mut b = Obfuscator::new(stack(), Box::new(LaplaceMechanism::new(1.0, 3)), cfg);
        let ra0 = drive(&mut a, 500, 300.0);
        let rb0 = drive(&mut b, 500, 300.0);
        assert_eq!(ra0, rb0);
        b.begin_reload(stack());
        assert!(b.reload_pending());
        let ra1 = drive(&mut a, 500, 300.0);
        let rb1 = drive(&mut b, 500, 300.0);
        assert_eq!(ra1, rb1, "identical-stack swap must be invisible");
        assert!(!b.reload_pending());
        assert_eq!(b.stack_generation(), 1);
        assert_eq!(a.stack_generation(), 0);
        assert_eq!(a.intervals(), b.intervals(), "t stays gapless");
    }

    #[test]
    fn reload_swaps_lanes_without_dropping_intervals() {
        let cfg = ObfuscatorConfig::default();
        let mut obf = Obfuscator::new(stack(), Box::new(LaplaceMechanism::new(1.0, 9)), cfg);
        drive(&mut obf, 300, 300.0);
        let t_before = obf.intervals();
        let counts_before = obf.injected_counts();
        assert_eq!(obf.stack().len(), 1);
        obf.begin_reload(stack2());
        drive(&mut obf, 300, 300.0);
        assert_eq!(obf.stack_generation(), 1);
        assert_eq!(obf.stack().len(), 2, "new stack attached");
        // 300 ticks of 100 µs = 30 ms = 150 more 200 µs intervals: no
        // interval was lost to the swap, and injection kept flowing.
        assert_eq!(obf.intervals(), t_before + 150);
        assert!(obf.injected_counts() > counts_before);
    }

    #[test]
    fn torn_reload_keeps_old_plan_fully_attached() {
        let cfg = ObfuscatorConfig::default();
        let plan = FaultPlan {
            seed: 11,
            reload_torn: 1.0,
            ..FaultPlan::none()
        };
        let mut clean = Obfuscator::new(stack(), Box::new(LaplaceMechanism::new(1.0, 4)), cfg);
        let mut torn = Obfuscator::with_faults(
            stack(),
            Box::new(LaplaceMechanism::new(1.0, 4)),
            cfg,
            0,
            plan,
        );
        drive(&mut clean, 200, 300.0);
        drive(&mut torn, 200, 300.0);
        torn.begin_reload(stack2());
        let rc = drive(&mut clean, 400, 300.0);
        let rt = drive(&mut torn, 400, 300.0);
        // The staged stack was lost at the boundary: generation did not
        // advance, the old stack is still attached, and the injected
        // rates match the untouched twin exactly (the torn draw lives on
        // its own fault stream).
        assert_eq!(torn.stack_generation(), 0);
        assert!(!torn.reload_pending(), "staged stack was consumed");
        assert_eq!(torn.stack().len(), 1);
        assert_eq!(rc, rt);
        // A supervisor restages; with the schedule's next draw also torn
        // under p=1.0 the swap keeps failing — which is exactly the
        // signal the service plane's retry loop keys on.
        torn.begin_reload(stack2());
        drive(&mut torn, 400, 300.0);
        assert_eq!(torn.stack_generation(), 0);
    }

    #[test]
    fn debug_shows_mechanism() {
        let obf = Obfuscator::new(
            stack(),
            Box::new(LaplaceMechanism::new(2.0, 1)),
            ObfuscatorConfig::default(),
        );
        let s = format!("{obf:?}");
        assert!(s.contains("laplace"), "{s}");
    }
}
