//! The injected code segment: the covering gadget set stacked into one
//! repeatable unit.
//!
//! "By stacking these gadgets together, we conduct a code segment that
//! executes repeatedly to inject noise to vulnerable HPC events. The
//! number of repetitions of the code execution is determined by the noise
//! value computed from the noise calculator" (Section VII-C).

use aegis_fuzzer::{CoveringGadget, Gadget};
use aegis_isa::IsaCatalog;
use aegis_microarch::{ActivityVector, Core, Feature, Origin};
use serde::{Deserialize, Serialize};

/// A calibrated stack of covering gadgets: the obfuscator's unit of
/// injection, annotated with the micro-architectural activity one full
/// execution of the stack produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GadgetStack {
    /// The stacked gadgets, in execution order.
    pub gadgets: Vec<Gadget>,
    /// Mean activity of one full stack execution.
    pub unit_activity: ActivityVector,
    /// Mean activity of each gadget individually (same order as
    /// `gadgets`); lets the injector drive signature-diverse gadget
    /// subsets independently.
    pub per_gadget: Vec<ActivityVector>,
}

impl GadgetStack {
    /// Calibrates a stack by executing it `reps` times on a scratch core
    /// and averaging the produced activity.
    ///
    /// # Panics
    ///
    /// Panics if `gadgets` is empty, `reps == 0`, or a gadget references
    /// an instruction missing from the catalog.
    pub fn calibrate(
        catalog: &IsaCatalog,
        core: &mut Core,
        gadgets: Vec<Gadget>,
        reps: usize,
    ) -> Self {
        assert!(!gadgets.is_empty(), "a gadget stack cannot be empty");
        assert!(reps > 0, "calibration needs at least one repetition");
        let mut per_gadget = vec![ActivityVector::new(); gadgets.len()];
        for _ in 0..reps {
            for (gi, g) in gadgets.iter().enumerate() {
                for id in [g.reset, g.trigger] {
                    let spec = catalog.get(id).expect("gadget instruction in catalog");
                    if let Ok(delta) = core.execute_instr(spec, Origin::Host) {
                        per_gadget[gi] += delta;
                    }
                }
            }
        }
        let mut unit_activity = ActivityVector::new();
        for pg in &mut per_gadget {
            *pg = pg.scaled(1.0 / reps as f64);
            unit_activity += *pg;
        }
        GadgetStack {
            gadgets,
            unit_activity,
            per_gadget,
        }
    }

    /// Builds and calibrates the stack from a fuzzer covering set.
    ///
    /// # Panics
    ///
    /// Panics if `covering` is empty.
    pub fn from_covering(
        catalog: &IsaCatalog,
        core: &mut Core,
        covering: &[CoveringGadget],
    ) -> Self {
        let gadgets = covering.iter().map(|c| c.gadget).collect();
        Self::calibrate(catalog, core, gadgets, 64)
    }

    /// Reference effect of one stack execution: µops retired, the unit
    /// the noise calculator converts counts into repetitions with.
    pub fn unit_uops(&self) -> f64 {
        self.unit_activity[Feature::UopsRetired].max(1.0)
    }

    /// Number of gadgets in the stack.
    pub fn len(&self) -> usize {
        self.gadgets.len()
    }

    /// Whether the stack is empty (never true for calibrated stacks).
    pub fn is_empty(&self) -> bool {
        self.gadgets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_isa::{Vendor, WellKnown};
    use aegis_microarch::{InterferenceConfig, MicroArch};

    fn setup() -> (IsaCatalog, Core) {
        let catalog = IsaCatalog::synthetic(Vendor::Amd, 7);
        let mut core = Core::new(MicroArch::AmdEpyc7252, 7);
        core.set_interference(InterferenceConfig::isolated());
        (catalog, core)
    }

    fn flush_load() -> Gadget {
        Gadget::new(WellKnown::Clflush.id(), WellKnown::Load64.id())
    }

    #[test]
    fn calibration_measures_stack_activity() {
        let (catalog, mut core) = setup();
        let stack = GadgetStack::calibrate(&catalog, &mut core, vec![flush_load()], 100);
        // CLFLUSH (2 µops) + load (1 µop).
        assert!((stack.unit_activity[Feature::UopsRetired] - 3.0).abs() < 0.5);
        // Every load misses after the flush → one refill per execution.
        assert!((stack.unit_activity[Feature::LlcMiss] - 1.0).abs() < 0.2);
        assert!((stack.unit_activity[Feature::CacheFlushes] - 1.0).abs() < 0.2);
        assert_eq!(stack.len(), 1);
    }

    #[test]
    fn unit_uops_has_floor() {
        let (catalog, mut core) = setup();
        let nop_gadget = Gadget::new(WellKnown::Nop.id(), WellKnown::Nop.id());
        let stack = GadgetStack::calibrate(&catalog, &mut core, vec![nop_gadget], 10);
        assert!(stack.unit_uops() >= 1.0);
    }

    #[test]
    fn stacks_of_multiple_gadgets_sum_activity() {
        let (catalog, mut core) = setup();
        let g1 = flush_load();
        let g2 = Gadget::new(WellKnown::Nop.id(), WellKnown::SimdAdd.id());
        let single = GadgetStack::calibrate(&catalog, &mut core, vec![g1], 50);
        core.reset_cache();
        let double = GadgetStack::calibrate(&catalog, &mut core, vec![g1, g2], 50);
        assert!(double.unit_uops() > single.unit_uops());
        assert!(double.unit_activity[Feature::SimdOps] > 0.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_stack_panics() {
        let (catalog, mut core) = setup();
        GadgetStack::calibrate(&catalog, &mut core, vec![], 10);
    }
}
