//! Alternative defense strategies evaluated in Section IX: uniform random
//! noise (Fig. 11) and constant HPC output.

use aegis_dp::NoiseMechanism;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random noise in `[0, bound]` (normalized units) — the
/// strawman of Fig. 11. Provides no provable privacy guarantee and needs
/// roughly 4.4× more injected noise than the Laplace mechanism for the
/// same protection.
#[derive(Debug, Clone)]
pub struct UniformRandomNoise {
    bound: f64,
    rng: StdRng,
}

impl UniformRandomNoise {
    /// Creates the mechanism with the given upper bound (as a fraction of
    /// the peak HPC value `p` in the paper's x-axis).
    ///
    /// # Panics
    ///
    /// Panics if `bound < 0`.
    pub fn new(bound: f64, seed: u64) -> Self {
        assert!(bound >= 0.0, "bound must be non-negative");
        UniformRandomNoise {
            bound,
            rng: StdRng::seed_from_u64(seed ^ 0x0a1d_0001),
        }
    }

    /// The configured bound.
    pub fn bound(&self) -> f64 {
        self.bound
    }
}

impl NoiseMechanism for UniformRandomNoise {
    fn name(&self) -> &'static str {
        "uniform-random"
    }

    /// Random noise carries no privacy budget; reported as infinity.
    fn epsilon(&self) -> f64 {
        f64::INFINITY
    }

    fn noise_at(&mut self, _t: usize, _x_t: f64) -> f64 {
        if self.bound == 0.0 {
            0.0
        } else {
            self.rng.gen_range(0.0..self.bound)
        }
    }

    fn reset(&mut self) {}
}

/// Constant-output masking: fill every slice up to the peak value `p` so
/// the observed series is flat. Defeats the attack completely but, as
/// Section IX-A measures, injects ~18× more counts than Laplace noise —
/// "an overkill defense".
#[derive(Debug, Clone)]
pub struct ConstantOutput {
    peak: f64,
}

impl ConstantOutput {
    /// Creates the mechanism filling to `peak` (normalized units).
    ///
    /// # Panics
    ///
    /// Panics if `peak < 0`.
    pub fn new(peak: f64) -> Self {
        assert!(peak >= 0.0, "peak must be non-negative");
        ConstantOutput { peak }
    }

    /// The fill level.
    pub fn peak(&self) -> f64 {
        self.peak
    }
}

impl NoiseMechanism for ConstantOutput {
    fn name(&self) -> &'static str {
        "constant-output"
    }

    /// Deterministic masking: no differential-privacy semantics (ε = 0
    /// would claim perfect privacy, which holds only if `peak` is never
    /// exceeded; we report 0 for "not a DP mechanism, strongest masking").
    fn epsilon(&self) -> f64 {
        0.0
    }

    fn noise_at(&mut self, _t: usize, x_t: f64) -> f64 {
        (self.peak - x_t).max(0.0)
    }

    fn reset(&mut self) {}
}

/// Secret-dependent constant noise (Section IX-B): a deterministic noise
/// level drawn once per deployment seed. Deployed with a per-secret seed,
/// every execution of the same secret carries the identical offset, so an
/// attacker averaging multiple traces removes nothing — and the offset
/// differs across secrets, so a global bias calibration does not help
/// either.
#[derive(Debug, Clone)]
pub struct SecretConstantNoise {
    level: f64,
}

impl SecretConstantNoise {
    /// Draws the constant level uniformly from `[0, bound]` using `seed`
    /// (pass a secret-derived seed to make the level secret dependent).
    ///
    /// # Panics
    ///
    /// Panics if `bound < 0`.
    pub fn new(bound: f64, seed: u64) -> Self {
        assert!(bound >= 0.0, "bound must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ec7_c057);
        SecretConstantNoise {
            level: if bound == 0.0 {
                0.0
            } else {
                rng.gen_range(0.0..bound)
            },
        }
    }

    /// The drawn constant level.
    pub fn level(&self) -> f64 {
        self.level
    }
}

impl NoiseMechanism for SecretConstantNoise {
    fn name(&self) -> &'static str {
        "secret-constant"
    }

    /// Deterministic noise: not a DP mechanism (reported as infinite ε).
    fn epsilon(&self) -> f64 {
        f64::INFINITY
    }

    fn noise_at(&mut self, _t: usize, _x_t: f64) -> f64 {
        self.level
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secret_constant_is_deterministic_per_seed() {
        let mut a = SecretConstantNoise::new(2.0, 41);
        let mut b = SecretConstantNoise::new(2.0, 41);
        let mut c = SecretConstantNoise::new(2.0, 42);
        assert_eq!(a.noise_at(1, 0.0), b.noise_at(9, 5.0));
        assert_ne!(a.noise_at(2, 0.0), c.noise_at(2, 0.0));
        assert!((0.0..2.0).contains(&a.level()));
    }

    #[test]
    fn uniform_noise_respects_bound() {
        let mut m = UniformRandomNoise::new(3.0, 1);
        for t in 1..1000 {
            let r = m.noise_at(t, 0.0);
            assert!((0.0..3.0).contains(&r));
        }
        assert_eq!(m.bound(), 3.0);
    }

    #[test]
    fn uniform_noise_zero_bound_is_silent() {
        let mut m = UniformRandomNoise::new(0.0, 1);
        assert_eq!(m.noise_at(1, 5.0), 0.0);
    }

    #[test]
    fn constant_output_fills_to_peak() {
        let mut m = ConstantOutput::new(10.0);
        assert_eq!(m.noise_at(1, 4.0), 6.0);
        assert_eq!(m.noise_at(2, 10.0), 0.0);
        assert_eq!(m.noise_at(3, 12.0), 0.0); // never negative
    }

    #[test]
    fn constant_output_noise_volume_exceeds_laplace() {
        use aegis_dp::LaplaceMechanism;
        // A bursty series: mostly small values, occasional peaks — like a
        // website trace. Constant output must fill the whole area under
        // the peak, Laplace only adds ~1/ε per slice.
        let series: Vec<f64> = (0..1000)
            .map(|t| if t % 50 == 0 { 10.0 } else { 0.5 })
            .collect();
        let mut co = ConstantOutput::new(10.0);
        let mut lap = LaplaceMechanism::new(1.0, 3);
        let co_total: f64 = series
            .iter()
            .enumerate()
            .map(|(t, &x)| co.noise_at(t + 1, x))
            .sum();
        let lap_total: f64 = series
            .iter()
            .enumerate()
            .map(|(t, &x)| lap.noise_at(t + 1, x).max(0.0))
            .sum();
        assert!(
            co_total > 10.0 * lap_total,
            "constant {co_total} vs laplace {lap_total}"
        );
    }
}
