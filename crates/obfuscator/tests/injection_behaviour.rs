//! Injection-behaviour tests through the public `ActivitySource`
//! interface: volume accounting, lane structure, and mechanism plumbing.

use aegis_dp::{ClipBound, LaplaceMechanism};
use aegis_fuzzer::Gadget;
use aegis_isa::{IsaCatalog, Vendor, WellKnown};
use aegis_microarch::{ActivityVector, Core, Feature, InterferenceConfig, MicroArch};
use aegis_obfuscator::{GadgetStack, Obfuscator, ObfuscatorConfig, SecretConstantNoise};
use aegis_sev::ActivitySource;

fn diverse_stack() -> GadgetStack {
    let catalog = IsaCatalog::synthetic(Vendor::Amd, 7);
    let mut core = Core::new(MicroArch::AmdEpyc7252, 7);
    core.set_interference(InterferenceConfig::isolated());
    GadgetStack::calibrate(
        &catalog,
        &mut core,
        vec![
            Gadget::new(WellKnown::Clflush.id(), WellKnown::Load64.id()),
            Gadget::new(WellKnown::Nop.id(), WellKnown::SimdAdd.id()),
            Gadget::new(WellKnown::Nop.id(), WellKnown::Store64.id()),
            Gadget::new(WellKnown::Nop.id(), WellKnown::FpAdd.id()),
        ],
        64,
    )
}

fn drive_ms(obf: &mut Obfuscator, ms: usize, app_uops: f64) -> Vec<ActivityVector> {
    let app = ActivityVector::from_pairs(&[(Feature::UopsRetired, app_uops)]);
    let mut rates = Vec::new();
    for _ in 0..ms * 10 {
        obf.observe_coscheduled(&app, 100_000);
        rates.push(obf.demand().unwrap());
    }
    rates
}

#[test]
fn injected_volume_is_mechanism_not_stack_dependent() {
    // The noise calculator fixes the injected reference counts; the stack
    // only determines which gadgets realize them.
    let cfg = ObfuscatorConfig::default();
    let single = {
        let catalog = IsaCatalog::synthetic(Vendor::Amd, 7);
        let mut core = Core::new(MicroArch::AmdEpyc7252, 7);
        GadgetStack::calibrate(
            &catalog,
            &mut core,
            vec![Gadget::new(WellKnown::Clflush.id(), WellKnown::Load64.id())],
            64,
        )
    };
    let mut a = Obfuscator::with_seed(single, Box::new(LaplaceMechanism::new(1.0, 3)), cfg, 3);
    let mut b = Obfuscator::with_seed(
        diverse_stack(),
        Box::new(LaplaceMechanism::new(1.0, 3)),
        cfg,
        3,
    );
    drive_ms(&mut a, 200, 400.0);
    drive_ms(&mut b, 200, 400.0);
    let rel = (a.injected_counts() - b.injected_counts()).abs() / a.injected_counts();
    assert!(rel < 1e-9, "volumes differ by {rel}");
}

#[test]
fn diverse_stacks_inject_in_multiple_directions() {
    let cfg = ObfuscatorConfig {
        clip: ClipBound::injection(1e9),
        ..ObfuscatorConfig::default()
    };
    let mut obf = Obfuscator::with_seed(
        diverse_stack(),
        Box::new(SecretConstantNoise::new(0.0, 1)),
        cfg,
        9,
    );
    // Constant level 0 injects nothing; use a real constant instead.
    let mut obf_live = Obfuscator::with_seed(
        diverse_stack(),
        Box::new(aegis_obfuscator::ConstantOutput::new(2.0)),
        cfg,
        9,
    );
    let silent = drive_ms(&mut obf, 50, 0.0);
    assert!(silent.iter().all(|r| r.is_zero()));

    let rates = drive_ms(&mut obf_live, 200, 0.0);
    // Across intervals, the active feature mix varies: sometimes SIMD
    // dominates, sometimes stores, sometimes cache refills.
    let mut saw_simd = false;
    let mut saw_store = false;
    let mut saw_refill = false;
    for r in &rates {
        if r[Feature::SimdOps] > r[Feature::Stores] && r[Feature::SimdOps] > 0.0 {
            saw_simd = true;
        }
        if r[Feature::Stores] > r[Feature::SimdOps] && r[Feature::Stores] > 0.0 {
            saw_store = true;
        }
        if r[Feature::LlcMiss] > 0.0 {
            saw_refill = true;
        }
    }
    assert!(
        saw_simd && saw_store && saw_refill,
        "lanes must rotate directions: simd {saw_simd} store {saw_store} refill {saw_refill}"
    );
}

#[test]
fn secret_constant_streams_are_identical_per_seed() {
    let cfg = ObfuscatorConfig::default();
    let make = |seed: u64| {
        let mut o = Obfuscator::with_seed(
            diverse_stack(),
            Box::new(SecretConstantNoise::new(4.0, seed)),
            cfg,
            seed,
        );
        let rates = drive_ms(&mut o, 20, 100.0);
        rates
            .iter()
            .map(|r| r[Feature::UopsRetired])
            .collect::<Vec<_>>()
    };
    assert_eq!(make(5), make(5));
    assert_ne!(make(5), make(6));
}

#[test]
fn mechanism_metadata_is_exposed() {
    let obf = Obfuscator::new(
        diverse_stack(),
        Box::new(LaplaceMechanism::new(0.5, 1)),
        ObfuscatorConfig::default(),
    );
    assert_eq!(obf.mechanism_name(), "laplace");
    assert_eq!(obf.epsilon(), 0.5);
    assert_eq!(obf.stack().len(), 4);
    assert_eq!(obf.injected_counts(), 0.0);
}

#[test]
fn advance_is_a_noop_for_injectors() {
    let mut obf = Obfuscator::new(
        diverse_stack(),
        Box::new(LaplaceMechanism::new(1.0, 1)),
        ObfuscatorConfig::default(),
    );
    drive_ms(&mut obf, 5, 100.0);
    let before = obf.demand().unwrap();
    obf.advance(1_000_000);
    assert_eq!(obf.demand().unwrap(), before);
}
