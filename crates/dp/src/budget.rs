//! Privacy-budget bookkeeping.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error when a charge would exceed the configured privacy budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetExhausted {
    /// Budget configured.
    pub total: f64,
    /// Budget already spent.
    pub spent: f64,
    /// The charge that was rejected.
    pub requested: f64,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "privacy budget exhausted: spent {:.4} of {:.4}, requested {:.4}",
            self.spent, self.total, self.requested
        )
    }
}

impl std::error::Error for BudgetExhausted {}

/// A sequential-composition privacy budget: charges add up, and a charge
/// that would exceed the total is refused. Customers pick the total ε per
/// deployment (the paper's chosen operating points are ε = 2⁰ for Laplace
/// and ε = 2³ for d*).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
}

impl PrivacyBudget {
    /// Creates a budget of `total` ε.
    ///
    /// # Panics
    ///
    /// Panics if `total <= 0`.
    pub fn new(total: f64) -> Self {
        assert!(total > 0.0, "budget must be positive");
        PrivacyBudget { total, spent: 0.0 }
    }

    /// Total budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Remaining budget.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Charges `eps` against the budget (sequential composition).
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] if the charge does not fit; the budget
    /// is left unchanged in that case.
    pub fn charge(&mut self, eps: f64) -> Result<(), BudgetExhausted> {
        if eps < 0.0 || self.spent + eps > self.total + 1e-12 {
            return Err(BudgetExhausted {
                total: self.total,
                spent: self.spent,
                requested: eps,
            });
        }
        self.spent += eps;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut b = PrivacyBudget::new(2.0);
        b.charge(0.5).unwrap();
        b.charge(1.0).unwrap();
        assert!((b.remaining() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overcharge_is_refused_and_harmless() {
        let mut b = PrivacyBudget::new(1.0);
        b.charge(0.9).unwrap();
        let err = b.charge(0.2).unwrap_err();
        assert_eq!(err.requested, 0.2);
        assert!((b.spent() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn negative_charge_is_refused() {
        let mut b = PrivacyBudget::new(1.0);
        assert!(b.charge(-0.1).is_err());
    }

    #[test]
    #[should_panic]
    fn zero_budget_panics() {
        PrivacyBudget::new(0.0);
    }
}
