//! # aegis-dp
//!
//! The differential-privacy machinery of the Event Obfuscator: the
//! [`LaplaceMechanism`] (ε-DP, Theorem 1 of the paper) and the
//! [`DStarMechanism`] ((d*, 2ε)-privacy, Theorem 2, after Chan et al.'s
//! continual release), plus the injection [`ClipBound`], a precomputed
//! [`NoiseBuffer`] mirroring the daemon's high-rate noise calculator, and
//! sequential-composition [`PrivacyBudget`] bookkeeping.
//!
//! All Laplace draws are derived from uniform variates by inverse CDF —
//! as the paper's implementation does for latency — and every consumer is
//! seed-deterministic.

mod budget;
mod buffer;
mod clip;
mod dstar;
mod laplace;
mod mechanism;

pub use budget::{BudgetExhausted, PrivacyBudget};
pub use buffer::NoiseBuffer;
pub use clip::ClipBound;
pub use dstar::{anchor, largest_dividing_pow2, DStarMechanism};
pub use laplace::LaplaceMechanism;
pub use mechanism::{d_star_distance, laplace, standard_laplace, NoiseMechanism};
