//! The d* mechanism (Theorem 2: (d*, 2ε)-privacy).
//!
//! Extended from Chan et al.'s binary-tree continual release: the noisy
//! value at `t` is anchored to the noisy value at `G(t)` plus the true
//! increment, with fresh Laplace noise whose scale grows as `⌊log₂ t⌋/ε`
//! off the power-of-two spine:
//!
//! ```text
//! x̃[t] = x̃[G(t)] + (x[t] − x[G(t)]) + r_t
//! G(t) = 0         if t = 1
//!      = t/2       if t = D(t) ≥ 2      (t is a power of two)
//!      = t − D(t)  if t > D(t)
//! r_t  ~ Lap(1/ε)            if t = D(t)
//!      ~ Lap(⌊log₂ t⌋ / ε)   otherwise
//! ```
//!
//! where `D(t)` is the largest power of two dividing `t`. The correlated
//! structure yields better privacy for time series under the `d*` metric
//! at equal ε — which is why Fig. 9 shows d* dominating Laplace.

use crate::buffer::NoiseBuffer;
use crate::mechanism::NoiseMechanism;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Largest power of two dividing `t` (`D(t)`); `t` must be ≥ 1.
///
/// # Panics
///
/// Panics if `t == 0`.
pub fn largest_dividing_pow2(t: usize) -> usize {
    assert!(t >= 1, "D(t) requires t >= 1");
    1 << t.trailing_zeros()
}

/// The anchor index `G(t)` of the d* recursion.
///
/// # Panics
///
/// Panics if `t == 0`.
pub fn anchor(t: usize) -> usize {
    assert!(t >= 1, "G(t) requires t >= 1");
    let d = largest_dividing_pow2(t);
    if t == 1 {
        0
    } else if t == d {
        t / 2
    } else {
        t - d
    }
}

/// The d* mechanism. Stateful: it remembers the raw and noisy values of
/// every anchor position of the current trace; call
/// [`NoiseMechanism::reset`] between traces.
///
/// # Example
///
/// ```
/// use aegis_dp::{DStarMechanism, NoiseMechanism};
///
/// let mut m = DStarMechanism::new(1.0, 42);
/// let r1 = m.noise_at(1, 10.0);
/// let r2 = m.noise_at(2, 12.0);
/// assert!(r1.is_finite() && r2.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct DStarMechanism {
    epsilon: f64,
    buffer: NoiseBuffer,
    /// `(x[t], x̃[t])` per seen `t`; index 0 is the virtual origin (0, 0).
    history: Vec<(f64, f64)>,
}

impl DStarMechanism {
    /// Creates the mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon <= 0`.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        let rng = StdRng::seed_from_u64(seed ^ 0xd57a_0000);
        DStarMechanism {
            epsilon,
            buffer: NoiseBuffer::standard_laplace(4096, rng),
            history: vec![(0.0, 0.0)],
        }
    }

    fn r_scale(&self, t: usize) -> f64 {
        if t == largest_dividing_pow2(t) {
            1.0 / self.epsilon
        } else {
            let log = (t as f64).log2().floor();
            log / self.epsilon
        }
    }
}

impl NoiseMechanism for DStarMechanism {
    fn name(&self) -> &'static str {
        "dstar"
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// # Panics
    ///
    /// Panics if slices are fed out of order (`t` must be
    /// `history.len()`, i.e. 1, 2, 3, ... consecutively).
    fn noise_at(&mut self, t: usize, x_t: f64) -> f64 {
        assert_eq!(
            t,
            self.history.len(),
            "d* requires consecutive time slices starting at 1"
        );
        let g = anchor(t);
        let (x_g, noisy_g) = self.history[g];
        let r_t = self.buffer.next() * self.r_scale(t);
        let noisy_t = noisy_g + (x_t - x_g) + r_t;
        self.history.push((x_t, noisy_t));
        noisy_t - x_t
    }

    fn reset(&mut self) {
        self.history.clear();
        self.history.push((0.0, 0.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::d_star_distance;

    #[test]
    fn d_of_t_matches_definition() {
        assert_eq!(largest_dividing_pow2(1), 1);
        assert_eq!(largest_dividing_pow2(2), 2);
        assert_eq!(largest_dividing_pow2(3), 1);
        assert_eq!(largest_dividing_pow2(12), 4);
        assert_eq!(largest_dividing_pow2(64), 64);
        assert_eq!(largest_dividing_pow2(96), 32);
    }

    #[test]
    fn anchors_match_eq4() {
        assert_eq!(anchor(1), 0);
        assert_eq!(anchor(2), 1);
        assert_eq!(anchor(4), 2);
        assert_eq!(anchor(8), 4);
        assert_eq!(anchor(3), 2); // 3 - D(3)=1
        assert_eq!(anchor(6), 4); // 6 - D(6)=2
        assert_eq!(anchor(7), 6);
        assert_eq!(anchor(12), 8); // 12 - 4
    }

    #[test]
    fn anchor_chain_reaches_origin_quickly() {
        for t in 1..=4096usize {
            let mut cur = t;
            let mut hops = 0;
            while cur != 0 {
                cur = anchor(cur);
                hops += 1;
                assert!(hops <= 2 * 13, "t={t} too many hops");
            }
        }
    }

    #[test]
    fn noise_grows_with_log_t_off_spine() {
        let m = DStarMechanism::new(1.0, 1);
        assert_eq!(m.r_scale(1), 1.0);
        assert_eq!(m.r_scale(1024), 1.0); // power of two → Lap(1/ε)
        assert_eq!(m.r_scale(3), 1.0); // ⌊log₂ 3⌋ = 1
        assert_eq!(m.r_scale(1000), 9.0); // ⌊log₂ 1000⌋ = 9
    }

    #[test]
    fn per_slice_noise_is_larger_than_laplace_at_equal_epsilon() {
        use crate::laplace::LaplaceMechanism;
        let eps = 1.0;
        let trials = 200;
        let len = 512;
        let mut d_total = 0.0;
        let mut l_total = 0.0;
        for seed in 0..trials {
            let mut d = DStarMechanism::new(eps, seed);
            let mut l = LaplaceMechanism::new(eps, seed);
            for t in 1..=len {
                d_total += d.noise_at(t, 0.0).abs();
                l_total += l.noise_at(t, 0.0).abs();
            }
        }
        assert!(
            d_total > 2.0 * l_total,
            "d* {d_total} laplace {l_total}: d* must obfuscate harder at equal ε"
        );
    }

    #[test]
    fn noisy_series_is_anchored_not_drifting() {
        // Because each slice anchors to G(t), the cumulative deviation of
        // x̃ from x stays O(log t · 1/ε) rather than O(√t) random walk.
        let mut m = DStarMechanism::new(4.0, 3);
        let mut max_dev = 0.0f64;
        for t in 1..=4096 {
            let dev = m.noise_at(t, 0.0).abs();
            max_dev = max_dev.max(dev);
        }
        // Rough bound: sum over ≤ 2·log₂(t) anchors of Lap(log/ε) tails.
        assert!(max_dev < 120.0, "max deviation {max_dev}");
    }

    #[test]
    fn out_of_order_feeding_panics() {
        let mut m = DStarMechanism::new(1.0, 1);
        m.noise_at(1, 0.0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.noise_at(3, 0.0)));
        assert!(r.is_err());
    }

    #[test]
    fn reset_restarts_the_trace() {
        let mut m = DStarMechanism::new(1.0, 1);
        m.noise_at(1, 0.0);
        m.noise_at(2, 0.0);
        m.reset();
        let r = m.noise_at(1, 0.0); // t=1 accepted again
        assert!(r.is_finite());
    }

    #[test]
    fn d_star_privacy_smoke_check() {
        // Two series at small d* distance should produce statistically
        // close noisy outputs: compare mean absolute difference of the
        // noisy increments against the noise magnitude.
        let eps = 0.5;
        let x: Vec<f64> = (0..64).map(|t| (t as f64 * 0.3).sin()).collect();
        let mut y = x.clone();
        y[10] += 0.5; // d* distance = 1.0
        assert!((d_star_distance(&x, &y) - 1.0).abs() < 1e-9);
        let mut diffs = 0.0;
        let trials = 300;
        for seed in 0..trials {
            let mut mx = DStarMechanism::new(eps, seed);
            let mut my = DStarMechanism::new(eps, seed + 10_000);
            let nx: Vec<f64> = x
                .iter()
                .enumerate()
                .map(|(i, &v)| v + mx.noise_at(i + 1, v))
                .collect();
            let ny: Vec<f64> = y
                .iter()
                .enumerate()
                .map(|(i, &v)| v + my.noise_at(i + 1, v))
                .collect();
            diffs += (nx[10] - ny[10]).abs() / trials as f64;
        }
        // The 0.5 secret-dependent difference is dwarfed by ~(1/eps)-scale noise.
        assert!(
            diffs > 1.0,
            "noisy outputs should be noise-dominated: {diffs}"
        );
    }
}
