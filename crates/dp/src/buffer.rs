//! Precomputed noise ring buffer.
//!
//! The Event Obfuscator's userspace daemon must sustain high injection
//! rates, so it keeps a buffer of precomputed random draws (Section
//! VII-C). The buffer stores standard-Laplace variates; consumers scale
//! them by their mechanism's `b`.

use crate::mechanism::standard_laplace;
use rand::rngs::StdRng;

/// A refillable ring buffer of standard-Laplace draws.
#[derive(Debug, Clone)]
pub struct NoiseBuffer {
    buf: Vec<f64>,
    idx: usize,
    rng: StdRng,
}

impl NoiseBuffer {
    /// Creates a buffer of `capacity` precomputed `Lap(1)` draws.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn standard_laplace(capacity: usize, mut rng: StdRng) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        let buf = (0..capacity).map(|_| standard_laplace(&mut rng)).collect();
        NoiseBuffer { buf, idx: 0, rng }
    }

    /// Buffer capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Takes the next draw, refilling the buffer transparently when
    /// exhausted (fresh randomness each refill — never replayed).
    // The buffer is not an iterator (draws are infinite and infallible),
    // so the natural name is kept despite the `Iterator::next` overlap.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> f64 {
        if self.idx == self.buf.len() {
            for slot in &mut self.buf {
                *slot = standard_laplace(&mut self.rng);
            }
            self.idx = 0;
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn refill_produces_fresh_draws() {
        let rng = StdRng::seed_from_u64(1);
        let mut buf = NoiseBuffer::standard_laplace(8, rng);
        let first: Vec<f64> = (0..8).map(|_| buf.next()).collect();
        let second: Vec<f64> = (0..8).map(|_| buf.next()).collect();
        assert_ne!(first, second, "refill must not replay");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<f64> = {
            let mut b = NoiseBuffer::standard_laplace(16, StdRng::seed_from_u64(2));
            (0..40).map(|_| b.next()).collect()
        };
        let b: Vec<f64> = {
            let mut b = NoiseBuffer::standard_laplace(16, StdRng::seed_from_u64(2));
            (0..40).map(|_| b.next()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn statistics_survive_refills() {
        let mut buf = NoiseBuffer::standard_laplace(64, StdRng::seed_from_u64(3));
        let n = 100_000;
        let mean_abs: f64 = (0..n).map(|_| buf.next().abs()).sum::<f64>() / n as f64;
        assert!((mean_abs - 1.0).abs() < 0.05, "{mean_abs}");
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        NoiseBuffer::standard_laplace(0, StdRng::seed_from_u64(1));
    }
}
