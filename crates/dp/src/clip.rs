//! Noise clipping: injected gadget counts cannot be negative.
//!
//! "As the number of injected instruction gadgets cannot be negative,
//! each noise element is truncated by a clip bound of `[0, B_u]`, where
//! the upper bound `B_u` is determined empirically based on the profiling
//! of HPC events" (Section VIII-C; e.g. `B_u = 2e4` for RETIRED_UOPS).

use serde::{Deserialize, Serialize};

/// A `[lo, hi]` clipping bound applied to noise values before injection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClipBound {
    /// Lower bound (0 for instruction injection).
    pub lo: f64,
    /// Upper bound `B_u`.
    pub hi: f64,
}

impl ClipBound {
    /// The paper's injection bound `[0, B_u]`.
    ///
    /// # Panics
    ///
    /// Panics if `b_u < 0`.
    pub fn injection(b_u: f64) -> Self {
        assert!(b_u >= 0.0, "upper clip bound must be non-negative");
        ClipBound { lo: 0.0, hi: b_u }
    }

    /// Clamps a noise value into the bound.
    pub fn clip(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }
}

impl Default for ClipBound {
    /// The paper's RETIRED_UOPS bound, `[0, 2e4]` (normalized units).
    fn default() -> Self {
        ClipBound::injection(2e4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clips_both_tails() {
        let c = ClipBound::injection(10.0);
        assert_eq!(c.clip(-5.0), 0.0);
        assert_eq!(c.clip(5.0), 5.0);
        assert_eq!(c.clip(50.0), 10.0);
    }

    #[test]
    fn default_matches_paper() {
        let c = ClipBound::default();
        assert_eq!(c.lo, 0.0);
        assert_eq!(c.hi, 2e4);
    }

    #[test]
    #[should_panic]
    fn negative_bound_panics() {
        ClipBound::injection(-1.0);
    }
}
