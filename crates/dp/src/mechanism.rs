//! The noise-mechanism abstraction and Laplace sampling primitives.

use rand::Rng;

/// Samples a standard Laplace variate (location 0, scale 1) by inverse
/// CDF directly from a uniform draw.
///
/// The paper's noise calculator does exactly this: "the random number r is
/// directly transferred from the uniform distribution in [0, 1], while
/// using library APIs introduces much longer latency" (Section VII-C).
pub fn standard_laplace<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u ∈ (-1/2, 1/2); r = -sign(u) · ln(1 - 2|u|).
    let u: f64 = rng.gen::<f64>() - 0.5;
    let a = 1.0 - 2.0 * u.abs();
    -u.signum() * a.max(f64::MIN_POSITIVE).ln()
}

/// Samples `Lap(b)`: Laplace with location 0 and scale `b`.
///
/// # Panics
///
/// Panics if `b` is negative.
pub fn laplace<R: Rng + ?Sized>(rng: &mut R, b: f64) -> f64 {
    assert!(b >= 0.0, "Laplace scale must be non-negative");
    b * standard_laplace(rng)
}

/// A differential-privacy noise mechanism over an HPC time series.
///
/// Given the series position `t` (1-based, as in the paper's `d*`
/// formulation) and the raw value `x[t]`, the mechanism returns the noise
/// `r` such that the obfuscated observation is `x̃[t] = x[t] + r`. Some
/// mechanisms (d*) are stateful across `t`; call [`NoiseMechanism::reset`]
/// between independent traces.
pub trait NoiseMechanism: Send + Sync {
    /// Mechanism name for reports (`"laplace"`, `"dstar"`, ...).
    fn name(&self) -> &'static str;

    /// The privacy budget ε the mechanism was configured with.
    fn epsilon(&self) -> f64;

    /// Noise for time slice `t` (1-based) with raw value `x_t`.
    fn noise_at(&mut self, t: usize, x_t: f64) -> f64;

    /// Clears any cross-`t` state, starting a fresh trace.
    fn reset(&mut self);
}

impl<T: NoiseMechanism + ?Sized> NoiseMechanism for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn epsilon(&self) -> f64 {
        (**self).epsilon()
    }

    fn noise_at(&mut self, t: usize, x_t: f64) -> f64 {
        (**self).noise_at(t, x_t)
    }

    fn reset(&mut self) {
        (**self).reset();
    }
}

/// The `d*` metric on series, `d*(x, x') = Σ_t |(x[t] − x[t−1]) −
/// (x'[t] − x'[t−1])|`, under which the d* mechanism provides
/// `(d*, 2ε)`-privacy (Section VII-B).
pub fn d_star_distance(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len().min(y.len());
    let mut acc = 0.0;
    let mut px = 0.0;
    let mut py = 0.0;
    for i in 0..n {
        acc += ((x[i] - px) - (y[i] - py)).abs();
        px = x[i];
        py = y[i];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_laplace_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_laplace(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 2.0).abs() < 0.1, "var {var}"); // Var[Lap(1)] = 2
    }

    #[test]
    fn laplace_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let b = 3.0;
        let mean_abs = (0..n).map(|_| laplace(&mut rng, b).abs()).sum::<f64>() / n as f64;
        assert!((mean_abs - b).abs() < 0.1, "E|Lap(b)| = b, got {mean_abs}");
    }

    #[test]
    fn laplace_density_ratio_bounded_by_exp_eps() {
        // Empirical ε-DP check: histograms of x+Lap(1/ε) for adjacent
        // x, x' (|x-x'| = 1) must have ratio ≤ e^ε (+ sampling slack).
        let eps = 1.0;
        let mut rng = StdRng::seed_from_u64(3);
        let n = 400_000;
        let mut h0 = [0f64; 40];
        let mut h1 = [0f64; 40];
        for _ in 0..n {
            let a = 0.0 + laplace(&mut rng, 1.0 / eps);
            let b = 1.0 + laplace(&mut rng, 1.0 / eps);
            for (x, h) in [(a, &mut h0), (b, &mut h1)] {
                let bin = (((x + 10.0) / 0.5) as isize).clamp(0, 39) as usize;
                h[bin] += 1.0;
            }
        }
        for (c0, c1) in h0.iter().zip(&h1) {
            if *c0 > 500.0 && *c1 > 500.0 {
                let ratio = (c0 / c1).max(c1 / c0);
                assert!(ratio <= eps.exp() * 1.15, "ratio {ratio}");
            }
        }
    }

    #[test]
    fn d_star_of_identical_series_is_zero() {
        let x = [1.0, 5.0, 2.0];
        assert_eq!(d_star_distance(&x, &x), 0.0);
    }

    #[test]
    fn d_star_penalizes_shape_changes_not_offsets() {
        // Constant offset changes only the first increment.
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 3.0, 4.0];
        assert_eq!(d_star_distance(&x, &y), 1.0);
        // A spike changes two increments.
        let z = [1.0, 5.0, 3.0];
        assert_eq!(d_star_distance(&x, &z), 6.0);
    }

    #[test]
    #[should_panic]
    fn negative_scale_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        laplace(&mut rng, -1.0);
    }
}
