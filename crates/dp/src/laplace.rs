//! The Laplace mechanism (Theorem 1: ε-DP).

use crate::buffer::NoiseBuffer;
use crate::mechanism::NoiseMechanism;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Laplace mechanism: `x̃[t] = x[t] + Lap(Δ/ε)` independently per
/// slice, which satisfies ε-differential privacy (the paper's Theorem 1).
///
/// The paper normalizes sequence data so the sensitivity `Δ_x[t]` is 1.
/// Draws come from a precomputed standard-Laplace ring buffer, mirroring
/// the userspace daemon's high-rate noise calculator.
///
/// # Example
///
/// ```
/// use aegis_dp::{LaplaceMechanism, NoiseMechanism};
///
/// let mut m = LaplaceMechanism::new(1.0, 42);
/// let r = m.noise_at(1, 0.5);
/// assert!(r.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct LaplaceMechanism {
    epsilon: f64,
    sensitivity: f64,
    buffer: NoiseBuffer,
}

impl LaplaceMechanism {
    /// Creates the mechanism with sensitivity 1 (normalized data).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon <= 0`.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        Self::with_sensitivity(epsilon, 1.0, seed)
    }

    /// Creates the mechanism with an explicit sensitivity `Δ`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon <= 0` or `sensitivity < 0`.
    pub fn with_sensitivity(epsilon: f64, sensitivity: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(sensitivity >= 0.0, "sensitivity must be non-negative");
        let rng = StdRng::seed_from_u64(seed ^ 0x1a91_ace0);
        LaplaceMechanism {
            epsilon,
            sensitivity,
            buffer: NoiseBuffer::standard_laplace(4096, rng),
        }
    }

    /// The Laplace scale `b = Δ/ε`.
    pub fn scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }
}

impl NoiseMechanism for LaplaceMechanism {
    fn name(&self) -> &'static str {
        "laplace"
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn noise_at(&mut self, _t: usize, _x_t: f64) -> f64 {
        self.buffer.next() * self.scale()
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_scale_tracks_epsilon() {
        for eps in [0.125, 1.0, 8.0] {
            let mut m = LaplaceMechanism::new(eps, 7);
            let n = 50_000;
            let mean_abs: f64 =
                (0..n).map(|t| m.noise_at(t + 1, 0.0).abs()).sum::<f64>() / n as f64;
            // E|Lap(1/ε)| = 1/ε.
            assert!(
                (mean_abs - 1.0 / eps).abs() / (1.0 / eps) < 0.1,
                "eps {eps}: {mean_abs}"
            );
        }
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        let mut strong = LaplaceMechanism::new(0.125, 1);
        let mut weak = LaplaceMechanism::new(8.0, 1);
        let n = 20_000;
        let s: f64 = (0..n).map(|t| strong.noise_at(t, 0.0).abs()).sum();
        let w: f64 = (0..n).map(|t| weak.noise_at(t, 0.0).abs()).sum();
        assert!(s > 10.0 * w, "strong {s} weak {w}");
    }

    #[test]
    fn independent_of_t_and_x() {
        // Statistically: distributions at different t/x are the same
        // because Laplace noise is i.i.d. Use matched seeds.
        let mut a = LaplaceMechanism::new(1.0, 9);
        let mut b = LaplaceMechanism::new(1.0, 9);
        for t in 1..100 {
            assert_eq!(a.noise_at(t, 0.0), b.noise_at(9 * t, 1e6));
        }
    }

    #[test]
    fn sensitivity_scales_noise() {
        let mut m = LaplaceMechanism::with_sensitivity(1.0, 5.0, 7);
        assert_eq!(m.scale(), 5.0);
        let n = 50_000;
        let mean_abs: f64 = (0..n).map(|t| m.noise_at(t, 0.0).abs()).sum::<f64>() / n as f64;
        assert!((mean_abs - 5.0).abs() < 0.3, "{mean_abs}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_epsilon() {
        LaplaceMechanism::new(0.0, 1);
    }

    #[test]
    fn reset_is_noop() {
        let mut m = LaplaceMechanism::new(1.0, 1);
        let a = m.noise_at(1, 0.0);
        m.reset();
        let b = m.noise_at(2, 0.0);
        assert_ne!(a, b); // stream continues; no state to clear
    }
}
