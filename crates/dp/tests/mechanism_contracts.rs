//! Contract tests over the public mechanism API: trait-object behaviour,
//! statistical comparisons between the mechanisms, and the interaction
//! with clipping.

use aegis_dp::{
    ClipBound, DStarMechanism, LaplaceMechanism, NoiseBuffer, NoiseMechanism, PrivacyBudget,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn boxed_mechanisms_forward_everything() {
    let mut boxed: Box<dyn NoiseMechanism> = Box::new(LaplaceMechanism::new(2.0, 5));
    assert_eq!(boxed.name(), "laplace");
    assert_eq!(boxed.epsilon(), 2.0);
    let r = boxed.noise_at(1, 0.0);
    assert!(r.is_finite());
    boxed.reset();

    let mut boxed: Box<dyn NoiseMechanism> = Box::new(DStarMechanism::new(2.0, 5));
    assert_eq!(boxed.name(), "dstar");
    let r1 = boxed.noise_at(1, 1.0);
    let r2 = boxed.noise_at(2, 1.5);
    assert!(r1.is_finite() && r2.is_finite());
    boxed.reset();
    // After reset the series restarts at t = 1 without panicking.
    let _ = boxed.noise_at(1, 0.0);
}

#[test]
fn clipped_laplace_mass_at_zero_is_half() {
    // Clipping [0, B] sends every negative draw to 0 — P(0) ≈ 1/2,
    // the property that motivates sub-sample injection intervals.
    let clip = ClipBound::injection(100.0);
    let mut m = LaplaceMechanism::new(1.0, 9);
    let n = 50_000;
    let zeros = (0..n)
        .filter(|&t| clip.clip(m.noise_at(t + 1, 0.0)) == 0.0)
        .count();
    let frac = zeros as f64 / n as f64;
    assert!((frac - 0.5).abs() < 0.02, "zero mass {frac}");
}

#[test]
fn expected_clipped_noise_scales_inversely_with_epsilon() {
    let clip = ClipBound::injection(1e9);
    let mean_noise = |eps: f64| {
        let mut m = LaplaceMechanism::new(eps, 3);
        let n = 100_000;
        (0..n)
            .map(|t| clip.clip(m.noise_at(t + 1, 0.0)))
            .sum::<f64>()
            / n as f64
    };
    // E[max(0, Lap(1/ε))] = 1/(2ε).
    for eps in [0.25, 1.0, 4.0] {
        let m = mean_noise(eps);
        let expected = 1.0 / (2.0 * eps);
        assert!(
            (m - expected).abs() / expected < 0.05,
            "eps {eps}: mean {m} vs {expected}"
        );
    }
}

#[test]
fn dstar_total_noise_exceeds_laplace_over_a_window() {
    // Fig. 10's cost ordering comes from this property.
    let windows = 50;
    let len = 500;
    let mut lap_total = 0.0;
    let mut ds_total = 0.0;
    for seed in 0..windows {
        let mut lap = LaplaceMechanism::new(1.0, seed);
        let mut ds = DStarMechanism::new(1.0, seed);
        for t in 1..=len {
            lap_total += lap.noise_at(t, 0.0).max(0.0);
            ds_total += ds.noise_at(t, 0.0).max(0.0);
        }
    }
    assert!(
        ds_total > 1.5 * lap_total,
        "dstar {ds_total} vs laplace {lap_total}"
    );
}

#[test]
fn noise_buffers_from_the_same_seed_agree_across_capacities() {
    // Capacity is an implementation detail of the ring, not of the
    // stream's distribution; different capacities give different streams,
    // equal capacities identical ones.
    let draws = |cap: usize| -> Vec<f64> {
        let mut b = NoiseBuffer::standard_laplace(cap, StdRng::seed_from_u64(4));
        (0..cap.min(16)).map(|_| b.next()).collect()
    };
    assert_eq!(draws(64), draws(64));
}

#[test]
fn budget_composes_across_mechanism_deployments() {
    // A customer running Laplace at ε=0.5 twice and d* at ε=1 spends 2ε
    // for d* (Theorem 2's (d*, 2ε)).
    let mut budget = PrivacyBudget::new(4.0);
    let lap = LaplaceMechanism::new(0.5, 1);
    budget.charge(lap.epsilon()).unwrap();
    budget.charge(lap.epsilon()).unwrap();
    let ds = DStarMechanism::new(1.0, 1);
    budget.charge(2.0 * ds.epsilon()).unwrap();
    assert!((budget.remaining() - 1.0).abs() < 1e-12);
    assert!(budget.charge(1.5).is_err());
}
