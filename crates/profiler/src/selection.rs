//! Monitoring-slot selection from the vulnerability ranking.
//!
//! The attacker (and the defender assessing worst-case leakage) can only
//! monitor `C = 4` events concurrently; the paper selects the four events
//! used throughout its case studies from the ranking results of Section
//! VIII-A: "These four events would leak most information about the
//! secrets sealed in the confidential VM", while covering *different*
//! micro-architectural aspects ("instruction retirements, operation
//! dispatch and cache accesses"). This module reproduces that selection:
//! greedy by mutual information with a diversity constraint on the
//! events' dominant features.

use crate::ranking::EventRanking;
use aegis_microarch::{EventCatalog, EventId, Feature};

/// Selects up to `slots` events to monitor: descending mutual
/// information, skipping events whose dominant feature is already
/// represented (so the set spans distinct micro-architectural aspects,
/// like the paper's retirement/dispatch/cache mix). Falls back to pure
/// ranking order if diversity cannot fill the slots.
pub fn select_monitoring_events(
    rankings: &[EventRanking],
    catalog: &EventCatalog,
    slots: usize,
) -> Vec<EventId> {
    let mut chosen: Vec<EventId> = Vec::with_capacity(slots);
    let mut used_features: Vec<Feature> = Vec::with_capacity(slots);
    for r in rankings {
        if chosen.len() == slots {
            break;
        }
        let Some(desc) = catalog.get(r.event) else {
            continue;
        };
        let Some(dominant) = desc.dominant_feature() else {
            continue;
        };
        if !used_features.contains(&dominant) {
            chosen.push(r.event);
            used_features.push(dominant);
        }
    }
    // Fill any remaining slots by raw rank.
    for r in rankings {
        if chosen.len() == slots {
            break;
        }
        if !chosen.contains(&r.event) {
            chosen.push(r.event);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::MicroArch;

    fn rank(event: u32, mi: f64, catalog: &EventCatalog) -> EventRanking {
        EventRanking {
            event: EventId(event),
            name: catalog.get(EventId(event)).unwrap().name.clone(),
            mi_bits: mi,
        }
    }

    #[test]
    fn selection_prefers_rank_but_enforces_feature_diversity() {
        let catalog = EventCatalog::for_arch(MicroArch::AmdEpyc7252);
        // Find two events sharing a dominant feature and one differing.
        let events = catalog.events();
        let a = &events[0];
        let same = events
            .iter()
            .find(|e| e.id != a.id && e.dominant_feature() == a.dominant_feature())
            .expect("a same-feature event exists");
        let diff = events
            .iter()
            .find(|e| {
                e.dominant_feature().is_some() && e.dominant_feature() != a.dominant_feature()
            })
            .expect("a different-feature event exists");
        let rankings = vec![
            rank(a.id.0, 3.0, &catalog),
            rank(same.id.0, 2.9, &catalog),
            rank(diff.id.0, 2.0, &catalog),
        ];
        let picked = select_monitoring_events(&rankings, &catalog, 2);
        assert_eq!(picked, vec![a.id, diff.id], "diversity must skip the clone");
    }

    #[test]
    fn falls_back_to_rank_order_when_diversity_exhausted() {
        let catalog = EventCatalog::for_arch(MicroArch::AmdEpyc7252);
        let events = catalog.events();
        let a = &events[0];
        let same: Vec<&aegis_microarch::EventDesc> = events
            .iter()
            .filter(|e| e.dominant_feature() == a.dominant_feature())
            .take(3)
            .collect();
        assert!(same.len() >= 3);
        let rankings: Vec<EventRanking> = same
            .iter()
            .enumerate()
            .map(|(i, e)| rank(e.id.0, 3.0 - i as f64 * 0.1, &catalog))
            .collect();
        let picked = select_monitoring_events(&rankings, &catalog, 3);
        assert_eq!(picked.len(), 3);
        assert_eq!(picked[0], same[0].id);
    }

    #[test]
    fn never_selects_more_than_slots() {
        let catalog = EventCatalog::for_arch(MicroArch::AmdEpyc7252);
        let rankings: Vec<EventRanking> = catalog
            .events()
            .iter()
            .take(20)
            .map(|e| rank(e.id.0, 1.0, &catalog))
            .collect();
        assert_eq!(select_monitoring_events(&rankings, &catalog, 4).len(), 4);
        assert!(select_monitoring_events(&rankings, &catalog, 50).len() <= 20);
    }

    #[test]
    fn empty_rankings_select_nothing() {
        let catalog = EventCatalog::for_arch(MicroArch::AmdEpyc7252);
        assert!(select_monitoring_events(&[], &catalog, 4).is_empty());
    }
}
