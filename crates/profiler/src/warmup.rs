//! Warm-up profiling: discard the HPC events that cannot reflect guest
//! activity at all.
//!
//! "The key idea is that a majority of HPC events cannot reflect the
//! activities inside a guest VM. To exclude those events, we measure and
//! compare the event counts when the VM runs the application and when it
//! is idle" (Section V-B). Events whose counts do not change are removed,
//! leaving <10% — mainly hardware (H/HC) and raw (R) events.

use aegis_microarch::{EventId, EventKind, OriginFilter};
use aegis_sev::{ActivitySource, Host, HostError, PlanSource, VmId};
use aegis_workloads::{MixSpec, SecretApp, Segment, WorkloadPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Warm-up profiling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmupConfig {
    /// Monitoring window per event group per pass (`t_w`; the paper uses
    /// 1 s of wall time, the simulator defaults to 10 ms of simulated
    /// time for tractable experiment runtimes).
    pub probe_ns: u64,
    /// Number of repeated active probes (the paper repeats the warm-up
    /// profiling 5 times; events changing in *any* pass are kept).
    pub passes: usize,
    /// Relative change threshold over the idle count.
    pub rel_threshold: f64,
    /// Absolute count-change threshold (suppresses measurement noise).
    pub abs_threshold: f64,
    /// RNG seed (probe offsets and secret rotation).
    pub seed: u64,
}

impl Default for WarmupConfig {
    fn default() -> Self {
        WarmupConfig {
            probe_ns: 10_000_000,
            passes: 3,
            rel_threshold: 0.5,
            abs_threshold: 25.0,
            seed: 7,
        }
    }
}

/// Per-kind warm-up survival row — the bracketed percentages of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KindSurvival {
    /// Event class.
    pub kind: EventKind,
    /// Events of this class in the catalog.
    pub total: usize,
    /// Events of this class that survived the warm-up.
    pub remaining: usize,
}

impl KindSurvival {
    /// Remaining percentage.
    pub fn remaining_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.remaining as f64 / self.total as f64 * 100.0
        }
    }
}

/// Result of warm-up profiling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmupResult {
    /// Events that reflect guest application activity, in catalog order.
    pub vulnerable: Vec<EventId>,
    /// Total events tested (`M`).
    pub tested: usize,
    /// Per-kind survival, in Table II order.
    pub kind_survival: Vec<KindSurvival>,
}

impl WarmupResult {
    /// Fraction of events that survived.
    pub fn survival_fraction(&self) -> f64 {
        self.vulnerable.len() as f64 / self.tested.max(1) as f64
    }
}

/// Runs warm-up profiling of `app` inside `vm` against every event of the
/// host's catalog, in groups of `C = 4` to avoid counter multiplexing.
///
/// # Errors
///
/// Returns [`HostError`] if the vm/vcpu ids are invalid.
pub fn warmup_profile(
    host: &mut Host,
    vm: VmId,
    vcpu: usize,
    app: &dyn SecretApp,
    cfg: &WarmupConfig,
) -> Result<WarmupResult, HostError> {
    let core_idx = host.core_of(vm, vcpu)?;
    let catalog = host.core(core_idx).catalog();
    let all_events: Vec<EventId> = catalog.events().iter().map(|e| e.id).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x3a11_0001);
    let slots = host.arch().counter_slots();

    let mut vulnerable = Vec::new();
    for group in all_events.chunks(slots) {
        // Idle pass: only the VM's background hum.
        let idle_plan = idle_plan(cfg.probe_ns);
        host.attach_app(vm, vcpu, Box::new(PlanSource::new(idle_plan)))?;
        let idle = host
            .record_trace(
                core_idx,
                group,
                OriginFilter::GuestOnly(vm.0),
                cfg.probe_ns,
                cfg.probe_ns,
            )
            .expect("catalog events are valid");
        let idle_counts = idle.totals();

        // Active passes at random plan offsets so every application phase
        // gets probed across the passes.
        let mut changed = vec![false; group.len()];
        for _ in 0..cfg.passes.max(1) {
            let secret = rng.gen_range(0..app.n_secrets());
            let plan = app.sample_plan(secret, &mut rng);
            let mut src = PlanSource::new(plan);
            let max_off = app.window_ns().saturating_sub(cfg.probe_ns);
            src.advance(rng.gen_range(0..=max_off));
            host.attach_app(vm, vcpu, Box::new(src))?;
            let active = host
                .record_trace(
                    core_idx,
                    group,
                    OriginFilter::GuestOnly(vm.0),
                    cfg.probe_ns,
                    cfg.probe_ns,
                )
                .expect("catalog events are valid");
            for (i, (&a, &idle_c)) in active.totals().iter().zip(&idle_counts).enumerate() {
                if a > idle_c * (1.0 + cfg.rel_threshold) + cfg.abs_threshold {
                    changed[i] = true;
                }
            }
        }
        for (i, &ev) in group.iter().enumerate() {
            if changed[i] {
                vulnerable.push(ev);
            }
        }
    }
    // Leave the VM idle.
    host.attach_app(vm, vcpu, Box::new(PlanSource::new(WorkloadPlan::new())))?;

    let kind_survival = EventKind::ALL
        .iter()
        .map(|&kind| {
            let total = catalog.events().iter().filter(|e| e.kind == kind).count();
            let remaining = vulnerable
                .iter()
                .filter(|&&id| catalog.get(id).is_some_and(|e| e.kind == kind))
                .count();
            KindSurvival {
                kind,
                total,
                remaining,
            }
        })
        .collect();
    Ok(WarmupResult {
        vulnerable,
        tested: all_events.len(),
        kind_survival,
    })
}

fn idle_plan(duration_ns: u64) -> WorkloadPlan {
    let mut p = WorkloadPlan::new();
    // Pad slightly past the probe so the source never runs dry mid-probe.
    p.push(Segment::new(duration_ns * 2, MixSpec::idle().build()));
    p
}

/// Fast-forward support: expose [`PlanSource::advance`] as a free helper
/// so warm-up probes can start mid-plan without a custom source type.
#[allow(dead_code)]
fn _assert_plan_source_is_source(p: PlanSource) -> impl ActivitySource {
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::MicroArch;
    use aegis_sev::SevMode;
    use aegis_workloads::WebsiteCatalog;

    fn quick_cfg() -> WarmupConfig {
        WarmupConfig {
            probe_ns: 3_000_000, // 3 ms probes keep the test fast
            passes: 2,
            ..WarmupConfig::default()
        }
    }

    #[test]
    fn warmup_keeps_hardware_events_and_drops_software() {
        let mut host = Host::new(MicroArch::AmdEpyc7252, 4, 3);
        let vm = host.launch_vm(1, SevMode::SevSnp).unwrap();
        let app = WebsiteCatalog::new(7);
        let result = warmup_profile(&mut host, vm, 0, &app, &quick_cfg()).unwrap();

        assert_eq!(result.tested, 1903);
        // Fewer than 10% of events survive (paper: "we only get less
        // than 10% of the events").
        assert!(
            result.survival_fraction() < 0.15,
            "{}",
            result.survival_fraction()
        );
        assert!(!result.vulnerable.is_empty());

        for ks in &result.kind_survival {
            match ks.kind {
                EventKind::Software | EventKind::Other => {
                    assert_eq!(ks.remaining, 0, "{:?} should not survive", ks.kind)
                }
                EventKind::Hardware => {
                    assert!(
                        ks.remaining_pct() > 60.0,
                        "H survival {}",
                        ks.remaining_pct()
                    )
                }
                EventKind::Tracepoint => {
                    assert!(ks.remaining_pct() < 10.0, "T {}", ks.remaining_pct())
                }
                _ => {}
            }
        }
    }

    #[test]
    fn headline_attack_events_survive() {
        let mut host = Host::new(MicroArch::AmdEpyc7252, 4, 3);
        let vm = host.launch_vm(1, SevMode::SevSnp).unwrap();
        let app = WebsiteCatalog::new(7);
        let result = warmup_profile(&mut host, vm, 0, &app, &quick_cfg()).unwrap();
        let core = host.core_of(vm, 0).unwrap();
        let catalog = host.core(core).catalog();
        for ev in catalog.attack_events() {
            assert!(
                result.vulnerable.contains(&ev),
                "{} must survive warm-up",
                catalog.get(ev).unwrap().name
            );
        }
    }
}
