//! The profiling cost model of Section VIII-A.

use serde::{Deserialize, Serialize};

/// Parameters of the profiling cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// `C`: HPC registers usable concurrently (4 on both testbeds).
    pub concurrent_counters: usize,
    /// `t_w`: warm-up monitoring time per event, seconds (paper: 1 s).
    pub t_warmup_s: f64,
    /// `t_p`: ranking profiling time per measurement, seconds (paper: 1 s).
    pub t_profile_s: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            concurrent_counters: 4,
            t_warmup_s: 1.0,
            t_profile_s: 1.0,
        }
    }
}

impl CostModel {
    /// Warm-up time `T_W = (M × t_w × 2) / C` in hours: every one of the
    /// `M` events is monitored twice (app running vs idle).
    pub fn warmup_hours(&self, m_events: usize) -> f64 {
        (m_events as f64 * self.t_warmup_s * 2.0) / self.concurrent_counters as f64 / 3600.0
    }

    /// Ranking time `T_P = (N × S × reps × t_p) / C` in hours for `N`
    /// remaining events, `S` secrets and `reps` measurements per secret
    /// (paper: 100).
    pub fn ranking_hours(&self, n_events: usize, s_secrets: usize, reps: usize) -> f64 {
        (n_events as f64 * s_secrets as f64 * reps as f64 * self.t_profile_s)
            / self.concurrent_counters as f64
            / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_hours_match_paper_examples() {
        let m = CostModel::default();
        // Intel: 6166 events → 0.85 h; AMD: 1903 → 0.26 h.
        assert!((m.warmup_hours(6166) - 0.8564).abs() < 0.01);
        assert!((m.warmup_hours(1903) - 0.2643).abs() < 0.01);
    }

    #[test]
    fn ranking_hours_match_paper_examples() {
        let m = CostModel::default();
        // Verify the formula with the keystroke case: N=137, S=10,
        // 100 reps → 9.51 h, and its 10× scaling.
        assert!((m.ranking_hours(1370, 10, 100) - 95.1).abs() < 1.0);
        let ksa = m.ranking_hours(137, 10, 100);
        assert!((ksa - 9.51).abs() < 0.05, "{ksa}");
    }

    #[test]
    fn costs_scale_linearly() {
        let m = CostModel::default();
        assert!((m.warmup_hours(200) - 2.0 * m.warmup_hours(100)).abs() < 1e-12);
        assert!((m.ranking_hours(10, 10, 10) - 2.0 * m.ranking_hours(5, 10, 10)).abs() < 1e-12);
    }
}
