//! # aegis-profiler
//!
//! The Application Profiler (Module 1 of Aegis): identifies which HPC
//! events leak a protected application's secrets, and how badly.
//!
//! Profiling runs offline on a *template server* of the same processor
//! family as the target cloud host, where the customer has host
//! privileges. Two stages:
//!
//! 1. **Warm-up profiling** ([`warmup_profile`]) — compare every event's
//!    counts with the application running vs idle, in groups of `C = 4`
//!    to avoid counter multiplexing; fewer than 10% of events survive.
//! 2. **Event ranking** ([`rank_events`]) — measure each surviving event
//!    `m` times per secret, PCA-reduce each series to a scalar, fit
//!    per-secret Gaussians, and compute the mutual information of Eq. 1
//!    as the vulnerability score.
//!
//! The [`CostModel`] reproduces the paper's profiling-time accounting
//! (`T_W = M·t_w·2/C`, `T_P = N·S·100·t_p/C`).

mod cost;
mod ranking;
mod selection;
mod warmup;

pub use cost::CostModel;
pub use ranking::{gaussian_mixture_mi, rank_events, EventRanking, RankConfig};
pub use selection::select_monitoring_events;
pub use warmup::{warmup_profile, KindSurvival, WarmupConfig, WarmupResult};
