//! Event ranking by mutual information (Section V-B, Eq. 1).
//!
//! For each surviving event, the profiler measures the application `m`
//! times per secret, reduces every measured series to a scalar with PCA,
//! fits a per-secret univariate Gaussian `P(x|y)`, and computes the
//! mutual information
//!
//! ```text
//! I(Y; X) = H(Y) − ∫ P(x) H(Y | X = x) dx
//! ```
//!
//! as the vulnerability metric: more bits means a more dangerous event.

use aegis_attack::{Gaussian, Mat, Pca};
use aegis_microarch::{EventId, OriginFilter};
use aegis_sev::{Host, HostError, PlanSource, VmId};
use aegis_workloads::SecretApp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Ranking configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankConfig {
    /// Measurements per secret (`m`; the paper uses 100 and notes 10 is
    /// enough for a rough analysis).
    pub reps_per_secret: usize,
    /// Monitoring window per measurement.
    pub window_ns: u64,
    /// Sampling interval inside the window.
    pub interval_ns: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RankConfig {
    fn default() -> Self {
        RankConfig {
            reps_per_secret: 5,
            window_ns: 200_000_000,  // 200 ms windows keep runs tractable
            interval_ns: 10_000_000, // 20 slices per window
            seed: 7,
        }
    }
}

/// One ranked event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRanking {
    /// The event.
    pub event: EventId,
    /// Event name.
    pub name: String,
    /// Mutual information with the secret, in bits.
    pub mi_bits: f64,
}

/// Mutual information `I(Y; X)` in bits of a uniform secret `Y` against a
/// Gaussian mixture `P(x|y) = N(μ_y, σ_y²)` — the numerical integration
/// of Eq. 1.
pub fn gaussian_mixture_mi(models: &[Gaussian]) -> f64 {
    let k = models.len();
    if k < 2 {
        return 0.0;
    }
    let prior = 1.0 / k as f64;
    let h_y = (k as f64).log2();
    // Integration grid spanning all classes.
    let lo = models
        .iter()
        .map(|g| g.mu - 6.0 * g.sigma)
        .fold(f64::INFINITY, f64::min);
    let hi = models
        .iter()
        .map(|g| g.mu + 6.0 * g.sigma)
        .fold(f64::NEG_INFINITY, f64::max);
    if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
        return 0.0;
    }
    let steps = 2000;
    let dx = (hi - lo) / steps as f64;
    let mut expected_cond_entropy = 0.0;
    for i in 0..steps {
        let x = lo + (i as f64 + 0.5) * dx;
        let likes: Vec<f64> = models.iter().map(|g| g.pdf(x)).collect();
        let p_x: f64 = likes.iter().sum::<f64>() * prior;
        if p_x <= 0.0 {
            continue;
        }
        let mut h_cond = 0.0;
        for &l in &likes {
            let post = l * prior / p_x;
            if post > 0.0 {
                h_cond -= post * post.log2();
            }
        }
        expected_cond_entropy += p_x * h_cond * dx;
    }
    (h_y - expected_cond_entropy).clamp(0.0, h_y)
}

/// Measures and ranks `events` by their mutual information with the
/// application's secret. Returns rankings sorted descending by MI.
///
/// # Errors
///
/// Returns [`HostError`] for invalid vm/vcpu ids.
pub fn rank_events(
    host: &mut Host,
    vm: VmId,
    vcpu: usize,
    app: &dyn SecretApp,
    events: &[EventId],
    cfg: &RankConfig,
) -> Result<Vec<EventRanking>, HostError> {
    let core_idx = host.core_of(vm, vcpu)?;
    let catalog = host.core(core_idx).catalog();
    let slots = host.arch().counter_slots();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4a9c_0002);

    let n_secrets = app.n_secrets();
    let mut rankings = Vec::with_capacity(events.len());
    for group in events.chunks(slots) {
        // rows[event_in_group][secret][rep] = measured series
        let mut rows: Vec<Vec<Vec<Vec<f64>>>> =
            vec![vec![Vec::with_capacity(cfg.reps_per_secret); n_secrets]; group.len()];
        #[allow(clippy::needless_range_loop)] // `secret` also feeds sample_plan
        for secret in 0..n_secrets {
            for _ in 0..cfg.reps_per_secret {
                let plan = app.sample_plan(secret, &mut rng);
                host.attach_app(vm, vcpu, Box::new(PlanSource::new(plan)))?;
                let trace = host
                    .record_trace(
                        core_idx,
                        group,
                        OriginFilter::GuestOnly(vm.0),
                        cfg.interval_ns,
                        cfg.window_ns.min(app.window_ns()),
                    )
                    .expect("catalog events are valid");
                for (e, row) in trace.data.iter().enumerate() {
                    rows[e][secret].push(row.clone());
                }
            }
        }
        for (e, &event) in group.iter().enumerate() {
            let mi = event_mi(&rows[e]);
            rankings.push(EventRanking {
                event,
                name: catalog.get(event).expect("valid event").name.clone(),
                mi_bits: mi,
            });
        }
    }
    rankings.sort_by(|a, b| b.mi_bits.total_cmp(&a.mi_bits));
    Ok(rankings)
}

/// PCA-reduce the measured series of one event and compute the Gaussian
/// mixture MI over secrets.
fn event_mi(per_secret: &[Vec<Vec<f64>>]) -> f64 {
    let mut all = Mat::default();
    for series in per_secret.iter().flatten() {
        all.push_row(series);
    }
    if all.rows() < 2 || all.cols() == 0 {
        return 0.0;
    }
    let pca = Pca::fit(&all, 1);
    if pca.explained_variance()[0] <= 0.0 {
        return 0.0; // event is flat: no leakage at all
    }
    let models: Vec<Gaussian> = per_secret
        .iter()
        .map(|series| {
            let feats: Vec<f64> = series.iter().map(|s| pca.transform1(s)).collect();
            Gaussian::fit(&feats)
        })
        .collect();
    gaussian_mixture_mi(&models)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::{named, MicroArch};
    use aegis_sev::SevMode;
    use aegis_workloads::WebsiteCatalog;

    #[test]
    fn mi_of_separated_gaussians_saturates() {
        let models: Vec<Gaussian> = (0..4)
            .map(|i| Gaussian {
                mu: i as f64 * 100.0,
                sigma: 1.0,
            })
            .collect();
        let mi = gaussian_mixture_mi(&models);
        assert!((mi - 2.0).abs() < 0.01, "{mi}"); // log2(4) bits
    }

    #[test]
    fn mi_of_identical_gaussians_is_zero() {
        let models = vec![
            Gaussian {
                mu: 0.0,
                sigma: 1.0
            };
            8
        ];
        let mi = gaussian_mixture_mi(&models);
        assert!(mi < 0.01, "{mi}");
    }

    #[test]
    fn mi_of_overlapping_gaussians_is_partial() {
        let models = vec![
            Gaussian {
                mu: 0.0,
                sigma: 1.0,
            },
            Gaussian {
                mu: 1.5,
                sigma: 1.0,
            },
        ];
        let mi = gaussian_mixture_mi(&models);
        assert!(mi > 0.1 && mi < 0.9, "{mi}");
    }

    #[test]
    fn mi_of_single_class_is_zero() {
        assert_eq!(
            gaussian_mixture_mi(&[Gaussian {
                mu: 0.0,
                sigma: 1.0
            }]),
            0.0
        );
    }

    #[test]
    fn ranking_separates_informative_from_inert_events() {
        let mut host = Host::new(MicroArch::AmdEpyc7252, 2, 3);
        let vm = host.launch_vm(1, SevMode::SevSnp).unwrap();
        let app = WebsiteCatalog::new(7);
        let core = host.core_of(vm, 0).unwrap();
        let catalog = host.core(core).catalog();
        let uops = catalog.lookup(named::RETIRED_UOPS).unwrap();
        // An "Other" event never reflects guest activity.
        let inert = catalog
            .events()
            .iter()
            .find(|e| e.kind == aegis_microarch::EventKind::Other)
            .unwrap()
            .id;
        let cfg = RankConfig {
            reps_per_secret: 4,
            window_ns: 100_000_000,
            interval_ns: 10_000_000,
            seed: 7,
        };
        // Use a reduced secret set by wrapping in a tiny app? Keep all 45
        // secrets but few reps: 45 × 4 × 2 events / 4-slot group = fast.
        let rankings = rank_events(&mut host, vm, 0, &app, &[uops, inert], &cfg).unwrap();
        assert_eq!(rankings.len(), 2);
        assert_eq!(rankings[0].event, uops, "uops must rank first");
        assert!(rankings[0].mi_bits > 1.0, "uops MI {}", rankings[0].mi_bits);
        assert!(
            rankings[1].mi_bits < 0.2,
            "inert MI {}",
            rankings[1].mi_bits
        );
    }
}
