//! A keyed on-disk artifact cache for expensive seeded computations.
//!
//! Cleanup fuzzing and clean-trace dataset collection are pure functions
//! of `(configuration, seed)` — the whole point of the determinism
//! contract — which makes their outputs safely memoizable. Bulk numeric
//! artifacts (datasets, models, traces, checkpoints) live in the
//! columnar `.acs` binary format (see [`crate::store::columnar`]) named
//! `<kind>-<key>.acs`; small metadata records (plans, ledgers, reports)
//! stay as JSON files named `<kind>-<key>.json`. Both ride the
//! generation/ref-count [`Manifest`] journal, which gives the cache an
//! explicit [`ArtifactCache::gc`] entry point and fails closed when
//! corrupt.

use crate::store::columnar::{decode_frame, encode_frame, Columnar};
use crate::store::manifest::{GcReport, Manifest};
use crate::store::ArtifactKey;
use aegis_faults::{self as faults, FaultPlan, FaultStream};
use aegis_obs as obs;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Fingerprints any serializable configuration as a cache key: FNV-1a
/// over its compact JSON encoding. Stable across processes (no
/// `DefaultHasher` randomization) and sensitive to every field.
pub fn fingerprint<T: Serialize>(value: &T) -> u64 {
    let json = serde_json::to_string(value).expect("serialization is infallible here");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in json.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A directory of memoized artifacts: columnar `.acs` files for bulk
/// numeric data, JSON for small metadata, journaled by a [`Manifest`].
#[derive(Clone, Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
    enabled: bool,
    faults: FaultPlan,
    manifest: Manifest,
}

impl ArtifactCache {
    /// A cache rooted at `dir` (created lazily on first `put`), under the
    /// ambient [`FaultPlan`].
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_faults(dir, faults::plan())
    }

    /// A cache rooted at `dir` with an explicit fault plan.
    pub fn with_faults(dir: impl Into<PathBuf>, plan: FaultPlan) -> Self {
        let dir = dir.into();
        ArtifactCache {
            manifest: Manifest::new(&dir),
            dir,
            enabled: std::env::var_os("AEGIS_NO_CACHE").is_none(),
            faults: plan,
        }
    }

    /// The conventional workspace cache location: `AEGIS_CACHE_DIR` when
    /// set, else `<workspace root>/results/cache` regardless of cwd (see
    /// [`crate::store::default_cache_dir`]).
    pub fn default_location() -> Self {
        ArtifactCache::new(crate::store::default_cache_dir())
    }

    /// A cache that never hits and never writes (for `--no-cache`).
    pub fn disabled() -> Self {
        ArtifactCache {
            dir: PathBuf::new(),
            enabled: false,
            faults: FaultPlan::none(),
            manifest: Manifest::new(PathBuf::new()),
        }
    }

    /// The directory this cache stores artifacts in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest journaling this cache's artifacts.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The fault plan captured at construction. Consumers that persist
    /// through this cache (sweep checkpoints, fuzzer checkpoints) key
    /// their own crash-safety harness off the same plan, so one
    /// `with_faults` call arms the whole pipeline consistently.
    pub fn fault_plan(&self) -> FaultPlan {
        self.faults
    }

    /// The file that would hold artifact `kind` under `key` (legacy JSON
    /// naming; columnar artifacts use [`ArtifactCache::col_path`]).
    pub fn path_for(&self, kind: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{kind}-{key:016x}.json"))
    }

    /// The file that would hold the columnar artifact at `key`.
    pub fn col_path(&self, key: &ArtifactKey) -> PathBuf {
        self.dir.join(format!("{}-{:016x}.acs", key.kind, key.key))
    }

    /// Whether this cache can serve hits (enabled and journal healthy —
    /// a corrupt manifest fails closed: everything misses, callers
    /// recompute, never stale bytes).
    fn servable(&self) -> bool {
        self.enabled && !self.manifest.is_poisoned()
    }

    /// Loads a cached artifact, or `None` on miss (absent, unreadable,
    /// or no longer parseable — a stale-format file is just a miss,
    /// surfaced to observability as a `cache.corrupt` event rather than
    /// an error).
    pub fn get<T: Deserialize>(&self, kind: &str, key: u64) -> Option<T> {
        if !self.servable() {
            return None;
        }
        let path = self.path_for(kind, key);
        let Ok(text) = std::fs::read_to_string(&path) else {
            self.note("cache.miss", kind, key, &path);
            return None;
        };
        match serde_json::from_str(&text) {
            Ok(value) => {
                self.note("cache.hit", kind, key, &path);
                Some(value)
            }
            Err(_) => {
                self.note("cache.corrupt", kind, key, &path);
                None
            }
        }
    }

    /// Counts a cache outcome and, at the `full` level, logs it with
    /// enough context to find the artifact on disk.
    fn note(&self, outcome: &str, kind: &str, key: u64, path: &Path) {
        if !obs::enabled() {
            return;
        }
        obs::counter_add(outcome, 1.0);
        obs::event(
            outcome,
            &[
                ("cache_kind", kind),
                ("key", &format!("{key:016x}")),
                ("path", &path.display().to_string()),
            ],
        );
    }

    /// Stores an artifact, creating the cache directory if needed. The
    /// write is atomic (temp file + rename) so a crashed run can never
    /// leave a half-written artifact that later reads as a hit.
    pub fn put<T: Serialize>(&self, kind: &str, key: u64, value: &T) -> io::Result<PathBuf> {
        if !self.enabled {
            return Ok(PathBuf::new());
        }
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path_for(kind, key);
        let tmp = self.dir.join(format!(
            ".{kind}-{key:016x}.{}.tmp",
            std::process::id()
        ));
        let json = serde_json::to_string_pretty(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if self.faults.cache_torn > 0.0 {
            // Simulated legacy writer crashing mid-write: half the bytes
            // land at the *final* path, bypassing the tmp+rename
            // discipline. The torn artifact must later read as a
            // `cache.corrupt` miss, never as a hit. Keyed per artifact so
            // the outcome is identical at any worker count.
            let mut s = FaultStream::new(&self.faults, faults::site::CACHE, key);
            if s.chance(self.faults.cache_torn) {
                std::fs::write(&path, &json.as_bytes()[..json.len() / 2])?;
                faults::report("cache", "torn_write", &[("key", key)]);
                return Ok(path);
            }
        }
        std::fs::write(&tmp, &json)?;
        std::fs::rename(&tmp, &path)?;
        self.record(kind, key, &path, json.len() as u64);
        obs::counter_add("cache.store", 1.0);
        Ok(path)
    }

    /// Journals a landed artifact. Journal failures are non-fatal: the
    /// artifact still serves, it just looks like an orphan to `gc`.
    fn record(&self, kind: &str, key: u64, path: &Path, bytes: u64) {
        if let Some(file) = path.file_name().and_then(|f| f.to_str()) {
            let _ = self.manifest.record_put(kind, key, file, bytes);
        }
    }

    /// [`ArtifactCache::get`] addressed by [`ArtifactKey`] (for JSON
    /// metadata records riding the content-addressed key scheme).
    pub fn get_json<T: Deserialize>(&self, key: &ArtifactKey) -> Option<T> {
        self.get(key.kind, key.key)
    }

    /// [`ArtifactCache::put`] addressed by [`ArtifactKey`].
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] when the artifact cannot be written.
    pub fn put_json<T: Serialize>(&self, key: &ArtifactKey, value: &T) -> io::Result<PathBuf> {
        self.put(key.kind, key.key, value)
    }

    /// Loads a columnar artifact, or `None` on miss. Like
    /// [`ArtifactCache::get`], every failure mode — absent file, torn
    /// page (inside a column or truncating the file), schema drift,
    /// poisoned manifest — is a miss the recompute path heals, never an
    /// error and never stale data.
    pub fn get_col<T: Columnar>(&self, key: &ArtifactKey) -> Option<T> {
        if !self.servable() {
            return None;
        }
        let path = self.col_path(key);
        let Ok(bytes) = std::fs::read(&path) else {
            self.note("cache.miss", key.kind, key.key, &path);
            return None;
        };
        match decode_frame(&T::schema(), &bytes).and_then(T::from_frame) {
            Ok(value) => {
                self.note("cache.hit", key.kind, key.key, &path);
                Some(value)
            }
            Err(_) => {
                self.note("cache.corrupt", key.kind, key.key, &path);
                None
            }
        }
    }

    /// Loads a columnar artifact, transparently migrating a legacy JSON
    /// entry of the same kind/key if one exists: the JSON is parsed once,
    /// rewritten in the columnar format, and deleted. A legacy entry that
    /// no longer parses is a miss (recompute), never misread.
    pub fn get_col_or_json<T: Columnar + Deserialize>(&self, key: &ArtifactKey) -> Option<T> {
        if let Some(hit) = self.get_col(key) {
            return Some(hit);
        }
        if !self.servable() {
            return None;
        }
        let legacy = self.path_for(key.kind, key.key);
        let text = std::fs::read_to_string(&legacy).ok()?;
        let value: T = serde_json::from_str(&text).ok()?;
        if self.put_col(key, &value).is_ok() {
            let _ = std::fs::remove_file(&legacy);
        }
        self.note("cache.migrate", key.kind, key.key, &legacy);
        Some(value)
    }

    /// Stores a columnar artifact atomically (temp + rename) and journals
    /// it. Under an active fault plan the torn-write site can instead
    /// land half the encoded bytes at the final path — the cut falls
    /// inside a column page, whose checksum makes the next `get_col` a
    /// `cache.corrupt` miss (and `gc` removes the unjournaled file as an
    /// orphan).
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] when the artifact cannot be written.
    pub fn put_col<T: Columnar>(&self, key: &ArtifactKey, value: &T) -> io::Result<PathBuf> {
        if !self.enabled {
            return Ok(PathBuf::new());
        }
        std::fs::create_dir_all(&self.dir)?;
        let path = self.col_path(key);
        let bytes = encode_frame(&T::schema(), &value.to_frame());
        if self.faults.cache_torn > 0.0 {
            let mut s = FaultStream::new(&self.faults, faults::site::CACHE, key.key);
            if s.chance(self.faults.cache_torn) {
                std::fs::write(&path, &bytes[..bytes.len() / 2])?;
                faults::report("cache", "torn_write", &[("key", key.key)]);
                return Ok(path);
            }
        }
        let tmp = self.dir.join(format!(
            ".{}-{:016x}.{}.tmp",
            key.kind,
            key.key,
            std::process::id()
        ));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)?;
        self.record(key.kind, key.key, &path, bytes.len() as u64);
        obs::counter_add("cache.store", 1.0);
        Ok(path)
    }

    /// Pins an artifact: `gc` will not evict it while the pin is held.
    pub fn pin(&self, key: &ArtifactKey) {
        if self.enabled {
            let _ = self.manifest.pin(key.kind, key.key);
        }
    }

    /// Releases a pin taken by [`ArtifactCache::pin`].
    pub fn unpin(&self, key: &ArtifactKey) {
        if self.enabled {
            let _ = self.manifest.unpin(key.kind, key.key);
        }
    }

    /// Collects garbage: evicts unpinned artifacts oldest-first until the
    /// journaled live set fits `budget_bytes`, removes unjournaled files,
    /// compacts the journal, and — when the journal was poisoned — wipes
    /// everything and starts it fresh. See [`Manifest::gc`].
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] when files or the journal cannot be
    /// rewritten.
    pub fn gc(&self, budget_bytes: u64) -> io::Result<GcReport> {
        if !self.enabled {
            return Ok(GcReport::default());
        }
        let report = self.manifest.gc(budget_bytes)?;
        if obs::enabled() {
            obs::counter_add("cache.gc.evicted", report.evicted as f64);
            obs::counter_add("cache.gc.orphans", report.orphans_removed as f64);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aegis-par-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_then_get_roundtrips() {
        let cache = ArtifactCache::new(temp_dir("roundtrip"));
        let value = vec![(1u64, 0.5f64), (2, 0.25)];
        assert!(cache.get::<Vec<(u64, f64)>>("demo", 7).is_none());
        cache.put("demo", 7, &value).unwrap();
        assert_eq!(cache.get::<Vec<(u64, f64)>>("demo", 7), Some(value));
        // A different key or kind still misses.
        assert!(cache.get::<Vec<(u64, f64)>>("demo", 8).is_none());
        assert!(cache.get::<Vec<(u64, f64)>>("other", 7).is_none());
    }

    #[test]
    fn corrupt_artifacts_read_as_misses() {
        let cache = ArtifactCache::new(temp_dir("corrupt"));
        cache.put("demo", 1, &vec![1u64]).unwrap();
        std::fs::write(cache.path_for("demo", 1), "{not json").unwrap();
        assert!(cache.get::<Vec<u64>>("demo", 1).is_none());
    }

    #[test]
    fn torn_put_reads_as_miss_and_recompute_heals() {
        let plan = FaultPlan {
            seed: 11,
            cache_torn: 1.0,
            ..FaultPlan::none()
        };
        let dir = temp_dir("torn");
        let cache = ArtifactCache::with_faults(dir.clone(), plan);
        let value = vec![1u64, 2, 3];
        let path = cache.put("demo", 5, &value).unwrap();
        assert!(path.exists(), "torn write still lands at the final path");
        assert!(
            cache.get::<Vec<u64>>("demo", 5).is_none(),
            "a torn artifact must never read as a hit"
        );
        // The recompute-and-store path (now fault-free) heals the entry.
        let healed = ArtifactCache::with_faults(dir, FaultPlan::none());
        healed.put("demo", 5, &value).unwrap();
        assert_eq!(healed.get::<Vec<u64>>("demo", 5), Some(value));
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let a = fingerprint(&(42u64, "laplace", 0.5f64));
        assert_eq!(a, fingerprint(&(42u64, "laplace", 0.5f64)));
        assert_ne!(a, fingerprint(&(43u64, "laplace", 0.5f64)));
        assert_ne!(a, fingerprint(&(42u64, "laplace", 0.6f64)));
    }

    #[test]
    fn disabled_cache_never_hits() {
        let cache = ArtifactCache::disabled();
        cache.put("demo", 1, &vec![1u64]).unwrap();
        assert!(cache.get::<Vec<u64>>("demo", 1).is_none());
        let key = ArtifactKey::raw("demo", 1);
        cache.put_col(&key, &Blob { data: vec![1.0] }).unwrap();
        assert!(cache.get_col::<Blob>(&key).is_none());
    }

    use crate::store::columnar::{ColumnFrame, ColumnSchema, FrameReader};
    use serde::Value;

    /// Minimal payload with both a columnar and a JSON encoding, for
    /// exercising the cache paths without pulling in real datasets.
    #[derive(Debug, Clone, PartialEq)]
    struct Blob {
        data: Vec<f64>,
    }

    impl Columnar for Blob {
        fn schema() -> ColumnSchema {
            ColumnSchema::new("par/test-blob", 1)
        }
        fn encode_columns(&self, frame: &mut ColumnFrame) {
            frame.push_f64(self.data.clone());
        }
        fn decode_columns(reader: &mut FrameReader) -> Result<Self, crate::store::FrameError> {
            Ok(Blob {
                data: reader.f64s()?,
            })
        }
    }

    impl Serialize for Blob {
        fn to_value(&self) -> Value {
            let mut map = serde::Map::new();
            map.insert("data".to_string(), self.data.to_value());
            Value::Object(map)
        }
    }

    impl Deserialize for Blob {
        fn from_value(v: &Value) -> Result<Self, serde::Error> {
            let data = v
                .get("data")
                .ok_or_else(|| serde::Error::custom("missing data"))?;
            Ok(Blob {
                data: Deserialize::from_value(data)?,
            })
        }
    }

    #[test]
    fn columnar_put_get_roundtrips_and_journals() {
        let cache = ArtifactCache::new(temp_dir("col-roundtrip"));
        let key = ArtifactKey::raw("blob", 9);
        let value = Blob {
            data: vec![1.5, -0.25, f64::NAN],
        };
        assert!(cache.get_col::<Blob>(&key).is_none());
        cache.put_col(&key, &value).unwrap();
        let back = cache.get_col::<Blob>(&key).unwrap();
        assert_eq!(
            back.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            value.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        let entry = cache.manifest().entry("blob", 9).unwrap();
        assert!(entry.bytes > 0, "put journaled with its size");
    }

    #[test]
    fn torn_columnar_put_reads_as_miss_and_recompute_heals() {
        let plan = FaultPlan {
            seed: 11,
            cache_torn: 1.0,
            ..FaultPlan::none()
        };
        let dir = temp_dir("col-torn");
        let cache = ArtifactCache::with_faults(dir.clone(), plan);
        let key = ArtifactKey::raw("blob", 5);
        let value = Blob {
            data: vec![0.5; 64],
        };
        let path = cache.put_col(&key, &value).unwrap();
        assert!(path.exists(), "torn write lands at the final path");
        assert!(
            cache.get_col::<Blob>(&key).is_none(),
            "a torn columnar artifact must never read as a hit"
        );
        assert!(
            cache.manifest().entry("blob", 5).is_none(),
            "a torn write never reaches the journal"
        );
        let healed = ArtifactCache::with_faults(dir, FaultPlan::none());
        healed.put_col(&key, &value).unwrap();
        assert_eq!(healed.get_col::<Blob>(&key), Some(value));
    }

    #[test]
    fn legacy_json_entries_migrate_to_columnar() {
        let cache = ArtifactCache::new(temp_dir("col-migrate"));
        let key = ArtifactKey::raw("blob", 3);
        let value = Blob {
            data: vec![1.0, 2.0, 3.0],
        };
        // A pre-store cache entry: JSON at the legacy path.
        std::fs::create_dir_all(cache.dir()).unwrap();
        std::fs::write(
            cache.path_for("blob", 3),
            serde_json::to_string(&value).unwrap(),
        )
        .unwrap();

        assert_eq!(cache.get_col_or_json::<Blob>(&key), Some(value.clone()));
        assert!(
            !cache.path_for("blob", 3).exists(),
            "legacy file consumed by migration"
        );
        assert!(
            cache.col_path(&key).exists(),
            "columnar replacement written"
        );
        assert_eq!(cache.get_col::<Blob>(&key), Some(value));

        // A legacy entry that no longer parses is a miss, never misread.
        std::fs::write(cache.path_for("blob", 4), "{not json").unwrap();
        assert!(cache
            .get_col_or_json::<Blob>(&ArtifactKey::raw("blob", 4))
            .is_none());
    }

    #[test]
    fn poisoned_manifest_fails_closed_for_both_formats() {
        let dir = temp_dir("col-poison");
        let cache = ArtifactCache::new(dir.clone());
        let key = ArtifactKey::raw("blob", 7);
        cache.put_col(&key, &Blob { data: vec![1.0] }).unwrap();
        cache.put("meta", 7, &vec![1u64]).unwrap();
        std::fs::write(cache.manifest().path(), "garbage\n").unwrap();

        let fresh = ArtifactCache::new(dir);
        assert!(fresh.get_col::<Blob>(&key).is_none());
        assert!(fresh.get_col_or_json::<Blob>(&key).is_none());
        assert!(fresh.get::<Vec<u64>>("meta", 7).is_none());
        // gc repairs by wiping; afterwards the cache serves fresh puts.
        let report = fresh.gc(u64::MAX).unwrap();
        assert!(report.reset);
        fresh.put_col(&key, &Blob { data: vec![2.0] }).unwrap();
        assert_eq!(fresh.get_col::<Blob>(&key), Some(Blob { data: vec![2.0] }));
    }
}
