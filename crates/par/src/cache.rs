//! A keyed on-disk artifact cache for expensive seeded computations.
//!
//! Cleanup fuzzing and clean-trace dataset collection are pure functions
//! of `(configuration, seed)` — the whole point of the determinism
//! contract — which makes their outputs safely memoizable. Artifacts are
//! JSON files under a cache directory (`results/cache/` by convention),
//! named `<kind>-<key>.json` where the key is a fingerprint of the
//! producing configuration.

use aegis_faults::{self as faults, FaultPlan, FaultStream};
use aegis_obs as obs;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Fingerprints any serializable configuration as a cache key: FNV-1a
/// over its compact JSON encoding. Stable across processes (no
/// `DefaultHasher` randomization) and sensitive to every field.
pub fn fingerprint<T: Serialize>(value: &T) -> u64 {
    let json = serde_json::to_string(value).expect("serialization is infallible here");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in json.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A directory of memoized JSON artifacts.
#[derive(Clone, Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
    enabled: bool,
    faults: FaultPlan,
}

impl ArtifactCache {
    /// A cache rooted at `dir` (created lazily on first `put`), under the
    /// ambient [`FaultPlan`].
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_faults(dir, faults::plan())
    }

    /// A cache rooted at `dir` with an explicit fault plan.
    pub fn with_faults(dir: impl Into<PathBuf>, plan: FaultPlan) -> Self {
        ArtifactCache {
            dir: dir.into(),
            enabled: std::env::var_os("AEGIS_NO_CACHE").is_none(),
            faults: plan,
        }
    }

    /// The conventional workspace cache location, `results/cache/`.
    pub fn default_location() -> Self {
        ArtifactCache::new(Path::new("results").join("cache"))
    }

    /// A cache that never hits and never writes (for `--no-cache`).
    pub fn disabled() -> Self {
        ArtifactCache {
            dir: PathBuf::new(),
            enabled: false,
            faults: FaultPlan::none(),
        }
    }

    /// The file that would hold artifact `kind` under `key`.
    pub fn path_for(&self, kind: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{kind}-{key:016x}.json"))
    }

    /// Loads a cached artifact, or `None` on miss (absent, unreadable,
    /// or no longer parseable — a stale-format file is just a miss,
    /// surfaced to observability as a `cache.corrupt` event rather than
    /// an error).
    pub fn get<T: Deserialize>(&self, kind: &str, key: u64) -> Option<T> {
        if !self.enabled {
            return None;
        }
        let path = self.path_for(kind, key);
        let Ok(text) = std::fs::read_to_string(&path) else {
            self.note("cache.miss", kind, key, &path);
            return None;
        };
        match serde_json::from_str(&text) {
            Ok(value) => {
                self.note("cache.hit", kind, key, &path);
                Some(value)
            }
            Err(_) => {
                self.note("cache.corrupt", kind, key, &path);
                None
            }
        }
    }

    /// Counts a cache outcome and, at the `full` level, logs it with
    /// enough context to find the artifact on disk.
    fn note(&self, outcome: &str, kind: &str, key: u64, path: &Path) {
        if !obs::enabled() {
            return;
        }
        obs::counter_add(outcome, 1.0);
        obs::event(
            outcome,
            &[
                ("cache_kind", kind),
                ("key", &format!("{key:016x}")),
                ("path", &path.display().to_string()),
            ],
        );
    }

    /// Stores an artifact, creating the cache directory if needed. The
    /// write is atomic (temp file + rename) so a crashed run can never
    /// leave a half-written artifact that later reads as a hit.
    pub fn put<T: Serialize>(&self, kind: &str, key: u64, value: &T) -> io::Result<PathBuf> {
        if !self.enabled {
            return Ok(PathBuf::new());
        }
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path_for(kind, key);
        let tmp = self.dir.join(format!(
            ".{kind}-{key:016x}.{}.tmp",
            std::process::id()
        ));
        let json = serde_json::to_string_pretty(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if self.faults.cache_torn > 0.0 {
            // Simulated legacy writer crashing mid-write: half the bytes
            // land at the *final* path, bypassing the tmp+rename
            // discipline. The torn artifact must later read as a
            // `cache.corrupt` miss, never as a hit. Keyed per artifact so
            // the outcome is identical at any worker count.
            let mut s = FaultStream::new(&self.faults, faults::site::CACHE, key);
            if s.chance(self.faults.cache_torn) {
                std::fs::write(&path, &json.as_bytes()[..json.len() / 2])?;
                faults::report("cache", "torn_write", &[("key", key)]);
                return Ok(path);
            }
        }
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, &path)?;
        obs::counter_add("cache.store", 1.0);
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aegis-par-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_then_get_roundtrips() {
        let cache = ArtifactCache::new(temp_dir("roundtrip"));
        let value = vec![(1u64, 0.5f64), (2, 0.25)];
        assert!(cache.get::<Vec<(u64, f64)>>("demo", 7).is_none());
        cache.put("demo", 7, &value).unwrap();
        assert_eq!(cache.get::<Vec<(u64, f64)>>("demo", 7), Some(value));
        // A different key or kind still misses.
        assert!(cache.get::<Vec<(u64, f64)>>("demo", 8).is_none());
        assert!(cache.get::<Vec<(u64, f64)>>("other", 7).is_none());
    }

    #[test]
    fn corrupt_artifacts_read_as_misses() {
        let cache = ArtifactCache::new(temp_dir("corrupt"));
        cache.put("demo", 1, &vec![1u64]).unwrap();
        std::fs::write(cache.path_for("demo", 1), "{not json").unwrap();
        assert!(cache.get::<Vec<u64>>("demo", 1).is_none());
    }

    #[test]
    fn torn_put_reads_as_miss_and_recompute_heals() {
        let plan = FaultPlan {
            seed: 11,
            cache_torn: 1.0,
            ..FaultPlan::none()
        };
        let dir = temp_dir("torn");
        let cache = ArtifactCache::with_faults(dir.clone(), plan);
        let value = vec![1u64, 2, 3];
        let path = cache.put("demo", 5, &value).unwrap();
        assert!(path.exists(), "torn write still lands at the final path");
        assert!(
            cache.get::<Vec<u64>>("demo", 5).is_none(),
            "a torn artifact must never read as a hit"
        );
        // The recompute-and-store path (now fault-free) heals the entry.
        let healed = ArtifactCache::with_faults(dir, FaultPlan::none());
        healed.put("demo", 5, &value).unwrap();
        assert_eq!(healed.get::<Vec<u64>>("demo", 5), Some(value));
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let a = fingerprint(&(42u64, "laplace", 0.5f64));
        assert_eq!(a, fingerprint(&(42u64, "laplace", 0.5f64)));
        assert_ne!(a, fingerprint(&(43u64, "laplace", 0.5f64)));
        assert_ne!(a, fingerprint(&(42u64, "laplace", 0.6f64)));
    }

    #[test]
    fn disabled_cache_never_hits() {
        let cache = ArtifactCache::disabled();
        cache.put("demo", 1, &vec![1u64]).unwrap();
        assert!(cache.get::<Vec<u64>>("demo", 1).is_none());
    }
}
