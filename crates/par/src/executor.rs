//! A scoped worker pool with deterministic, index-ordered results.

use aegis_obs as obs;
use crossbeam::channel;
use serde_json::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Process-wide worker count: 0 means "not configured yet".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Hardware parallelism of this machine (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets the process-wide worker count used by [`Executor::from_config`].
/// `0` resets to "unconfigured" (env / hardware default).
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::SeqCst);
}

/// Resolves the process-wide worker count: an explicit [`set_threads`]
/// wins, then the `AEGIS_THREADS` environment variable, then the
/// machine's available parallelism.
pub fn get_threads() -> usize {
    let configured = THREADS.load(Ordering::SeqCst);
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("AEGIS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available_threads()
}

/// A fixed-width worker pool. Threads are scoped per call (no detached
/// pool to shut down) and results always come back in input order, so a
/// computation's output is a pure function of its inputs and seeds — not
/// of the worker count or the OS scheduler.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// A pool of exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// A pool sized by the process-wide configuration ([`get_threads`]).
    pub fn from_config() -> Self {
        Executor::new(get_threads())
    }

    /// This pool's worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `items` through `work`, returning results in input order.
    ///
    /// `work` receives the unit's input index and the item; any RNG it
    /// needs must be derived from that index (see
    /// [`derive_seed`](crate::derive_seed)), never taken from shared
    /// mutable state.
    pub fn map<T, R, F>(&self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.map_with(items, |_worker| (), move |(), index, item| work(index, item))
    }

    /// Like [`Executor::map`] but with a worker-local context built once
    /// per worker thread — the home for expensive replicas (a forked
    /// `Host`, a cloned `Core`) that units reset rather than rebuild.
    ///
    /// Determinism contract: `make_ctx` must produce equivalent contexts
    /// for every worker, and `work` must not let one unit's leftover
    /// context state influence the next unit's result (reset it, or
    /// derive all randomness from `index`).
    pub fn map_with<C, T, R, FC, F>(&self, items: Vec<T>, make_ctx: FC, work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        FC: Fn(usize) -> C + Sync,
        F: Fn(&mut C, usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n.max(1));
        let observe = obs::enabled();
        if observe {
            obs::gauge_set("par.workers", workers as f64);
        }

        if workers <= 1 {
            // Sequential fast path: same code shape, no thread overhead.
            let mut ctx = make_ctx(0);
            let out: Vec<R> = items
                .into_iter()
                .enumerate()
                .map(|(i, item)| work(&mut ctx, i, item))
                .collect();
            if observe && n > 0 {
                record_worker_stats(0, n as u64, 0);
            }
            return out;
        }

        let (work_tx, work_rx) = channel::unbounded::<(usize, T)>();
        let (done_tx, done_rx) = channel::unbounded::<(usize, R)>();
        for pair in items.into_iter().enumerate() {
            work_tx
                .send(pair)
                .ok()
                .expect("receiver alive until scope ends");
        }
        drop(work_tx);

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                let make_ctx = &make_ctx;
                let work = &work;
                scope.spawn(move || {
                    let mut ctx = make_ctx(worker);
                    let mut units = 0u64;
                    let mut idle_ns = 0u128;
                    loop {
                        let wait = Instant::now();
                        let Ok((index, item)) = work_rx.recv() else {
                            break;
                        };
                        idle_ns += wait.elapsed().as_nanos();
                        let result = work(&mut ctx, index, item);
                        units += 1;
                        done_tx
                            .send((index, result))
                            .ok()
                            .expect("collector alive until scope ends");
                    }
                    if observe {
                        record_worker_stats(worker, units, idle_ns as u64);
                    }
                });
            }
            drop(done_tx);
            drop(work_rx);
            // The spawning thread doubles as the collector.
            for (index, result) in done_rx.iter() {
                slots[index] = Some(result);
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every unit produced a result"))
            .collect()
    }
}

/// Records one worker's per-`map` utilization: how many units it
/// processed and how long it sat blocked on the work queue. Write-only —
/// scheduling never reads these back, so the determinism contract holds
/// with observability at any level.
fn record_worker_stats(worker: usize, units: u64, idle_ns: u64) {
    let registry = obs::global();
    registry.counter_add("par.units", units as f64);
    registry.histogram_record("par.worker.units", units as f64);
    registry.histogram_record("par.worker.idle_ns", idle_ns as f64);
    obs::event_with(
        "worker",
        "par.worker",
        &[
            ("worker", Value::from(worker)),
            ("units", Value::from(units)),
            ("idle_ns", Value::from(idle_ns)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive_seed;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn results_come_back_in_input_order() {
        let ex = Executor::new(4);
        let out = ex.map((0..100u64).collect(), |i, x| {
            // Stagger finish times so completion order scrambles.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * 2
        });
        assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_seeded_results() {
        let run = |threads: usize| -> Vec<u64> {
            Executor::new(threads).map((0..64u64).collect(), |i, unit| {
                let mut rng = StdRng::seed_from_u64(derive_seed(99, 5, i as u64));
                (0..16).map(|_| rng.gen_range(0..1000u64)).sum::<u64>() ^ unit
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn map_with_builds_one_context_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let built = AtomicUsize::new(0);
        let ex = Executor::new(3);
        let out = ex.map_with(
            (0..32u64).collect(),
            |worker| {
                built.fetch_add(1, Ordering::SeqCst);
                worker
            },
            |_ctx, i, x| x + i as u64,
        );
        assert_eq!(out.len(), 32);
        assert!(built.load(Ordering::SeqCst) <= 3);
        assert_eq!(out[4], 8);
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let ex = Executor::new(8);
        let empty: Vec<u32> = ex.map(Vec::<u32>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(ex.map(vec![5u32], |_, x| x * 3), vec![15]);
    }

    #[test]
    fn thread_config_precedence() {
        set_threads(3);
        assert_eq!(get_threads(), 3);
        set_threads(0);
        // Unset: falls back to env or hardware; either way ≥ 1.
        assert!(get_threads() >= 1);
    }
}
