//! The store manifest: an append-only journal of artifact lifecycle
//! operations (`manifest.jsonl` in the cache directory).
//!
//! Every `put` appends one JSON line; the line's position in the journal
//! is the artifact's **generation** (a monotone logical clock), so "the
//! oldest artifact" is well defined without trusting file mtimes, which
//! are not deterministic. `pin`/`unpin` lines maintain a reference
//! count; [`Manifest::gc`] evicts unpinned entries oldest-generation
//! first until the live set fits a size budget, deletes any file in the
//! directory the journal does not account for, and compacts the journal
//! atomically (tmp + rename).
//!
//! The journal **fails closed**: if any line fails to parse, the whole
//! manifest is poisoned — every lookup through it misses and the callers
//! recompute, because a journal we cannot trust might be hiding an
//! eviction or a superseded generation, and serving stale bytes is the
//! one failure the store must never have. A poisoned journal is repaired
//! only by `gc`, which wipes every artifact and restarts the journal
//! from scratch (matching the fail-closed supervision discipline used
//! across the workspace).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Journal file name inside the cache directory.
pub const MANIFEST_FILE: &str = "manifest.jsonl";

/// One journal line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum Op {
    /// An artifact landed on disk under `file` (relative to the cache
    /// directory), `bytes` long.
    Put {
        kind: String,
        key: u64,
        file: String,
        bytes: u64,
    },
    /// The artifact gained a reference (never evictable while held).
    Pin { kind: String, key: u64 },
    /// The artifact dropped a reference.
    Unpin { kind: String, key: u64 },
    /// The artifact was evicted by `gc`.
    Evict { kind: String, key: u64 },
}

/// A live manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Artifact file name, relative to the cache directory.
    pub file: String,
    /// Size recorded at put time.
    pub bytes: u64,
    /// Journal position of the most recent put (monotone age).
    pub generation: u64,
    /// Outstanding pins; `gc` never evicts while nonzero.
    pub pins: u64,
}

#[derive(Debug, Default)]
struct State {
    /// Live entries keyed by `(kind, key)`.
    entries: BTreeMap<(String, u64), Entry>,
    /// Next generation number (= journal line count).
    next_gen: u64,
    /// Set when any journal line failed to parse.
    poisoned: bool,
}

impl State {
    fn apply(&mut self, op: Op) {
        let gen = self.next_gen;
        self.next_gen += 1;
        match op {
            Op::Put {
                kind,
                key,
                file,
                bytes,
            } => {
                let slot = self.entries.entry((kind, key)).or_insert(Entry {
                    file: String::new(),
                    bytes: 0,
                    generation: gen,
                    pins: 0,
                });
                slot.file = file;
                slot.bytes = bytes;
                slot.generation = gen;
            }
            Op::Pin { kind, key } => {
                if let Some(e) = self.entries.get_mut(&(kind, key)) {
                    e.pins += 1;
                }
            }
            Op::Unpin { kind, key } => {
                if let Some(e) = self.entries.get_mut(&(kind, key)) {
                    e.pins = e.pins.saturating_sub(1);
                }
            }
            Op::Evict { kind, key } => {
                self.entries.remove(&(kind, key));
            }
        }
    }
}

/// Result of a [`Manifest::gc`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Bytes retained by live entries after the pass.
    pub live_bytes: u64,
    /// Entries evicted to meet the budget.
    pub evicted: usize,
    /// Bytes those evictions reclaimed.
    pub evicted_bytes: u64,
    /// Unaccounted files (not in the journal) deleted from the
    /// directory — stray temp files, artifacts from a wiped journal.
    pub orphans_removed: usize,
    /// Whether a poisoned journal was wiped and restarted.
    pub reset: bool,
}

/// Handle to a cache directory's journal. Cloning shares the loaded
/// state; independent handles (or processes) re-read the journal, whose
/// append-only single-`write` lines keep concurrent appends safe.
#[derive(Debug, Clone)]
pub struct Manifest {
    dir: PathBuf,
    state: Arc<Mutex<Option<State>>>,
}

impl Manifest {
    /// The manifest of the cache directory `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Manifest {
            dir: dir.into(),
            state: Arc::new(Mutex::new(None)),
        }
    }

    /// Path of the journal file.
    pub fn path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }

    fn load(&self) -> State {
        let mut state = State::default();
        let Ok(text) = std::fs::read_to_string(self.path()) else {
            return state; // no journal yet: empty, healthy
        };
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            match serde_json::from_str::<Op>(line) {
                Ok(op) => state.apply(op),
                Err(_) => {
                    // One bad line poisons everything after it *and*
                    // before it: we cannot know what the damaged region
                    // said, so no entry is trustworthy.
                    state.poisoned = true;
                    state.entries.clear();
                    return state;
                }
            }
        }
        state
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut State) -> R) -> R {
        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let state = guard.get_or_insert_with(|| self.load());
        f(state)
    }

    /// Whether the journal failed to parse. A poisoned manifest serves
    /// no entries: lookups must miss and recompute.
    pub fn is_poisoned(&self) -> bool {
        self.with_state(|s| s.poisoned)
    }

    /// The current generation counter (number of journal operations).
    pub fn generation(&self) -> u64 {
        self.with_state(|s| s.next_gen)
    }

    /// The live entry for `(kind, key)`, if the journal has one.
    pub fn entry(&self, kind: &str, key: u64) -> Option<Entry> {
        self.with_state(|s| s.entries.get(&(kind.to_string(), key)).cloned())
    }

    /// Total bytes of all live entries.
    pub fn live_bytes(&self) -> u64 {
        self.with_state(|s| s.entries.values().map(|e| e.bytes).sum())
    }

    fn append(&self, op: Op) -> io::Result<()> {
        // Load state *before* the file write: on first touch, loading
        // afterwards would replay the line just appended and then apply
        // the op a second time.
        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let state = guard.get_or_insert_with(|| self.load());
        std::fs::create_dir_all(&self.dir)?;
        let mut line = serde_json::to_string(&op)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path())?;
        // One write call per line: O_APPEND keeps concurrent writers
        // from interleaving partial lines.
        file.write_all(line.as_bytes())?;
        state.apply(op);
        Ok(())
    }

    /// Records that an artifact landed on disk.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] when the journal cannot be appended.
    pub fn record_put(&self, kind: &str, key: u64, file: &str, bytes: u64) -> io::Result<()> {
        self.append(Op::Put {
            kind: kind.to_string(),
            key,
            file: file.to_string(),
            bytes,
        })
    }

    /// Adds a reference to an artifact; while any reference is held,
    /// `gc` will not evict it regardless of budget pressure.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] when the journal cannot be appended.
    pub fn pin(&self, kind: &str, key: u64) -> io::Result<()> {
        self.append(Op::Pin {
            kind: kind.to_string(),
            key,
        })
    }

    /// Drops a reference added by [`Manifest::pin`].
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] when the journal cannot be appended.
    pub fn unpin(&self, kind: &str, key: u64) -> io::Result<()> {
        self.append(Op::Unpin {
            kind: kind.to_string(),
            key,
        })
    }

    /// Runs a collection pass: evicts unpinned entries oldest-generation
    /// first until live bytes fit `budget_bytes`, removes files the
    /// journal does not account for, and compacts the journal. On a
    /// poisoned journal this deletes **every** artifact and restarts the
    /// journal empty — the only safe repair, since no entry can be
    /// trusted.
    ///
    /// # Errors
    ///
    /// Returns [`io::Error`] when files or the journal cannot be
    /// rewritten.
    pub fn gc(&self, budget_bytes: u64) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        let poisoned = self.is_poisoned();
        if poisoned {
            report.reset = true;
        }

        let (mut live, next_gen) = self.with_state(|s| (s.entries.clone(), s.next_gen));
        if poisoned {
            live.clear();
        }

        // Budget pass: evict unpinned entries, oldest generation first.
        let mut total: u64 = live.values().map(|e| e.bytes).sum();
        let mut victims: Vec<(String, u64)> = Vec::new();
        if total > budget_bytes {
            let mut by_age: Vec<(&(String, u64), &Entry)> =
                live.iter().filter(|(_, e)| e.pins == 0).collect();
            by_age.sort_by_key(|(_, e)| e.generation);
            for (k, e) in by_age {
                if total <= budget_bytes {
                    break;
                }
                total -= e.bytes;
                report.evicted += 1;
                report.evicted_bytes += e.bytes;
                victims.push(k.clone());
            }
        }
        for k in &victims {
            if let Some(e) = live.remove(k) {
                let _ = std::fs::remove_file(self.dir.join(&e.file));
            }
        }

        // Orphan pass: every file in the directory must be either the
        // journal or a live entry; anything else is unaccounted-for and
        // goes (stray temp files, artifacts of a wiped journal).
        let keep: std::collections::BTreeSet<&str> =
            live.values().map(|e| e.file.as_str()).collect();
        if let Ok(dirents) = std::fs::read_dir(&self.dir) {
            for dirent in dirents.flatten() {
                let name = dirent.file_name();
                let Some(name) = name.to_str() else { continue };
                if name == MANIFEST_FILE || keep.contains(name) {
                    continue;
                }
                if std::fs::remove_file(dirent.path()).is_ok() {
                    report.orphans_removed += 1;
                }
            }
        }

        // Compact: rewrite the journal as the live set's put/pin lines,
        // atomically, and swap the in-memory state to match.
        let mut compacted = State::default();
        let mut text = String::new();
        let mut ordered: Vec<(&(String, u64), &Entry)> = live.iter().collect();
        ordered.sort_by_key(|(_, e)| e.generation);
        for ((kind, key), e) in ordered {
            let put = Op::Put {
                kind: kind.clone(),
                key: *key,
                file: e.file.clone(),
                bytes: e.bytes,
            };
            text.push_str(
                &serde_json::to_string(&put)
                    .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?,
            );
            text.push('\n');
            compacted.apply(put);
            for _ in 0..e.pins {
                let pin = Op::Pin {
                    kind: kind.clone(),
                    key: *key,
                };
                text.push_str(&serde_json::to_string(&pin).map_err(|err| {
                    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
                })?);
                text.push('\n');
                compacted.apply(pin);
            }
        }
        // Preserve monotonicity across the compaction: generations never
        // move backwards, so "oldest" stays meaningful after gc.
        compacted.next_gen = compacted.next_gen.max(next_gen);
        std::fs::create_dir_all(&self.dir)?;
        let tmp = self
            .dir
            .join(format!(".{MANIFEST_FILE}.{}.tmp", std::process::id()));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, self.path())?;

        report.live_bytes = compacted.entries.values().map(|e| e.bytes).sum();
        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some(compacted);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aegis-par-manifest-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn put_file(dir: &Path, m: &Manifest, kind: &str, key: u64, bytes: usize) {
        std::fs::create_dir_all(dir).unwrap();
        let file = format!("{kind}-{key:016x}.acs");
        std::fs::write(dir.join(&file), vec![0u8; bytes]).unwrap();
        m.record_put(kind, key, &file, bytes as u64).unwrap();
    }

    #[test]
    fn generations_are_monotone_and_entries_live() {
        let dir = temp_dir("gen");
        let m = Manifest::new(&dir);
        assert_eq!(m.generation(), 0);
        put_file(&dir, &m, "a", 1, 10);
        put_file(&dir, &m, "b", 2, 20);
        assert_eq!(m.generation(), 2);
        let a = m.entry("a", 1).unwrap();
        let b = m.entry("b", 2).unwrap();
        assert!(a.generation < b.generation);
        assert_eq!(m.live_bytes(), 30);
        // A fresh handle reloads the same state from disk.
        let m2 = Manifest::new(&dir);
        assert_eq!(m2.generation(), 2);
        assert_eq!(m2.entry("a", 1), Some(a));
    }

    #[test]
    fn gc_evicts_oldest_unpinned_first() {
        let dir = temp_dir("gc-age");
        let m = Manifest::new(&dir);
        put_file(&dir, &m, "a", 1, 100);
        put_file(&dir, &m, "b", 2, 100);
        put_file(&dir, &m, "c", 3, 100);
        let report = m.gc(200).unwrap();
        assert_eq!(report.evicted, 1);
        assert!(m.entry("a", 1).is_none(), "oldest entry evicted");
        assert!(m.entry("b", 2).is_some());
        assert!(m.entry("c", 3).is_some());
        assert!(!dir.join("a-0000000000000001.acs").exists());
    }

    #[test]
    fn gc_never_evicts_pinned_entries() {
        let dir = temp_dir("gc-pin");
        let m = Manifest::new(&dir);
        put_file(&dir, &m, "a", 1, 100);
        put_file(&dir, &m, "b", 2, 100);
        m.pin("a", 1).unwrap();
        let report = m.gc(0).unwrap();
        assert!(m.entry("a", 1).is_some(), "pinned survives zero budget");
        assert!(m.entry("b", 2).is_none());
        assert_eq!(report.live_bytes, 100);
        // Unpinning makes it collectable again.
        m.unpin("a", 1).unwrap();
        m.gc(0).unwrap();
        assert!(m.entry("a", 1).is_none());
    }

    #[test]
    fn gc_removes_orphan_files() {
        let dir = temp_dir("gc-orphan");
        let m = Manifest::new(&dir);
        put_file(&dir, &m, "a", 1, 10);
        std::fs::write(dir.join("stray.acs"), b"junk").unwrap();
        std::fs::write(dir.join(".a-x.123.tmp"), b"junk").unwrap();
        let report = m.gc(u64::MAX).unwrap();
        assert_eq!(report.orphans_removed, 2);
        assert!(dir.join("a-0000000000000001.acs").exists());
        assert!(!dir.join("stray.acs").exists());
    }

    #[test]
    fn corrupt_journal_poisons_and_gc_resets() {
        let dir = temp_dir("poison");
        let m = Manifest::new(&dir);
        put_file(&dir, &m, "a", 1, 10);
        let mut text = std::fs::read_to_string(m.path()).unwrap();
        text.push_str("{definitely not an op\n");
        std::fs::write(m.path(), text).unwrap();

        let fresh = Manifest::new(&dir);
        assert!(fresh.is_poisoned());
        assert!(
            fresh.entry("a", 1).is_none(),
            "poisoned manifest serves nothing"
        );
        let report = fresh.gc(u64::MAX).unwrap();
        assert!(report.reset);
        assert!(!fresh.is_poisoned());
        assert!(
            !dir.join("a-0000000000000001.acs").exists(),
            "reset wipes all artifacts"
        );
        assert_eq!(fresh.live_bytes(), 0);
    }

    #[test]
    fn compaction_preserves_pins_and_generation_order() {
        let dir = temp_dir("compact");
        let m = Manifest::new(&dir);
        put_file(&dir, &m, "a", 1, 10);
        put_file(&dir, &m, "b", 2, 10);
        m.pin("b", 2).unwrap();
        let gen_before = m.generation();
        m.gc(u64::MAX).unwrap();

        let fresh = Manifest::new(&dir);
        assert_eq!(fresh.entry("b", 2).unwrap().pins, 1);
        let a = fresh.entry("a", 1).unwrap();
        let b = fresh.entry("b", 2).unwrap();
        assert!(a.generation < b.generation);
        assert!(
            fresh.generation() >= gen_before,
            "generations never move backwards"
        );
    }
}
