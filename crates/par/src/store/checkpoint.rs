//! Generic checkpoint-resume over any columnar payload.
//!
//! The fuzzer's `FuzzCheckpoint` pattern — persist `(completed, partial
//! results)` at chunk boundaries, resume by validating the pair —
//! generalizes to every chunked computation in the workspace: a sweep
//! grid, a collection pool, a candidate list. [`Checkpoint`] wraps any
//! [`Columnar`] payload with a `completed` counter, encoded as the
//! payload's columns plus one trailing `u64` bookkeeping column, so the
//! checkpoint rides the same torn-write-detected binary format as every
//! other artifact.

use super::columnar::{ColumnFrame, ColumnSchema, Columnar, FrameError, FrameReader};

/// A resumable partial result: `payload` covers the first `completed`
/// work units of some deterministic unit list.
///
/// Validity is the caller's contract — on load, check that the payload's
/// own length agrees with `completed` (e.g. `ck.items.len() ==
/// ck.completed`) and that `completed` does not exceed the current unit
/// list; a checkpoint that fails either check is stale and must be
/// discarded, not resumed.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint<V> {
    /// Number of leading work units `payload` accounts for.
    pub completed: u64,
    /// The partial result.
    pub payload: V,
}

impl<V> Checkpoint<V> {
    /// A checkpoint of `payload` covering `completed` units.
    pub fn new(completed: u64, payload: V) -> Self {
        Checkpoint { completed, payload }
    }
}

impl<V: Columnar> Columnar for Checkpoint<V> {
    fn schema() -> ColumnSchema {
        let inner = V::schema();
        ColumnSchema::new(format!("aegis/checkpoint<{}>", inner.name), inner.version)
    }

    fn encode_columns(&self, frame: &mut ColumnFrame) {
        self.payload.encode_columns(frame);
        frame.push_u64(vec![self.completed]);
    }

    fn decode_columns(reader: &mut FrameReader) -> Result<Self, FrameError> {
        let payload = V::decode_columns(reader)?;
        let tail = reader.u64s()?;
        let [completed] = tail[..] else {
            return Err(FrameError::new("checkpoint counter column malformed"));
        };
        Ok(Checkpoint { completed, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::columnar::{decode_frame, encode_frame};

    #[derive(Debug, Clone, PartialEq)]
    struct Partial {
        acc: Vec<f64>,
        ids: Vec<u64>,
    }

    impl Columnar for Partial {
        fn schema() -> ColumnSchema {
            ColumnSchema::new("test/partial", 1)
        }
        fn encode_columns(&self, frame: &mut ColumnFrame) {
            frame.push_f64(self.acc.clone());
            frame.push_u64(self.ids.clone());
        }
        fn decode_columns(reader: &mut FrameReader) -> Result<Self, FrameError> {
            Ok(Partial {
                acc: reader.f64s()?,
                ids: reader.u64s()?,
            })
        }
    }

    #[test]
    fn checkpoint_roundtrips_payload_and_counter() {
        let ck = Checkpoint::new(
            3,
            Partial {
                acc: vec![0.5, 0.75, 0.25],
                ids: vec![10, 20, 30],
            },
        );
        let bytes = encode_frame(&Checkpoint::<Partial>::schema(), &ck.to_frame());
        let frame = decode_frame(&Checkpoint::<Partial>::schema(), &bytes).unwrap();
        let back = Checkpoint::<Partial>::from_frame(frame).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn checkpoint_schema_is_distinct_from_payload_schema() {
        let ck = Checkpoint::new(0, Partial { acc: vec![], ids: vec![] });
        let bytes = encode_frame(&Checkpoint::<Partial>::schema(), &ck.to_frame());
        assert!(
            decode_frame(&Partial::schema(), &bytes).is_err(),
            "a checkpoint must not decode as a bare payload"
        );
    }

    #[test]
    fn malformed_counter_column_is_an_error() {
        let mut frame = ColumnFrame::new();
        Partial { acc: vec![], ids: vec![] }.encode_columns(&mut frame);
        frame.push_u64(vec![1, 2]); // two counters: nonsense
        assert!(Checkpoint::<Partial>::from_frame(frame).is_err());
    }
}
