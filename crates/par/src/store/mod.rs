//! The columnar, content-addressed artifact store.
//!
//! Three layers, each usable on its own:
//!
//! - [`columnar`]: the `.acs` binary format — header + contiguous
//!   little-endian column pages mirroring in-memory flat layouts, with
//!   per-page checksums so torn writes are detected, and the
//!   [`Columnar`] trait types implement to ride it.
//! - [`manifest`]: the journal of generations and reference counts that
//!   gives the store an explicit [`Manifest::gc`] entry point with a
//!   size budget, and fails closed when corrupt.
//! - [`checkpoint`]: [`Checkpoint`], the generic resumable-partial-
//!   result wrapper any chunked computation persists through the store.
//!
//! [`crate::ArtifactCache`] composes all three behind its `get_col` /
//! `put_col` / `pin` / `gc` methods.

pub mod checkpoint;
pub mod columnar;
pub mod manifest;

pub use checkpoint::Checkpoint;
pub use columnar::{
    decode_frame, encode_frame, usize_from_u64, ColumnFrame, ColumnSchema, Columnar, FrameError,
    FrameReader,
};
pub use manifest::{GcReport, Manifest};

use crate::cache::fingerprint;
use serde::Serialize;
use std::path::{Path, PathBuf};

/// A content address: artifact kind plus the fingerprint of everything
/// that determines the artifact's bytes (producer schema + inputs).
///
/// This unifies the ad-hoc `cleanup-*` / `fuzz-ckpt-*` / `model` key
/// strings: every producer states its kind once and hashes its full
/// input tuple, so two artifacts collide exactly when they are the same
/// computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Artifact family (one producer, one kind).
    pub kind: &'static str,
    /// Fingerprint of the producer's inputs, salted with the kind.
    pub key: u64,
}

impl ArtifactKey {
    /// Addresses the artifact `kind` produces from `inputs`. The kind is
    /// folded into the hash so identical inputs under different kinds
    /// never alias.
    pub fn of<T: Serialize>(kind: &'static str, inputs: &T) -> Self {
        ArtifactKey {
            kind,
            key: fingerprint(&(kind, inputs)),
        }
    }

    /// Wraps an already-computed fingerprint (for call sites that share
    /// a key between the store and other bookkeeping).
    pub fn raw(kind: &'static str, key: u64) -> Self {
        ArtifactKey { kind, key }
    }
}

/// The topmost ancestor of `start` that contains a `Cargo.toml` — the
/// workspace root when run from anywhere inside the workspace (a crate
/// directory's own `Cargo.toml` is shadowed by the workspace's). Falls
/// back to `start` itself outside any Cargo project.
pub fn workspace_root_from(start: &Path) -> PathBuf {
    let mut root = None;
    for dir in start.ancestors() {
        if dir.join("Cargo.toml").is_file() {
            root = Some(dir);
        }
    }
    root.unwrap_or(start).to_path_buf()
}

/// The default cache directory: `AEGIS_CACHE_DIR` when set, otherwise
/// `<workspace root>/results/cache`. Anchoring on the workspace root —
/// not the bare relative path `results/cache` — keeps per-crate test
/// runs (whose cwd is the crate directory) from sprinkling stray
/// `results/` trees over the source checkout.
pub fn default_cache_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("AEGIS_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_default();
    workspace_root_from(&cwd).join("results").join("cache")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_keys_separate_kinds_and_inputs() {
        let a = ArtifactKey::of("clean-dataset", &(7u64, "wfa"));
        let b = ArtifactKey::of("clean-mea-runs", &(7u64, "wfa"));
        let c = ArtifactKey::of("clean-dataset", &(8u64, "wfa"));
        assert_ne!(a.key, b.key, "same inputs, different kinds");
        assert_ne!(a.key, c.key, "same kind, different inputs");
        assert_eq!(a, ArtifactKey::of("clean-dataset", &(7u64, "wfa")));
    }

    #[test]
    fn workspace_root_is_the_topmost_cargo_ancestor() {
        let base = std::env::temp_dir().join(format!(
            "aegis-par-root-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        let ws = base.join("ws");
        let krate = ws.join("crates").join("leaf");
        std::fs::create_dir_all(&krate).unwrap();
        std::fs::write(ws.join("Cargo.toml"), "[workspace]\n").unwrap();
        std::fs::write(krate.join("Cargo.toml"), "[package]\n").unwrap();

        assert_eq!(workspace_root_from(&krate), ws);
        assert_eq!(workspace_root_from(&ws), ws);
        // Outside any Cargo project the start directory is its own root.
        assert_eq!(workspace_root_from(&base), base);
        let _ = std::fs::remove_dir_all(&base);
    }
}
