//! The columnar binary artifact format (`.acs` — *aegis column store*).
//!
//! JSON artifacts pay a per-element parse on every warm load: a cached
//! dataset of a few million `f64`s is tokenized, validated, and rebuilt
//! one number at a time. The columnar format instead mirrors the flat
//! in-memory layouts the rest of the workspace already uses (`Mat`,
//! flattened `RecordedTrace`s, contiguous label vectors): the file is a
//! small fixed header plus contiguous little-endian `f64`/`u64` *column
//! pages*, so a warm load is one `read` into a pre-sized buffer followed
//! by a bulk byte copy per column — no tokenizer, no per-element
//! branching, and the decoded `Vec`s move straight into the value.
//!
//! ## On-disk layout (pinned by `tests/store_format.rs`)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"AEGCOL01"
//! 8       4     schema id      (FNV-1a-32 of the schema name), LE
//! 12      4     schema version, LE
//! 16      4     column count,   LE
//! 20      4     header checksum (FNV-1a-32 of bytes 0..20 and the
//!               descriptor table), LE
//! 24      24*n  column descriptors:
//!                 u32 dtype (1 = f64, 2 = u64)
//!                 u32 element count   (columns are capped at u32::MAX
//!                                      elements; 32 GiB per column)
//!                 u64 absolute byte offset of the page
//!                 u64 page checksum (FNV-1a-64 of the page bytes)
//! ...           column pages, in descriptor order, 8-byte aligned
//! ```
//!
//! Every page carries its own checksum, so a torn write — truncation
//! *or* a partial page landing mid-column — is detected on read and
//! surfaces as a cache miss that the recompute path heals. The header
//! checksum pins the descriptor table itself.

use std::fmt;

/// File magic: format name plus a one-byte format generation. Bumping
/// the generation (`02`) invalidates every existing artifact at once.
pub const COLUMNAR_MAGIC: [u8; 8] = *b"AEGCOL01";

/// Size of the fixed header before the descriptor table.
pub const COLUMNAR_HEADER_LEN: usize = 24;

/// Size of one column descriptor.
pub const COLUMNAR_DESC_LEN: usize = 24;

/// dtype tag of an `f64` column page.
pub const DTYPE_F64: u32 = 1;

/// dtype tag of a `u64` column page.
pub const DTYPE_U64: u32 = 2;

/// A decoding failure: the artifact bytes do not describe a valid frame
/// of the expected schema. Readers treat this as a cache miss (the
/// recompute path heals), never as data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError(pub String);

impl FrameError {
    /// A decode error with the given message (for downstream [`Columnar`]
    /// implementations validating their own invariants).
    pub fn new(msg: impl Into<String>) -> Self {
        FrameError(msg.into())
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "columnar frame: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

/// Identity of a columnar encoding: the producing type's stable name and
/// its layout version. Both are pinned into the header; a reader with a
/// different schema treats the artifact as a miss instead of misreading
/// reinterpreted pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSchema {
    /// Stable schema name (conventionally the type path).
    pub name: String,
    /// Layout version; bump when the column sequence changes.
    pub version: u32,
}

impl ColumnSchema {
    /// A schema with the given name and version.
    pub fn new(name: impl Into<String>, version: u32) -> Self {
        ColumnSchema {
            name: name.into(),
            version,
        }
    }

    /// The 32-bit id written into the header: FNV-1a over the name.
    pub fn id(&self) -> u32 {
        let mut hash: u32 = 0x811c_9dc5;
        for byte in self.name.bytes() {
            hash ^= u32::from(byte);
            hash = hash.wrapping_mul(0x0100_0193);
        }
        hash
    }
}

/// One contiguous column page.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// A page of little-endian `f64`s.
    F64(Vec<f64>),
    /// A page of little-endian `u64`s.
    U64(Vec<u64>),
}

impl Column {
    fn dtype(&self) -> u32 {
        match self {
            Column::F64(_) => DTYPE_F64,
            Column::U64(_) => DTYPE_U64,
        }
    }

    fn len(&self) -> usize {
        match self {
            Column::F64(v) => v.len(),
            Column::U64(v) => v.len(),
        }
    }
}

/// An ordered set of column pages — the unit a [`Columnar`] type encodes
/// to and decodes from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnFrame {
    cols: Vec<Column>,
}

impl ColumnFrame {
    /// An empty frame.
    pub fn new() -> Self {
        ColumnFrame::default()
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether the frame has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Appends an `f64` column.
    pub fn push_f64(&mut self, data: Vec<f64>) {
        self.cols.push(Column::F64(data));
    }

    /// Appends a `u64` column.
    pub fn push_u64(&mut self, data: Vec<u64>) {
        self.cols.push(Column::U64(data));
    }

    /// Removes and returns the last column, if any (used by wrappers —
    /// e.g. [`super::Checkpoint`] — that append bookkeeping columns
    /// after a payload frame).
    pub fn pop(&mut self) -> Option<Column> {
        self.cols.pop()
    }

    /// Consumes the frame into a sequential column reader.
    pub fn into_reader(self) -> FrameReader {
        FrameReader {
            cols: self.cols.into_iter(),
        }
    }
}

/// Sequential, ownership-taking reader over a frame's columns. Decoded
/// `Vec`s move out of the frame — the bytes copied out of the file are
/// the ones that end up inside the value.
#[derive(Debug)]
pub struct FrameReader {
    cols: std::vec::IntoIter<Column>,
}

impl FrameReader {
    /// Takes the next column, which must be `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] when the frame is exhausted or the next
    /// column has a different dtype.
    pub fn f64s(&mut self) -> Result<Vec<f64>, FrameError> {
        match self.cols.next() {
            Some(Column::F64(v)) => Ok(v),
            Some(Column::U64(_)) => Err(FrameError::new("expected f64 column, found u64")),
            None => Err(FrameError::new("expected f64 column, frame exhausted")),
        }
    }

    /// Takes the next column, which must be `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] when the frame is exhausted or the next
    /// column has a different dtype.
    pub fn u64s(&mut self) -> Result<Vec<u64>, FrameError> {
        match self.cols.next() {
            Some(Column::U64(v)) => Ok(v),
            Some(Column::F64(_)) => Err(FrameError::new("expected u64 column, found f64")),
            None => Err(FrameError::new("expected u64 column, frame exhausted")),
        }
    }

    /// Asserts every column was consumed — a decoder that leaves columns
    /// behind is reading a different schema than the writer produced.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] when columns remain.
    pub fn finish(mut self) -> Result<(), FrameError> {
        if self.cols.next().is_some() {
            return Err(FrameError::new("trailing columns after decode"));
        }
        Ok(())
    }
}

/// A type with a columnar binary encoding whose on-disk pages mirror its
/// flat in-memory buffers.
///
/// Implementations must round-trip bit-exactly: `decode(encode(x)) ==
/// x`, including every `f64` bit pattern — the store's warm-vs-cold
/// equality contract depends on it.
pub trait Columnar: Sized {
    /// The schema pinned into encoded headers.
    fn schema() -> ColumnSchema;

    /// Appends this value's columns to `frame`, in schema order.
    /// Composite types append their members' columns in field order.
    fn encode_columns(&self, frame: &mut ColumnFrame);

    /// Decodes the value by consuming columns from `reader` in the same
    /// order `encode_columns` appended them.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] when the columns do not describe a valid
    /// value.
    fn decode_columns(reader: &mut FrameReader) -> Result<Self, FrameError>;

    /// Encodes into a standalone frame.
    fn to_frame(&self) -> ColumnFrame {
        let mut frame = ColumnFrame::new();
        self.encode_columns(&mut frame);
        frame
    }

    /// Decodes from a standalone frame, requiring every column to be
    /// consumed.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] when decoding fails or columns remain.
    fn from_frame(frame: ColumnFrame) -> Result<Self, FrameError> {
        let mut reader = frame.into_reader();
        let value = Self::decode_columns(&mut reader)?;
        reader.finish()?;
        Ok(value)
    }
}

/// FNV-1a-64 over raw bytes — the page checksum. Stable across
/// processes and platforms, like [`crate::fingerprint`].
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes a frame under `schema` into the pinned binary layout.
pub fn encode_frame(schema: &ColumnSchema, frame: &ColumnFrame) -> Vec<u8> {
    let n = frame.cols.len();
    let desc_end = COLUMNAR_HEADER_LEN + n * COLUMNAR_DESC_LEN;
    // Pages start 8-byte aligned after the descriptor table.
    let mut offset = desc_end.next_multiple_of(8);
    let payload: usize = frame.cols.iter().map(|c| c.len() * 8).sum();
    let mut out = Vec::with_capacity(offset + payload);

    out.extend_from_slice(&COLUMNAR_MAGIC);
    put_u32(&mut out, schema.id());
    put_u32(&mut out, schema.version);
    put_u32(&mut out, u32::try_from(n).expect("column count fits u32"));
    // Header checksum patched below, once the descriptors exist.
    put_u32(&mut out, 0);

    // Descriptor table (checksums of pages computed as we serialize the
    // page bytes into scratch, so each page is walked exactly once).
    let mut pages: Vec<Vec<u8>> = Vec::with_capacity(n);
    for col in &frame.cols {
        let mut page: Vec<u8> = Vec::with_capacity(col.len() * 8);
        match col {
            Column::F64(v) => {
                for x in v {
                    page.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            Column::U64(v) => {
                for x in v {
                    page.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
        put_u32(&mut out, col.dtype());
        put_u32(&mut out, u32::try_from(col.len()).expect("column length fits u32"));
        put_u64(&mut out, offset as u64);
        put_u64(&mut out, fnv64(&page));
        offset += page.len();
        pages.push(page);
    }
    let crc = fnv32_header(&out);
    out[20..24].copy_from_slice(&crc.to_le_bytes());

    // Alignment padding, then the pages.
    out.resize(desc_end.next_multiple_of(8), 0);
    for page in pages {
        out.extend_from_slice(&page);
    }
    out
}

/// The header checksum: FNV-1a-32 over the fixed header (with the
/// checksum field itself zeroed) and the descriptor table.
fn fnv32_header(prefix: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for (i, &byte) in prefix.iter().enumerate() {
        let b = if (20..24).contains(&i) { 0 } else { byte };
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

fn read_u32(bytes: &[u8], at: usize) -> Result<u32, FrameError> {
    let end = at
        .checked_add(4)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| FrameError::new("truncated header"))?;
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[at..end]);
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(bytes: &[u8], at: usize) -> Result<u64, FrameError> {
    let end = at
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| FrameError::new("truncated header"))?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[at..end]);
    Ok(u64::from_le_bytes(buf))
}

/// Deserializes artifact bytes into a frame, validating magic, schema,
/// header checksum, page bounds, and every page checksum. Any mismatch
/// — including a torn page inside a column — is a [`FrameError`].
///
/// # Errors
///
/// Returns [`FrameError`] when the bytes are not a valid frame of
/// `schema`.
pub fn decode_frame(schema: &ColumnSchema, bytes: &[u8]) -> Result<ColumnFrame, FrameError> {
    if bytes.len() < COLUMNAR_HEADER_LEN {
        return Err(FrameError::new("file shorter than header"));
    }
    if bytes[..8] != COLUMNAR_MAGIC {
        return Err(FrameError::new("bad magic"));
    }
    if read_u32(bytes, 8)? != schema.id() {
        return Err(FrameError::new(format!(
            "schema id mismatch (want {:#010x} `{}`)",
            schema.id(),
            schema.name
        )));
    }
    if read_u32(bytes, 12)? != schema.version {
        return Err(FrameError::new(format!(
            "schema version mismatch (want {})",
            schema.version
        )));
    }
    let n = read_u32(bytes, 16)? as usize;
    let desc_end = COLUMNAR_HEADER_LEN
        .checked_add(n.checked_mul(COLUMNAR_DESC_LEN).ok_or_else(overflow)?)
        .ok_or_else(overflow)?;
    if bytes.len() < desc_end {
        return Err(FrameError::new("truncated descriptor table"));
    }
    if read_u32(bytes, 20)? != fnv32_header(&bytes[..desc_end]) {
        return Err(FrameError::new("header checksum mismatch"));
    }

    let mut cols = Vec::with_capacity(n);
    for i in 0..n {
        let at = COLUMNAR_HEADER_LEN + i * COLUMNAR_DESC_LEN;
        let dtype = read_u32(bytes, at)?;
        let len = read_u32(bytes, at + 4)? as usize;
        let offset = read_u64(bytes, at + 8)? as usize;
        let crc = read_u64(bytes, at + 16)?;
        let end = offset
            .checked_add(len.checked_mul(8).ok_or_else(overflow)?)
            .ok_or_else(overflow)?;
        if end > bytes.len() {
            return Err(FrameError::new(format!("column {i} page out of bounds")));
        }
        let page = &bytes[offset..end];
        if fnv64(page) != crc {
            return Err(FrameError::new(format!("column {i} checksum mismatch")));
        }
        cols.push(match dtype {
            // The page is contiguous little-endian words; the chunked
            // from_le_bytes loop compiles to a bulk copy on LE targets.
            DTYPE_F64 => Column::F64(
                page.chunks_exact(8)
                    .map(|c| {
                        let mut b = [0u8; 8];
                        b.copy_from_slice(c);
                        f64::from_bits(u64::from_le_bytes(b))
                    })
                    .collect(),
            ),
            DTYPE_U64 => Column::U64(
                page.chunks_exact(8)
                    .map(|c| {
                        let mut b = [0u8; 8];
                        b.copy_from_slice(c);
                        u64::from_le_bytes(b)
                    })
                    .collect(),
            ),
            other => {
                return Err(FrameError::new(format!("column {i}: unknown dtype {other}")))
            }
        });
    }
    Ok(ColumnFrame { cols })
}

fn overflow() -> FrameError {
    FrameError::new("descriptor arithmetic overflow")
}

/// `usize` stored as a `u64` column element, checked on decode.
///
/// # Errors
///
/// Returns [`FrameError`] when the value exceeds the platform `usize`.
pub fn usize_from_u64(v: u64, what: &str) -> Result<usize, FrameError> {
    usize::try_from(v).map_err(|_| FrameError::new(format!("{what} {v} exceeds usize")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> ColumnFrame {
        let mut f = ColumnFrame::new();
        f.push_f64(vec![1.5, -2.25, f64::NAN, 0.0, -0.0]);
        f.push_u64(vec![7, u64::MAX, 0]);
        f.push_f64(vec![]);
        f
    }

    fn schema() -> ColumnSchema {
        ColumnSchema::new("test/frame", 3)
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let frame = sample_frame();
        let bytes = encode_frame(&schema(), &frame);
        let back = decode_frame(&schema(), &bytes).unwrap();
        let mut r = back.into_reader();
        let f = r.f64s().unwrap();
        // NaN payload preserved bit-for-bit.
        assert_eq!(
            f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            [1.5, -2.25, f64::NAN, 0.0, -0.0]
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(r.u64s().unwrap(), vec![7, u64::MAX, 0]);
        assert_eq!(r.f64s().unwrap(), Vec::<f64>::new());
        r.finish().unwrap();
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = encode_frame(&schema(), &sample_frame());
        for cut in 0..bytes.len() {
            assert!(
                decode_frame(&schema(), &bytes[..cut]).is_err(),
                "truncation at {cut}/{} must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn flipped_byte_inside_a_column_is_detected() {
        let bytes = encode_frame(&schema(), &sample_frame());
        for at in 0..bytes.len() {
            let mut torn = bytes.clone();
            torn[at] ^= 0x40;
            assert!(
                decode_frame(&schema(), &torn).is_err(),
                "corruption at byte {at} must not decode"
            );
        }
    }

    #[test]
    fn schema_mismatch_is_a_miss() {
        let bytes = encode_frame(&schema(), &sample_frame());
        let other = ColumnSchema::new("test/other", 3);
        assert!(decode_frame(&other, &bytes).is_err());
        let newer = ColumnSchema::new("test/frame", 4);
        assert!(decode_frame(&newer, &bytes).is_err());
    }

    #[test]
    fn reader_enforces_dtype_and_exhaustion() {
        let frame = sample_frame();
        let mut r = frame.clone().into_reader();
        assert!(r.u64s().is_err(), "first column is f64");

        let mut r = frame.clone().into_reader();
        r.f64s().unwrap();
        r.u64s().unwrap();
        assert!(r.finish().is_err(), "one column left");

        let mut r = frame.into_reader();
        r.f64s().unwrap();
        r.u64s().unwrap();
        r.f64s().unwrap();
        assert!(r.f64s().is_err(), "frame exhausted");
    }

    #[test]
    fn pages_are_eight_byte_aligned() {
        let frame = sample_frame();
        let bytes = encode_frame(&schema(), &frame);
        for i in 0..frame.len() {
            let at = COLUMNAR_HEADER_LEN + i * COLUMNAR_DESC_LEN + 8;
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[at..at + 8]);
            assert_eq!(u64::from_le_bytes(b) % 8, 0, "column {i} misaligned");
        }
    }
}
