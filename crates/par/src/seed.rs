//! Per-work-unit seed derivation.
//!
//! Parallel determinism hinges on every work unit owning an RNG stream
//! that depends only on *what* the unit is, not on *when* or *where* it
//! runs. SplitMix64 is the standard tool: a bijective 64-bit finalizer
//! with strong avalanche behaviour, so distinct `(stream, unit)` inputs
//! yield well-separated seeds even when the inputs differ in one bit.

/// One SplitMix64 step: advances `state` by the odd constant γ and
/// applies the 64-bit finalizer. Bijective in `state`.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed for work unit `unit` of logical stream `stream`
/// under campaign seed `base`.
///
/// `stream` separates the independent consumers of one campaign seed
/// (fuzzer events, trace collection, defense deployment, …) so two
/// subsystems never share a stream even for equal unit indices. The
/// derivation is two chained SplitMix64 finalizations — the composition
/// stays injective for fixed `stream`/`unit` offsets and mixes every
/// input bit into every output bit, unlike the XOR-of-smallish-integers
/// seeds it replaces (which collide whenever `a ^ b == c ^ d`).
pub fn derive_seed(base: u64, stream: u64, unit: u64) -> u64 {
    splitmix64(splitmix64(base ^ stream.rotate_left(32)).wrapping_add(unit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_bijective_on_a_sample() {
        // Distinct inputs must give distinct outputs (spot check).
        let outs: HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn derived_seeds_are_distinct_across_units_and_streams() {
        let mut seen = HashSet::new();
        for stream in 0..8u64 {
            for unit in 0..4096u64 {
                assert!(
                    seen.insert(derive_seed(42, stream, unit)),
                    "collision at stream {stream} unit {unit}"
                );
            }
        }
    }

    #[test]
    fn derivation_is_pure() {
        assert_eq!(derive_seed(7, 1, 99), derive_seed(7, 1, 99));
        assert_ne!(derive_seed(7, 1, 99), derive_seed(8, 1, 99));
        assert_ne!(derive_seed(7, 1, 99), derive_seed(7, 2, 99));
        assert_ne!(derive_seed(7, 1, 99), derive_seed(7, 1, 98));
    }
}
