//! Deterministic work-parallel execution for the Aegis workspace.
//!
//! Fuzzing campaigns, dataset collection, and ε-grid experiment sweeps are
//! all embarrassingly parallel *and* seeded — so this crate provides a
//! worker pool whose results are **bit-identical regardless of worker
//! count**. The contract has three legs:
//!
//! 1. **Per-unit seeds** ([`derive_seed`]): every work unit draws from its
//!    own RNG stream derived from `(base seed, stream tag, unit index)` —
//!    never from a shared RNG whose consumption order would depend on
//!    scheduling.
//! 2. **Pristine per-unit state**: workers operate on worker-local or
//!    per-unit replicas (cloned `Core`s, forked `Host`s), never on state
//!    mutated by a previous unit in a scheduling-dependent order.
//! 3. **Index-ordered results** ([`Executor::map`]): results are returned
//!    in input order no matter which worker finished first.
//!
//! The [`cache`] module adds a keyed artifact cache so expensive seeded
//! computations (cleanup fuzzing, clean trace datasets) are memoized
//! across runs of the CLI and experiment binaries; the [`store`] module
//! is its engine — the columnar `.acs` binary format ([`Columnar`]),
//! the generation/ref-count manifest with `gc`, and generic
//! [`Checkpoint`] resume.

mod cache;
mod executor;
mod seed;
pub mod store;

pub use cache::{fingerprint, ArtifactCache};
pub use executor::{available_threads, get_threads, set_threads, Executor};
pub use seed::{derive_seed, splitmix64};
pub use store::{
    ArtifactKey, Checkpoint, ColumnFrame, ColumnSchema, Columnar, FrameError, FrameReader,
    GcReport, Manifest,
};
