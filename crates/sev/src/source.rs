//! Activity sources: what a guest vCPU executes, tick by tick.

use aegis_microarch::ActivityVector;
use aegis_workloads::WorkloadPlan;

/// An [`ActivitySource`]'s own view of whether it is delivering the
/// protection it exists to provide. Polled once per tick by the host's
/// supervision layer; anything but [`ProtectionStatus::Healthy`] on an
/// injector latches the core's counters fail-closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtectionStatus {
    /// The source is healthy (or is not a protection component).
    #[default]
    Healthy,
    /// The source believes protection has lapsed (stale sample feed,
    /// starved execution, …) and requests fail-closed handling.
    Degraded,
}

/// A producer of guest activity, consumed by the vCPU scheduler.
///
/// Two kinds of source exist in an Aegis deployment: the protected
/// application (a [`PlanSource`] over a [`WorkloadPlan`]) and the Event
/// Obfuscator's noise injector. Both run on the *same* vCPU, so the
/// malicious hypervisor cannot schedule them apart or tell their counter
/// contributions apart.
pub trait ActivitySource: Send + Sync {
    /// The activity rate (per microsecond) the source wants to execute
    /// right now, or `None` if it has finished.
    fn demand(&mut self) -> Option<ActivityVector>;

    /// Advances the source's own plan by `plan_ns` nanoseconds. Under CPU
    /// contention the scheduler grants less plan time than wall time —
    /// that slowdown *is* the defense's latency overhead.
    fn advance(&mut self, plan_ns: u64);

    /// Called by the scheduler on *injector* sources before [`demand`],
    /// with the activity rate the co-scheduled application will execute
    /// this tick. This models what the Event Obfuscator's kernel module
    /// observes by reading the vCPU's counters with RDPMC (the real HPC
    /// values `x[t]` the d* mechanism needs). Default: ignored.
    ///
    /// [`demand`]: ActivitySource::demand
    fn observe_coscheduled(&mut self, _app_rate: &ActivityVector, _tick_ns: u64) {}

    /// Called by the scheduler after each tick with the plan time the
    /// source actually got to execute (`0` when it was denied cycles —
    /// e.g. an injected stall). Injector sources use this for their own
    /// stall watchdog. Default: ignored.
    fn note_execution(&mut self, _granted_ns: u64) {}

    /// The source's self-reported protection health, polled by the
    /// host's supervision layer. Default: [`ProtectionStatus::Healthy`].
    fn protection_status(&self) -> ProtectionStatus {
        ProtectionStatus::Healthy
    }

    /// Concrete-type escape hatch for supervisors that must reach a
    /// source *after* it has been boxed into the host (the service
    /// plane's hot-reload path drives the attached obfuscator through
    /// this). Sources that support supervision return `Some(self)`;
    /// the default is `None` — opaque sources stay opaque.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

impl<T: ActivitySource + ?Sized> ActivitySource for Box<T> {
    fn demand(&mut self) -> Option<ActivityVector> {
        (**self).demand()
    }

    fn advance(&mut self, plan_ns: u64) {
        (**self).advance(plan_ns)
    }

    fn observe_coscheduled(&mut self, app_rate: &ActivityVector, tick_ns: u64) {
        (**self).observe_coscheduled(app_rate, tick_ns)
    }

    fn note_execution(&mut self, granted_ns: u64) {
        (**self).note_execution(granted_ns)
    }

    fn protection_status(&self) -> ProtectionStatus {
        (**self).protection_status()
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        (**self).as_any_mut()
    }
}

/// An [`ActivitySource`] that plays a [`WorkloadPlan`] from start to end.
#[derive(Debug, Clone)]
pub struct PlanSource {
    plan: WorkloadPlan,
    segment: usize,
    offset_ns: u64,
}

impl PlanSource {
    /// Wraps a plan.
    pub fn new(plan: WorkloadPlan) -> Self {
        PlanSource {
            plan,
            segment: 0,
            offset_ns: 0,
        }
    }

    /// Whether the plan has been fully executed.
    pub fn finished(&self) -> bool {
        self.segment >= self.plan.segments.len()
    }

    /// Plan time executed so far, nanoseconds.
    pub fn executed_ns(&self) -> u64 {
        let done: u64 = self.plan.segments[..self.segment]
            .iter()
            .map(|s| s.duration_ns)
            .sum();
        done + self.offset_ns
    }
}

impl ActivitySource for PlanSource {
    fn demand(&mut self) -> Option<ActivityVector> {
        self.plan.segments.get(self.segment).map(|s| s.rate)
    }

    fn advance(&mut self, mut plan_ns: u64) {
        while plan_ns > 0 {
            let Some(seg) = self.plan.segments.get(self.segment) else {
                return;
            };
            let left = seg.duration_ns - self.offset_ns;
            if plan_ns < left {
                self.offset_ns += plan_ns;
                return;
            }
            plan_ns -= left;
            self.segment += 1;
            self.offset_ns = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::Feature;
    use aegis_workloads::Segment;

    fn plan() -> WorkloadPlan {
        let mut p = WorkloadPlan::new();
        p.push(Segment::new(
            1_000_000,
            ActivityVector::from_pairs(&[(Feature::UopsRetired, 100.0)]),
        ));
        p.push(Segment::new(
            2_000_000,
            ActivityVector::from_pairs(&[(Feature::UopsRetired, 50.0)]),
        ));
        p
    }

    #[test]
    fn demand_follows_segments() {
        let mut s = PlanSource::new(plan());
        assert_eq!(s.demand().unwrap()[Feature::UopsRetired], 100.0);
        s.advance(1_000_000);
        assert_eq!(s.demand().unwrap()[Feature::UopsRetired], 50.0);
        s.advance(2_000_000);
        assert!(s.demand().is_none());
        assert!(s.finished());
    }

    #[test]
    fn advance_spans_segment_boundaries() {
        let mut s = PlanSource::new(plan());
        s.advance(2_500_000);
        assert_eq!(s.executed_ns(), 2_500_000);
        assert_eq!(s.demand().unwrap()[Feature::UopsRetired], 50.0);
    }

    #[test]
    fn advance_past_end_is_harmless() {
        let mut s = PlanSource::new(plan());
        s.advance(10_000_000);
        assert!(s.finished());
        assert_eq!(s.executed_ns(), 3_000_000);
        s.advance(1);
        assert!(s.finished());
    }

    #[test]
    fn partial_advance_tracks_offset() {
        let mut s = PlanSource::new(plan());
        s.advance(400_000);
        s.advance(400_000);
        assert_eq!(s.executed_ns(), 800_000);
        assert!(!s.finished());
    }
}
