//! # aegis-sev
//!
//! A discrete-time simulator of an SEV-protected cloud host: physical
//! cores (from [`aegis_microarch`]), confidential guest VMs with vCPUs
//! pinned 1:1 to cores, and an honest-but-curious hypervisor.
//!
//! The simulator enforces exactly the confidentiality boundary of the
//! paper's threat model:
//!
//! * guest memory and (for SEV-ES+) register state are unreadable by the
//!   host ([`SevViolation`]);
//! * per-core HPC registers are *always* readable by the host — the side
//!   channel Aegis defends against;
//! * the protected application and the Event Obfuscator's injector run as
//!   activity sources on the same vCPU, indistinguishable to the host.
//!
//! Latency and CPU-usage overheads of injected noise fall out of the vCPU
//! capacity model: injected µops consume core throughput, slowing the app
//! plan and raising the VM's busy fraction.

mod attestation;
mod host;
mod policy;
mod source;

pub use attestation::{verify_attestation, AttestationError, AttestationReport};
pub use host::{Host, HostError, LaneGuest, VcpuStats, VmId, TICK_NS};
pub use policy::{SevMode, SevViolation};
pub use source::{ActivitySource, PlanSource, ProtectionStatus};
