//! The host: physical cores, guest VMs, and the discrete-time scheduler.

use crate::policy::{SevMode, SevViolation};
use crate::source::{ActivitySource, ProtectionStatus};
use aegis_faults::{self as faults, FaultPlan, FaultStream};
use aegis_microarch::{
    ActivityVector, Core, EventCatalog, EventId, Feature, MicroArch, Origin, OriginFilter,
};
use aegis_perf::{PerfError, Trace, TraceRecorder};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Scheduler tick: 100 µs of simulated time.
pub const TICK_NS: u64 = 100_000;

/// Consecutive unhealthy ticks before the supervision layer latches a
/// core's guest-visible counters fail-closed. Chosen well below the
/// attacker's 1 ms (10-tick) sampling interval, so no sample window can
/// complete entirely inside the detection gap.
pub const WATCHDOG_TICKS: u32 = 4;

/// Identifier of a launched VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VmId(pub u32);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Error operating the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// Not enough unassigned physical cores for the requested vCPUs.
    NoFreeCores,
    /// Unknown VM id.
    UnknownVm(VmId),
    /// vCPU index out of range for the VM.
    UnknownVcpu(VmId, usize),
    /// The SEV policy blocked the access (encrypted memory/registers).
    Sev(SevViolation),
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::NoFreeCores => f.write_str("not enough free physical cores"),
            HostError::UnknownVm(vm) => write!(f, "unknown VM {vm}"),
            HostError::UnknownVcpu(vm, v) => write!(f, "unknown vCPU {v} of {vm}"),
            HostError::Sev(v) => write!(f, "SEV policy violation: {v}"),
        }
    }
}

impl std::error::Error for HostError {}

impl From<SevViolation> for HostError {
    fn from(v: SevViolation) -> Self {
        HostError::Sev(v)
    }
}

/// Per-vCPU execution statistics, the basis of the paper's latency and
/// CPU-usage overhead measurements (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VcpuStats {
    /// µops executed by the protected application.
    pub app_uops: f64,
    /// µops executed by the injected noise gadgets.
    pub injected_uops: f64,
    /// Wall-clock (simulated) time at which the app plan completed.
    pub app_done_at_ns: Option<u64>,
}

struct Vcpu {
    core: usize,
    app: Option<Box<dyn ActivitySource>>,
    injector: Option<Box<dyn ActivitySource>>,
    stats: VcpuStats,
}

struct Vm {
    id: VmId,
    mode: SevMode,
    vcpus: Vec<Vcpu>,
    launched_at_ns: u64,
}

/// Per-core fault-injection and supervision state. The streams exist
/// only under an active plan (zero-draw guarantee); the watchdog
/// counters always exist — supervision is part of the defense, not of
/// the fault layer.
#[derive(Debug, Clone)]
struct CoreFaultState {
    inj_stream: Option<FaultStream>,
    tick_stream: Option<FaultStream>,
    /// Remaining ticks of the current injector stall episode.
    stall_left: u32,
    /// The injector detached permanently (crashed daemon process).
    detached: bool,
    /// Consecutive ticks the watchdog saw the injector denied cycles or
    /// self-reporting degraded.
    unhealthy_ticks: u32,
    /// Guest-visible counters on this core are currently latched closed.
    fail_closed: bool,
}

impl CoreFaultState {
    fn new(plan: &FaultPlan, core_idx: usize) -> Self {
        let active = plan.is_active();
        CoreFaultState {
            inj_stream: active
                .then(|| FaultStream::new(plan, faults::site::INJECTOR, core_idx as u64)),
            tick_stream: active
                .then(|| FaultStream::new(plan, faults::site::TICK, core_idx as u64)),
            stall_left: 0,
            detached: false,
            unhealthy_ticks: 0,
            fail_closed: false,
        }
    }
}

/// A simulated cloud host running confidential VMs.
///
/// The host owns the physical cores (and therefore all HPC registers): it
/// can program and read any counter — the honest-but-curious hypervisor of
/// the paper's threat model — but cannot read encrypted guest memory or
/// registers, and cannot separate the activity of processes pinned to the
/// same guest vCPU.
pub struct Host {
    arch: MicroArch,
    cores: Vec<Core>,
    assignment: Vec<Option<(usize, usize)>>, // core -> (vm_idx, vcpu_idx)
    vms: Vec<Vm>,
    clock_ns: u64,
    host_bg: ActivityVector,
    faults: FaultPlan,
    fault_state: Vec<CoreFaultState>,
}

impl Host {
    /// Creates a host with `n_cores` cores of the given model, under the
    /// ambient fault plan (see [`aegis_faults::plan`]).
    pub fn new(arch: MicroArch, n_cores: usize, seed: u64) -> Self {
        Host::with_faults(arch, n_cores, seed, faults::plan())
    }

    /// [`Host::new`] under an explicit fault plan. Per-core fault
    /// streams are keyed by `(plan.seed, site, core index)`, so the
    /// injected schedule is independent of worker count and of anything
    /// else running in the process.
    pub fn with_faults(arch: MicroArch, n_cores: usize, seed: u64, plan: FaultPlan) -> Self {
        let catalog = EventCatalog::shared(arch);
        let cores = (0..n_cores)
            .map(|i| Core::with_catalog(arch, Arc::clone(&catalog), seed.wrapping_add(i as u64)))
            .collect();
        // Light host-kernel background on every core.
        let host_bg = ActivityVector::from_pairs(&[
            (Feature::UopsRetired, 1.0),
            (Feature::InstrRetired, 0.8),
            (Feature::Loads, 0.2),
            (Feature::Cycles, 0.5),
            (Feature::Syscalls, 0.0005),
        ]);
        Host {
            arch,
            cores,
            assignment: vec![None; n_cores],
            vms: Vec::new(),
            clock_ns: 0,
            host_bg,
            faults: plan,
            fault_state: (0..n_cores).map(|i| CoreFaultState::new(&plan, i)).collect(),
        }
    }

    /// The fault plan this host was created under.
    pub fn faults(&self) -> FaultPlan {
        self.faults
    }

    /// Whether the supervision layer currently holds a core's
    /// guest-visible counters fail-closed.
    ///
    /// # Panics
    ///
    /// Panics if `core_idx` is out of range.
    pub fn core_fail_closed(&self, core_idx: usize) -> bool {
        self.fault_state[core_idx].fail_closed
    }

    /// Processor model of every core.
    pub fn arch(&self) -> MicroArch {
        self.arch
    }

    /// Number of physical cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Current simulated time.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Mutable access to a physical core (the host may do anything here,
    /// including programming HPC counters against guests).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn core_mut(&mut self, idx: usize) -> &mut Core {
        &mut self.cores[idx]
    }

    /// Shared access to a physical core.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn core(&self, idx: usize) -> &Core {
        &self.cores[idx]
    }

    /// Launches a VM with `n_vcpus` vCPUs, each pinned 1:1 to a free
    /// physical core.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::NoFreeCores`] if the host is over-committed.
    pub fn launch_vm(&mut self, n_vcpus: usize, mode: SevMode) -> Result<VmId, HostError> {
        let free: Vec<usize> = (0..self.cores.len())
            .filter(|&c| self.assignment[c].is_none())
            .take(n_vcpus)
            .collect();
        if free.len() < n_vcpus {
            return Err(HostError::NoFreeCores);
        }
        let id = VmId(self.vms.len() as u32);
        let vm_idx = self.vms.len();
        let vcpus = free
            .iter()
            .enumerate()
            .map(|(v, &core)| {
                self.assignment[core] = Some((vm_idx, v));
                Vcpu {
                    core,
                    app: None,
                    injector: None,
                    stats: VcpuStats::default(),
                }
            })
            .collect();
        self.vms.push(Vm {
            id,
            mode,
            vcpus,
            launched_at_ns: self.clock_ns,
        });
        Ok(id)
    }

    /// Launches a VM with its vCPUs pinned to the exact physical cores
    /// in `cores` (one vCPU per listed core, in order). This is the
    /// placement-scheduler entry point: fleet policies decide *which*
    /// core-pair slot a tenant lands on, rather than taking whatever
    /// [`Host::launch_vm`] picks first.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::NoFreeCores`] if `cores` is empty, any index
    /// is out of range, any listed core is already assigned, or the same
    /// core is listed twice.
    pub fn launch_vm_pinned(&mut self, cores: &[usize], mode: SevMode) -> Result<VmId, HostError> {
        if cores.is_empty() {
            return Err(HostError::NoFreeCores);
        }
        for (i, &c) in cores.iter().enumerate() {
            if c >= self.cores.len()
                || self.assignment[c].is_some()
                || cores[..i].contains(&c)
            {
                return Err(HostError::NoFreeCores);
            }
        }
        let id = VmId(self.vms.len() as u32);
        let vm_idx = self.vms.len();
        let vcpus = cores
            .iter()
            .enumerate()
            .map(|(v, &core)| {
                self.assignment[core] = Some((vm_idx, v));
                Vcpu {
                    core,
                    app: None,
                    injector: None,
                    stats: VcpuStats::default(),
                }
            })
            .collect();
        self.vms.push(Vm {
            id,
            mode,
            vcpus,
            launched_at_ns: self.clock_ns,
        });
        Ok(id)
    }

    fn vm(&self, vm: VmId) -> Result<&Vm, HostError> {
        self.vms
            .iter()
            .find(|v| v.id == vm)
            .ok_or(HostError::UnknownVm(vm))
    }

    fn vcpu_mut(&mut self, vm: VmId, vcpu: usize) -> Result<&mut Vcpu, HostError> {
        let v = self
            .vms
            .iter_mut()
            .find(|v| v.id == vm)
            .ok_or(HostError::UnknownVm(vm))?;
        v.vcpus
            .get_mut(vcpu)
            .ok_or(HostError::UnknownVcpu(vm, vcpu))
    }

    /// The protection mode a VM was launched with.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::UnknownVm`] for unknown ids.
    pub fn vm_mode(&self, vm: VmId) -> Result<SevMode, HostError> {
        self.vm(vm).map(|v| v.mode)
    }

    /// The physical core a vCPU is pinned to.
    ///
    /// # Errors
    ///
    /// Returns [`HostError`] for unknown ids.
    pub fn core_of(&self, vm: VmId, vcpu: usize) -> Result<usize, HostError> {
        let v = self.vm(vm)?;
        v.vcpus
            .get(vcpu)
            .map(|c| c.core)
            .ok_or(HostError::UnknownVcpu(vm, vcpu))
    }

    /// Runs the protected application `source` on a vCPU, replacing any
    /// previous app and clearing its completion time.
    ///
    /// # Errors
    ///
    /// Returns [`HostError`] for unknown ids.
    pub fn attach_app(
        &mut self,
        vm: VmId,
        vcpu: usize,
        source: Box<dyn ActivitySource>,
    ) -> Result<(), HostError> {
        let v = self.vcpu_mut(vm, vcpu)?;
        v.app = Some(source);
        v.stats.app_done_at_ns = None;
        Ok(())
    }

    /// Replicates this host's full microarchitectural state — cores
    /// (including their PMU, cache, and RNG state), VM topology, vCPU
    /// statistics, and the clock — *without* the attached activity
    /// sources. Apps and injectors are process-unique
    /// `Box<dyn ActivitySource>` values (some hold live channels) and are
    /// left detached in the fork; callers re-attach per-measurement
    /// sources, which is what every collection loop does anyway.
    ///
    /// This is the replication primitive behind parallel trace
    /// collection: each worker forks the prepared host once and replays
    /// its assigned (secret, rep) units against the pristine replica.
    pub fn fork_detached(&self) -> Host {
        Host {
            arch: self.arch,
            cores: self.cores.clone(),
            assignment: self.assignment.clone(),
            vms: self.vms.iter().map(Host::detached_vm).collect(),
            clock_ns: self.clock_ns,
            host_bg: self.host_bg,
            faults: self.faults,
            // Stream state forks with the host: a replica replays the
            // same fault schedule from the same point.
            fault_state: self.fault_state.clone(),
        }
    }

    /// [`Host::fork_detached`] into an existing `Host`, reusing its
    /// allocations (core vectors, VM topology, fault-stream state)
    /// instead of building a fresh replica. The result is identical to
    /// `*out = self.fork_detached()` — this is the arena-reuse form the
    /// collection loops call once per (secret, rep) unit, where the
    /// replica's buffers survive across thousands of forks per worker.
    pub fn fork_detached_into(&self, out: &mut Host) {
        out.arch = self.arch;
        out.cores.clone_from(&self.cores);
        out.assignment.clone_from(&self.assignment);
        out.vms.clear();
        out.vms.extend(self.vms.iter().map(Host::detached_vm));
        out.clock_ns = self.clock_ns;
        out.host_bg = self.host_bg;
        out.faults = self.faults;
        out.fault_state.clone_from(&self.fault_state);
    }

    /// A VM replicated without its process-unique activity sources (see
    /// [`Host::fork_detached`]).
    fn detached_vm(vm: &Vm) -> Vm {
        Vm {
            id: vm.id,
            mode: vm.mode,
            vcpus: vm
                .vcpus
                .iter()
                .map(|vc| Vcpu {
                    core: vc.core,
                    app: None,
                    injector: None,
                    stats: vc.stats,
                })
                .collect(),
            launched_at_ns: vm.launched_at_ns,
        }
    }

    /// Installs the Event Obfuscator's noise injector on the *same* vCPU
    /// as the protected application (the paper pins both together so the
    /// hypervisor cannot separate them).
    ///
    /// # Errors
    ///
    /// Returns [`HostError`] for unknown ids.
    pub fn attach_injector(
        &mut self,
        vm: VmId,
        vcpu: usize,
        source: Box<dyn ActivitySource>,
    ) -> Result<(), HostError> {
        self.vcpu_mut(vm, vcpu)?.injector = Some(source);
        Ok(())
    }

    /// Removes the injector from a vCPU.
    ///
    /// # Errors
    ///
    /// Returns [`HostError`] for unknown ids.
    pub fn detach_injector(&mut self, vm: VmId, vcpu: usize) -> Result<(), HostError> {
        self.vcpu_mut(vm, vcpu)?.injector = None;
        Ok(())
    }

    /// Whether an injector is currently attached to a vCPU.
    ///
    /// # Errors
    ///
    /// Returns [`HostError`] for unknown ids.
    pub fn has_injector(&self, vm: VmId, vcpu: usize) -> Result<bool, HostError> {
        let v = self.vm(vm)?;
        let vc = v.vcpus.get(vcpu).ok_or(HostError::UnknownVcpu(vm, vcpu))?;
        Ok(vc.injector.is_some())
    }

    /// The attached injector's self-reported protection health, or
    /// `None` when no injector is attached. This is the same poll the
    /// per-tick watchdog performs; the service plane samples it at its
    /// own (coarser) health-check cadence.
    ///
    /// # Errors
    ///
    /// Returns [`HostError`] for unknown ids.
    pub fn injector_status(
        &self,
        vm: VmId,
        vcpu: usize,
    ) -> Result<Option<ProtectionStatus>, HostError> {
        let v = self.vm(vm)?;
        let vc = v.vcpus.get(vcpu).ok_or(HostError::UnknownVcpu(vm, vcpu))?;
        Ok(vc.injector.as_ref().map(|i| i.protection_status()))
    }

    /// Mutable [`std::any::Any`] access to the attached injector, for
    /// supervisors that must drive a concrete source type after it was
    /// boxed into the host (the service plane downcasts this to the
    /// obfuscator daemon to stage hot reloads). `None` when no injector
    /// is attached or the source does not opt into supervision via
    /// [`ActivitySource::as_any_mut`].
    ///
    /// # Errors
    ///
    /// Returns [`HostError`] for unknown ids.
    pub fn injector_any_mut(
        &mut self,
        vm: VmId,
        vcpu: usize,
    ) -> Result<Option<&mut dyn std::any::Any>, HostError> {
        Ok(self
            .vcpu_mut(vm, vcpu)?
            .injector
            .as_mut()
            .and_then(|i| i.as_any_mut()))
    }

    /// Forces a core's fail-closed latch on or off, bypassing the
    /// watchdog's own unhealthy-tick accounting. The service plane uses
    /// this to deny a guest clean counter reads while no injector is
    /// attached (restart backoff, ε-budget exhaustion) — states the
    /// per-tick watchdog cannot see because it only supervises attached
    /// injectors. A forced latch obeys the normal release rule: it
    /// clears only through this call or once an attached injector runs
    /// healthy again.
    ///
    /// # Panics
    ///
    /// Panics if `core_idx` is out of range.
    pub fn set_core_fail_closed(&mut self, core_idx: usize, on: bool) {
        let fs = &mut self.fault_state[core_idx];
        if fs.fail_closed == on {
            return;
        }
        fs.fail_closed = on;
        fs.unhealthy_ticks = 0;
        self.cores[core_idx].pmu_mut().set_fail_closed(on);
        if on {
            aegis_obs::counter_add("host.fail_closed_latches", 1.0);
        }
    }

    /// Whether the vCPU's app plan has completed.
    ///
    /// # Errors
    ///
    /// Returns [`HostError`] for unknown ids.
    pub fn app_finished(&self, vm: VmId, vcpu: usize) -> Result<bool, HostError> {
        let v = self.vm(vm)?;
        let vc = v.vcpus.get(vcpu).ok_or(HostError::UnknownVcpu(vm, vcpu))?;
        Ok(vc.app.is_none() || vc.stats.app_done_at_ns.is_some())
    }

    /// Execution statistics of a vCPU.
    ///
    /// # Errors
    ///
    /// Returns [`HostError`] for unknown ids.
    pub fn vcpu_stats(&self, vm: VmId, vcpu: usize) -> Result<VcpuStats, HostError> {
        let v = self.vm(vm)?;
        v.vcpus
            .get(vcpu)
            .map(|c| c.stats)
            .ok_or(HostError::UnknownVcpu(vm, vcpu))
    }

    /// Zeroes a VM's execution statistics (start of a measurement window).
    ///
    /// # Errors
    ///
    /// Returns [`HostError`] for unknown ids.
    pub fn reset_vm_stats(&mut self, vm: VmId) -> Result<(), HostError> {
        let now = self.clock_ns;
        let v = self
            .vms
            .iter_mut()
            .find(|v| v.id == vm)
            .ok_or(HostError::UnknownVm(vm))?;
        v.launched_at_ns = now;
        for vc in &mut v.vcpus {
            vc.stats = VcpuStats::default();
        }
        Ok(())
    }

    /// VM CPU utilization since the last stats reset: fraction of the
    /// VM's total core capacity spent executing (app + injected noise) —
    /// what the paper measures from the host with `top`.
    ///
    /// # Errors
    ///
    /// Returns [`HostError`] for unknown ids.
    pub fn vm_cpu_usage(&self, vm: VmId) -> Result<f64, HostError> {
        let v = self.vm(vm)?;
        let elapsed_us = (self.clock_ns - v.launched_at_ns) as f64 / 1_000.0;
        if elapsed_us == 0.0 {
            return Ok(0.0);
        }
        let cap = self.arch.uops_capacity_per_us() * elapsed_us * v.vcpus.len() as f64;
        let used: f64 = v
            .vcpus
            .iter()
            .map(|c| c.stats.app_uops + c.stats.injected_uops)
            .sum();
        Ok(used / cap)
    }

    /// Attempts to read a guest's memory — fails for every SEV mode.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::Sev`] ([`SevViolation::MemoryEncrypted`])
    /// when the guest is protected, [`HostError::UnknownVm`] for
    /// unknown ids.
    pub fn read_guest_memory(&self, vm: VmId) -> Result<Vec<u8>, HostError> {
        let v = self.vm(vm)?;
        if v.mode.memory_readable_by_host() {
            Ok(vec![0u8; 4096])
        } else {
            Err(SevViolation::MemoryEncrypted.into())
        }
    }

    /// Attempts to read a guest's register state — fails for SEV-ES+.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::Sev`] ([`SevViolation::RegistersEncrypted`])
    /// when protected, [`HostError::UnknownVm`] for unknown ids.
    pub fn read_guest_registers(&self, vm: VmId) -> Result<Vec<u64>, HostError> {
        let v = self.vm(vm)?;
        if v.mode.registers_readable_by_host() {
            Ok(vec![0u64; 16])
        } else {
            Err(SevViolation::RegistersEncrypted.into())
        }
    }

    /// Advances simulated time by one tick on every core, then invokes
    /// `observer(core_idx, core, TICK_NS)` so monitors can sample.
    ///
    /// Under an active fault plan the tick also draws this core's
    /// per-tick faults (timing jitter, injector stall/detach) and runs
    /// the supervision layer: a watchdog counts consecutive ticks the
    /// injector was denied cycles or self-reported degraded, and after
    /// [`WATCHDOG_TICKS`] latches the core's guest-visible counters
    /// fail-closed (releasing the latch once the injector is healthy
    /// again). Fault draws come from per-core keyed streams, so the
    /// schedule is identical at any worker count; with an inert plan no
    /// draws happen and the tick is bit-identical to the unfaulted one.
    pub fn tick<F: FnMut(usize, &mut Core, u64)>(&mut self, mut observer: F) {
        for core_idx in 0..self.cores.len() {
            let core = &mut self.cores[core_idx];
            let fs = &mut self.fault_state[core_idx];
            // Host kernel background everywhere.
            core.run_mix(&self.host_bg, TICK_NS, Origin::Host);

            // Per-tick fault draws (no draws under an inert plan).
            let mut cap = self.arch.uops_capacity_per_us();
            if let Some(ts) = fs.tick_stream.as_mut() {
                if ts.chance(self.faults.tick_jitter) {
                    // Timing jitter: the tick loses up to half its
                    // usable capacity (frequency dip / SMT interference).
                    cap *= 0.5 + 0.5 * ts.unit();
                    faults::report("tick", "jitter", &[("core", core_idx as u64)]);
                }
            }
            if let Some(is) = fs.inj_stream.as_mut() {
                if !fs.detached && is.chance(self.faults.injector_detach) {
                    fs.detached = true;
                    faults::report("injector", "detach", &[("core", core_idx as u64)]);
                }
                if fs.stall_left == 0 && !fs.detached && is.chance(self.faults.injector_stall) {
                    fs.stall_left = self.faults.stall_ticks.max(1);
                    faults::report(
                        "injector",
                        "stall",
                        &[
                            ("core", core_idx as u64),
                            ("ticks", u64::from(self.faults.stall_ticks.max(1))),
                        ],
                    );
                }
            }
            // A stalled or detached injector is denied cycles this tick;
            // the in-guest kernel module (observe_coscheduled) still
            // runs — only the daemon's injection thread is dead.
            let stalled = fs.detached || fs.stall_left > 0;
            if fs.stall_left > 0 {
                fs.stall_left -= 1;
            }

            if let Some((vm_idx, vcpu_idx)) = self.assignment[core_idx] {
                let vm_id = self.vms[vm_idx].id;
                let vcpu = &mut self.vms[vm_idx].vcpus[vcpu_idx];

                let app_rate = vcpu
                    .app
                    .as_mut()
                    .and_then(ActivitySource::demand)
                    .unwrap_or(ActivityVector::ZERO);

                // The injector first observes the app's activity (the
                // kernel module's RDPMC monitoring), then runs at its
                // demanded rate with priority — the daemon inserts noise
                // inline, ahead of app progress.
                let inj_rate = vcpu
                    .injector
                    .as_mut()
                    .map(|inj| {
                        inj.observe_coscheduled(&app_rate, TICK_NS);
                        if stalled {
                            ActivityVector::ZERO
                        } else {
                            inj.demand().unwrap_or(ActivityVector::ZERO)
                        }
                    })
                    .unwrap_or(ActivityVector::ZERO);
                let inj_uops = inj_rate[Feature::UopsRetired].min(cap);
                let inj_scale = if inj_rate[Feature::UopsRetired] > cap {
                    cap / inj_rate[Feature::UopsRetired]
                } else {
                    1.0
                };
                let inj_exec = inj_rate.scaled(inj_scale);
                let app_uops = app_rate[Feature::UopsRetired];
                // The injector's code runs inline on the vCPU, so the app
                // timeshares: it loses exactly the cycle fraction the
                // injected gadget stacks occupy (plus a capacity clamp for
                // extreme injection rates). This is where the defense's
                // latency overhead comes from.
                let timeshare = (1.0 - inj_uops / cap).max(0.0);
                let remaining = (cap - inj_uops).max(0.0);
                let cap_scale = if app_uops > 0.0 && app_uops > remaining {
                    remaining / app_uops
                } else {
                    1.0
                };
                let app_scale = timeshare.min(cap_scale);
                let app_exec = app_rate.scaled(app_scale);

                if !inj_exec.is_zero() {
                    core.run_mix(&inj_exec, TICK_NS, Origin::Guest(vm_id.0));
                }
                if !app_exec.is_zero() {
                    core.run_mix(&app_exec, TICK_NS, Origin::Guest(vm_id.0));
                }

                let tick_us = TICK_NS as f64 / 1_000.0;
                vcpu.stats.injected_uops += inj_exec[Feature::UopsRetired] * tick_us;
                vcpu.stats.app_uops += app_exec[Feature::UopsRetired] * tick_us;

                let granted_inj_ns = if stalled {
                    0
                } else {
                    (TICK_NS as f64 * inj_scale) as u64
                };
                if let Some(inj) = vcpu.injector.as_mut() {
                    inj.advance(granted_inj_ns);
                    inj.note_execution(granted_inj_ns);
                }
                if let Some(app) = vcpu.app.as_mut() {
                    app.advance((TICK_NS as f64 * app_scale) as u64);
                    if app.demand().is_none() && vcpu.stats.app_done_at_ns.is_none() {
                        vcpu.stats.app_done_at_ns = Some(self.clock_ns + TICK_NS);
                    }
                }

                // Supervision: whenever an installed injector is denied
                // cycles or self-reports degraded, obfuscation on this
                // core cannot be guaranteed. After WATCHDOG_TICKS the
                // guest-visible counters latch fail-closed — absent,
                // never clean — until the injector is healthy again.
                if let Some(inj) = vcpu.injector.as_ref() {
                    let unhealthy = granted_inj_ns == 0
                        || inj.protection_status() == ProtectionStatus::Degraded;
                    if unhealthy {
                        fs.unhealthy_ticks += 1;
                        if fs.unhealthy_ticks >= WATCHDOG_TICKS && !fs.fail_closed {
                            fs.fail_closed = true;
                            core.pmu_mut().set_fail_closed(true);
                            aegis_obs::counter_add("host.fail_closed_latches", 1.0);
                            aegis_obs::event_with(
                                "fault",
                                "host.fail_closed",
                                &[
                                    ("core", core_idx.into()),
                                    ("clock_ns", self.clock_ns.into()),
                                ],
                            );
                        }
                    } else {
                        fs.unhealthy_ticks = 0;
                        if fs.fail_closed {
                            fs.fail_closed = false;
                            core.pmu_mut().set_fail_closed(false);
                            aegis_obs::event_with(
                                "fault",
                                "host.fail_closed_released",
                                &[
                                    ("core", core_idx.into()),
                                    ("clock_ns", self.clock_ns.into()),
                                ],
                            );
                        }
                    }
                }
            }
            observer(core_idx, core, TICK_NS);
        }
        self.clock_ns += TICK_NS;
    }

    /// Runs the host for `duration_ns` (rounded down to whole ticks).
    pub fn run<F: FnMut(usize, &mut Core, u64)>(&mut self, duration_ns: u64, mut observer: F) {
        for _ in 0..duration_ns / TICK_NS {
            self.tick(&mut observer);
        }
    }

    /// Runs until a vCPU's app completes or `timeout_ns` elapses; returns
    /// the wall time the app took, if it finished.
    ///
    /// # Errors
    ///
    /// Returns [`HostError`] for unknown ids.
    pub fn run_until_app_done(
        &mut self,
        vm: VmId,
        vcpu: usize,
        timeout_ns: u64,
    ) -> Result<Option<u64>, HostError> {
        let start = self.clock_ns;
        while self.clock_ns - start < timeout_ns {
            if self.app_finished(vm, vcpu)? {
                let stats = self.vcpu_stats(vm, vcpu)?;
                return Ok(stats.app_done_at_ns.map(|t| t - start));
            }
            self.tick(|_, _, _| {});
        }
        Ok(None)
    }

    /// Records an HPC trace on one physical core while the host runs —
    /// the malicious hypervisor's attack acquisition, or the profiler's
    /// measurement pass, depending on `filter`.
    ///
    /// # Errors
    ///
    /// Propagates [`PerfError`] from opening the monitor.
    pub fn record_trace(
        &mut self,
        core_idx: usize,
        events: &[EventId],
        filter: OriginFilter,
        interval_ns: u64,
        duration_ns: u64,
    ) -> Result<Trace, PerfError> {
        let mut rec = TraceRecorder::open_with_faults(
            &mut self.cores[core_idx],
            events,
            filter,
            interval_ns,
            self.faults,
        )?;
        for _ in 0..duration_ns / TICK_NS {
            self.tick(|idx, core, dur| {
                if idx == core_idx {
                    rec.on_executed(core, dur);
                }
            });
        }
        Ok(rec.finish(&mut self.cores[core_idx]))
    }

    /// Records HPC traces on several physical cores over the *same* run
    /// — the cross-tenant attacker's acquisition: a malicious hypervisor
    /// programming counters on both siblings of an SMT core pair (or any
    /// core set) and sampling them in lockstep. Returns one [`Trace`]
    /// per entry of `core_idxs`, in order, all covering the identical
    /// simulated window.
    ///
    /// # Errors
    ///
    /// Propagates [`PerfError`] from opening any monitor (recorders
    /// opened before the failure are dropped and release their slots).
    ///
    /// # Panics
    ///
    /// Panics if `core_idxs` contains duplicates or an out-of-range
    /// index.
    pub fn record_trace_multi(
        &mut self,
        core_idxs: &[usize],
        events: &[EventId],
        filter: OriginFilter,
        interval_ns: u64,
        duration_ns: u64,
    ) -> Result<Vec<Trace>, PerfError> {
        for (i, &c) in core_idxs.iter().enumerate() {
            assert!(c < self.cores.len(), "core index {c} out of range");
            assert!(!core_idxs[..i].contains(&c), "duplicate core index {c}");
        }
        let mut recs = Vec::with_capacity(core_idxs.len());
        for &c in core_idxs {
            recs.push(TraceRecorder::open_with_faults(
                &mut self.cores[c],
                events,
                filter,
                interval_ns,
                self.faults,
            )?);
        }
        for _ in 0..duration_ns / TICK_NS {
            self.tick(|idx, core, dur| {
                if let Some(pos) = core_idxs.iter().position(|&c| c == idx) {
                    recs[pos].on_executed(core, dur);
                }
            });
        }
        Ok(core_idxs
            .iter()
            .zip(recs)
            .map(|(&c, rec)| rec.finish(&mut self.cores[c]))
            .collect())
    }

    /// The `(vm, vcpu)` currently scheduled on a physical core, if any —
    /// how the batched measurement plane learns which lane sources feed
    /// which recorded core.
    ///
    /// # Panics
    ///
    /// Panics if `core_idx` is out of range.
    pub fn assignment_of(&self, core_idx: usize) -> Option<(VmId, usize)> {
        self.assignment[core_idx].map(|(vm_idx, vcpu_idx)| (self.vms[vm_idx].id, vcpu_idx))
    }

    /// Records [`Host::record_trace_multi`] for many independent replicas
    /// of this host at once — the lane-batched fleet acquisition path.
    ///
    /// Each entry of `lanes` describes one replica: the activity sources
    /// (app plan, obfuscator) that replica would have attached to the
    /// vCPU scheduled on each recorded core, aligned with `core_idxs`.
    /// Instead of `fork_detached`-ing a full host per replica, the driver
    /// snapshots only the recorded cores into [`CoreBatch`] lane groups
    /// ([`CoreBatch::from_core_state`]) and replays the scheduler tick on
    /// those lanes alone. This is bit-exact because the tick has **zero
    /// cross-core coupling**: each core's mix execution, fault draws
    /// (keyed per core index), guest arithmetic, and watchdog read and
    /// write only that core's state, so eliding the unrecorded cores of a
    /// detached fork cannot change what the recorded cores observe. The
    /// scalar `record_trace_multi`-over-forks path remains the bit-exact
    /// reference, pinned by proptests in this crate.
    ///
    /// Lanes are tiled into cache-sized blocks
    /// ([`CoreBatch::TILE_LANES`] lanes across the group) and the tick
    /// body below mirrors [`Host::tick`] line for line — keep the two in
    /// sync.
    ///
    /// Returns one `Vec<Trace>` per lane (ordered as `core_idxs`), all
    /// covering the identical simulated window. The host itself is not
    /// advanced — exactly like recording on throwaway forks.
    ///
    /// # Errors
    ///
    /// Propagates [`PerfError`] from opening any monitor. The fault
    /// schedule is keyed by core noise bases shared across replicas, so
    /// an open failure is common to every lane — exactly as every scalar
    /// fork would hit it.
    ///
    /// # Panics
    ///
    /// Panics if `core_idxs` contains duplicates or an out-of-range
    /// index, or if a `lanes` row is not aligned with `core_idxs`.
    pub fn record_trace_multi_batch(
        &self,
        core_idxs: &[usize],
        mut lanes: Vec<Vec<LaneGuest>>,
        events: &[EventId],
        filter: OriginFilter,
        interval_ns: u64,
        duration_ns: u64,
    ) -> Result<Vec<Vec<Trace>>, PerfError> {
        for (i, &c) in core_idxs.iter().enumerate() {
            assert!(c < self.cores.len(), "core index {c} out of range");
            assert!(!core_idxs[..i].contains(&c), "duplicate core index {c}");
        }
        for row in &lanes {
            assert_eq!(row.len(), core_idxs.len(), "lane row not aligned with core_idxs");
        }
        if lanes.is_empty() {
            return Ok(Vec::new());
        }
        // Process recorded cores in ascending core order, like the scalar
        // tick does (lanes are core-independent, so this only matters for
        // observability ordering); results are emitted in `core_idxs`
        // order.
        let mut order: Vec<usize> = (0..core_idxs.len()).collect();
        order.sort_by_key(|&pos| core_idxs[pos]);
        let group_width = core_idxs.len();
        let tile = (aegis_microarch::CoreBatch::TILE_LANES / group_width).max(1);
        let n_lanes = lanes.len();
        let mut out: Vec<Vec<Trace>> = Vec::with_capacity(n_lanes);
        let mut batches: Vec<aegis_microarch::CoreBatch> = core_idxs
            .iter()
            .map(|&c| aegis_microarch::CoreBatch::from_core_state(&self.cores[c], 0))
            .collect();
        let mut start = 0;
        while start < n_lanes {
            let width = tile.min(n_lanes - start);
            let guests: Vec<Vec<LaneGuest>> = lanes.drain(..width).collect();
            for (pos, &c) in core_idxs.iter().enumerate() {
                batches[pos].reset_from_core_state(&self.cores[c], width);
            }
            let traces = self.run_lane_tile(core_idxs, &order, &mut batches, guests, events,
                filter, interval_ns, duration_ns)?;
            out.extend(traces);
            start += width;
        }
        Ok(out)
    }

    /// One tile of [`Host::record_trace_multi_batch`]: `batches[pos]`
    /// holds `guests.len()` lanes snapshot from `core_idxs[pos]`.
    #[allow(clippy::too_many_arguments)]
    fn run_lane_tile(
        &self,
        core_idxs: &[usize],
        order: &[usize],
        batches: &mut [aegis_microarch::CoreBatch],
        mut guests: Vec<Vec<LaneGuest>>,
        events: &[EventId],
        filter: OriginFilter,
        interval_ns: u64,
        duration_ns: u64,
    ) -> Result<Vec<Vec<Trace>>, PerfError> {
        use aegis_perf::LaneTraceRecorder;
        let width = guests.len();
        // Recorders open in `core_idxs` order, exactly like the scalar
        // multi-core open loop (first failure propagates).
        let mut recs: Vec<Option<LaneTraceRecorder>> = Vec::with_capacity(core_idxs.len());
        for batch in batches.iter_mut() {
            recs.push(Some(LaneTraceRecorder::open(
                batch,
                events,
                filter,
                interval_ns,
                self.faults,
            )?));
        }
        // Per-(lane, core) supervision/fault state: every replica forks
        // the host's current per-core state, then diverges independently.
        let mut lane_fs: Vec<Vec<CoreFaultState>> = (0..width)
            .map(|_| core_idxs.iter().map(|&c| self.fault_state[c].clone()).collect())
            .collect();
        let mut app_done: Vec<Vec<Option<u64>>> = vec![vec![None; core_idxs.len()]; width];
        let mut clock_ns = self.clock_ns;
        for _ in 0..duration_ns / TICK_NS {
            for &pos in order {
                let core_idx = core_idxs[pos];
                let batch = &mut batches[pos];
                let assignment = self.assignment[core_idx];
                let vm_id = assignment.map(|(vm_idx, _)| self.vms[vm_idx].id);
                for lane in 0..width {
                    let fs = &mut lane_fs[lane][pos];
                    // ---- mirror of Host::tick, one core, one replica ----
                    batch.run_mix(lane, &self.host_bg, TICK_NS, Origin::Host);

                    let mut cap = self.arch.uops_capacity_per_us();
                    if let Some(ts) = fs.tick_stream.as_mut() {
                        if ts.chance(self.faults.tick_jitter) {
                            cap *= 0.5 + 0.5 * ts.unit();
                            faults::report("tick", "jitter", &[("core", core_idx as u64)]);
                        }
                    }
                    if let Some(is) = fs.inj_stream.as_mut() {
                        if !fs.detached && is.chance(self.faults.injector_detach) {
                            fs.detached = true;
                            faults::report("injector", "detach", &[("core", core_idx as u64)]);
                        }
                        if fs.stall_left == 0
                            && !fs.detached
                            && is.chance(self.faults.injector_stall)
                        {
                            fs.stall_left = self.faults.stall_ticks.max(1);
                            faults::report(
                                "injector",
                                "stall",
                                &[
                                    ("core", core_idx as u64),
                                    ("ticks", u64::from(self.faults.stall_ticks.max(1))),
                                ],
                            );
                        }
                    }
                    let stalled = fs.detached || fs.stall_left > 0;
                    if fs.stall_left > 0 {
                        fs.stall_left -= 1;
                    }

                    if assignment.is_some() {
                        let vm_id = vm_id.expect("assignment implies a VM");
                        let guest = &mut guests[lane][pos];

                        let app_rate = guest
                            .app
                            .as_mut()
                            .and_then(|a| a.demand())
                            .unwrap_or(ActivityVector::ZERO);

                        let inj_rate = guest
                            .injector
                            .as_mut()
                            .map(|inj| {
                                inj.observe_coscheduled(&app_rate, TICK_NS);
                                if stalled {
                                    ActivityVector::ZERO
                                } else {
                                    inj.demand().unwrap_or(ActivityVector::ZERO)
                                }
                            })
                            .unwrap_or(ActivityVector::ZERO);
                        let inj_uops = inj_rate[Feature::UopsRetired].min(cap);
                        let inj_scale = if inj_rate[Feature::UopsRetired] > cap {
                            cap / inj_rate[Feature::UopsRetired]
                        } else {
                            1.0
                        };
                        let inj_exec = inj_rate.scaled(inj_scale);
                        let app_uops = app_rate[Feature::UopsRetired];
                        let timeshare = (1.0 - inj_uops / cap).max(0.0);
                        let remaining = (cap - inj_uops).max(0.0);
                        let cap_scale = if app_uops > 0.0 && app_uops > remaining {
                            remaining / app_uops
                        } else {
                            1.0
                        };
                        let app_scale = timeshare.min(cap_scale);
                        let app_exec = app_rate.scaled(app_scale);

                        if !inj_exec.is_zero() {
                            batch.run_mix(lane, &inj_exec, TICK_NS, Origin::Guest(vm_id.0));
                        }
                        if !app_exec.is_zero() {
                            batch.run_mix(lane, &app_exec, TICK_NS, Origin::Guest(vm_id.0));
                        }

                        // Replica vCPU stats are discarded with the fork;
                        // the app-done probe still runs because a second
                        // `demand()` advances stateful sources exactly as
                        // the scalar tick does.
                        let granted_inj_ns = if stalled {
                            0
                        } else {
                            (TICK_NS as f64 * inj_scale) as u64
                        };
                        if let Some(inj) = guest.injector.as_mut() {
                            inj.advance(granted_inj_ns);
                            inj.note_execution(granted_inj_ns);
                        }
                        if let Some(app) = guest.app.as_mut() {
                            app.advance((TICK_NS as f64 * app_scale) as u64);
                            if app.demand().is_none() && app_done[lane][pos].is_none() {
                                app_done[lane][pos] = Some(clock_ns + TICK_NS);
                            }
                        }

                        if let Some(inj) = guest.injector.as_ref() {
                            let unhealthy = granted_inj_ns == 0
                                || inj.protection_status() == ProtectionStatus::Degraded;
                            if unhealthy {
                                fs.unhealthy_ticks += 1;
                                if fs.unhealthy_ticks >= WATCHDOG_TICKS && !fs.fail_closed {
                                    fs.fail_closed = true;
                                    batch.set_fail_closed(lane, true);
                                    aegis_obs::counter_add("host.fail_closed_latches", 1.0);
                                    aegis_obs::event_with(
                                        "fault",
                                        "host.fail_closed",
                                        &[
                                            ("core", core_idx.into()),
                                            ("clock_ns", clock_ns.into()),
                                        ],
                                    );
                                }
                            } else {
                                fs.unhealthy_ticks = 0;
                                if fs.fail_closed {
                                    fs.fail_closed = false;
                                    batch.set_fail_closed(lane, false);
                                    aegis_obs::event_with(
                                        "fault",
                                        "host.fail_closed_released",
                                        &[
                                            ("core", core_idx.into()),
                                            ("clock_ns", clock_ns.into()),
                                        ],
                                    );
                                }
                            }
                        }
                    }
                    // ---- end mirror ----
                }
                recs[pos]
                    .as_mut()
                    .expect("recorder present until finish")
                    .on_executed(batch, TICK_NS);
            }
            clock_ns += TICK_NS;
        }
        let per_core: Vec<Vec<Trace>> = recs
            .iter_mut()
            .zip(batches.iter_mut())
            .map(|(rec, batch)| rec.take().expect("finished once").finish(batch))
            .collect();
        Ok((0..width)
            .map(|lane| per_core.iter().map(|traces| traces[lane].clone()).collect())
            .collect())
    }
}

/// The per-replica activity sources of one recorded core in a
/// [`Host::record_trace_multi_batch`] call: what that replica would have
/// attached (via [`Host::attach_app`] / [`Host::attach_injector`]) to the
/// vCPU scheduled there. Cores without a scheduled vCPU ignore their
/// entry.
#[derive(Default)]
pub struct LaneGuest {
    /// The protected application's activity source, if any.
    pub app: Option<Box<dyn ActivitySource>>,
    /// The obfuscator daemon's activity source, if any.
    pub injector: Option<Box<dyn ActivitySource>>,
}

impl fmt::Debug for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Host")
            .field("arch", &self.arch)
            .field("n_cores", &self.cores.len())
            .field("n_vms", &self.vms.len())
            .field("clock_ns", &self.clock_ns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::PlanSource;
    use aegis_microarch::named;
    use aegis_workloads::{MixSpec, Segment, WorkloadPlan};

    fn steady_plan(uops_per_us: f64, dur_ns: u64) -> WorkloadPlan {
        let mut spec = MixSpec::idle();
        spec.uops_per_us = uops_per_us;
        let mut p = WorkloadPlan::new();
        p.push(Segment::new(dur_ns, spec.build()));
        p
    }

    fn host_with_vm() -> (Host, VmId) {
        let mut host = Host::new(MicroArch::AmdEpyc7252, 8, 3);
        let vm = host.launch_vm(4, SevMode::SevSnp).unwrap();
        (host, vm)
    }

    #[test]
    fn launch_assigns_distinct_cores() {
        let (host, vm) = host_with_vm();
        let cores: Vec<usize> = (0..4).map(|v| host.core_of(vm, v).unwrap()).collect();
        let mut sorted = cores.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn overcommit_rejected() {
        let mut host = Host::new(MicroArch::AmdEpyc7252, 2, 3);
        assert_eq!(host.launch_vm(3, SevMode::Sev), Err(HostError::NoFreeCores));
    }

    #[test]
    fn sev_blocks_memory_but_not_hpcs() {
        let (mut host, vm) = host_with_vm();
        assert_eq!(
            host.read_guest_memory(vm),
            Err(HostError::Sev(SevViolation::MemoryEncrypted))
        );
        assert_eq!(
            host.read_guest_registers(vm),
            Err(HostError::Sev(SevViolation::RegistersEncrypted))
        );
        assert_eq!(
            host.read_guest_memory(VmId(99)),
            Err(HostError::UnknownVm(VmId(99)))
        );
        // But the host can happily monitor HPCs of the guest's core.
        let core = host.core_of(vm, 0).unwrap();
        let ev = host
            .core(core)
            .catalog()
            .lookup(named::RETIRED_UOPS)
            .unwrap();
        host.attach_app(
            vm,
            0,
            Box::new(PlanSource::new(steady_plan(500.0, 10_000_000))),
        )
        .unwrap();
        let trace = host
            .record_trace(core, &[ev], OriginFilter::Any, 1_000_000, 5_000_000)
            .unwrap();
        assert!(trace.totals()[0] > 1_000_000.0, "{:?}", trace.totals());
    }

    #[test]
    fn unencrypted_vm_is_fully_readable() {
        let mut host = Host::new(MicroArch::AmdEpyc7252, 2, 3);
        let vm = host.launch_vm(1, SevMode::Unencrypted).unwrap();
        assert!(host.read_guest_memory(vm).is_ok());
        assert!(host.read_guest_registers(vm).is_ok());
    }

    #[test]
    fn app_completes_in_nominal_time_without_contention() {
        let (mut host, vm) = host_with_vm();
        host.attach_app(
            vm,
            0,
            Box::new(PlanSource::new(steady_plan(500.0, 100_000_000))),
        )
        .unwrap();
        let took = host
            .run_until_app_done(vm, 0, 1_000_000_000)
            .unwrap()
            .expect("app finishes");
        // 100 ms plan at 500/4000 capacity → finishes in ~100 ms.
        assert!(
            (took as i64 - 100_000_000).unsigned_abs() <= 2 * TICK_NS,
            "{took}"
        );
    }

    #[test]
    fn injection_slows_a_saturating_app() {
        // App demanding the full core: any injection extends its runtime.
        let (mut host, vm) = host_with_vm();
        let cap = host.arch().uops_capacity_per_us();
        host.attach_app(
            vm,
            0,
            Box::new(PlanSource::new(steady_plan(cap, 100_000_000))),
        )
        .unwrap();
        // Injector consuming 20% of capacity forever.
        let mut inj_spec = MixSpec::idle();
        inj_spec.uops_per_us = cap * 0.2;
        let mut inj_plan = WorkloadPlan::new();
        inj_plan.push(Segment::new(u64::MAX / 2, inj_spec.build()));
        host.attach_injector(vm, 0, Box::new(PlanSource::new(inj_plan)))
            .unwrap();
        let took = host
            .run_until_app_done(vm, 0, 2_000_000_000)
            .unwrap()
            .expect("app finishes");
        let slowdown = took as f64 / 100_000_000.0;
        assert!((1.2..1.35).contains(&slowdown), "slowdown {slowdown}");
    }

    #[test]
    fn cpu_usage_reflects_injection() {
        let (mut host, vm) = host_with_vm();
        host.attach_app(
            vm,
            0,
            Box::new(PlanSource::new(steady_plan(400.0, 1_000_000_000))),
        )
        .unwrap();
        host.reset_vm_stats(vm).unwrap();
        host.run(200_000_000, |_, _, _| {});
        let base = host.vm_cpu_usage(vm).unwrap();
        // Now add an injector at 400 uops/us on the same vCPU.
        let mut inj_spec = MixSpec::idle();
        inj_spec.uops_per_us = 400.0;
        let mut inj_plan = WorkloadPlan::new();
        inj_plan.push(Segment::new(u64::MAX / 2, inj_spec.build()));
        host.attach_injector(vm, 0, Box::new(PlanSource::new(inj_plan)))
            .unwrap();
        host.reset_vm_stats(vm).unwrap();
        host.run(200_000_000, |_, _, _| {});
        let with_inj = host.vm_cpu_usage(vm).unwrap();
        assert!(
            (with_inj - 2.0 * base).abs() / base < 0.3,
            "base {base} with_inj {with_inj}"
        );
    }

    #[test]
    fn stats_track_app_and_injection_separately() {
        let (mut host, vm) = host_with_vm();
        host.attach_app(
            vm,
            0,
            Box::new(PlanSource::new(steady_plan(100.0, 50_000_000))),
        )
        .unwrap();
        host.run(50_000_000, |_, _, _| {});
        let s = host.vcpu_stats(vm, 0).unwrap();
        assert!(s.app_uops > 4_000_000.0, "{}", s.app_uops);
        assert_eq!(s.injected_uops, 0.0);
    }

    #[test]
    fn clock_advances_by_ticks() {
        let (mut host, _) = host_with_vm();
        host.run(1_000_000, |_, _, _| {});
        assert_eq!(host.clock_ns(), 1_000_000);
    }

    fn forever_plan(uops_per_us: f64) -> WorkloadPlan {
        let mut spec = MixSpec::idle();
        spec.uops_per_us = uops_per_us;
        let mut p = WorkloadPlan::new();
        p.push(Segment::new(u64::MAX / 2, spec.build()));
        p
    }

    #[test]
    fn stall_episodes_latch_and_release_fail_closed() {
        let plan = FaultPlan {
            seed: 9,
            injector_stall: 0.05,
            stall_ticks: 8,
            ..FaultPlan::none()
        };
        let mut host = Host::with_faults(MicroArch::AmdEpyc7252, 2, 3, plan);
        let vm = host.launch_vm(1, SevMode::SevSnp).unwrap();
        host.attach_injector(vm, 0, Box::new(PlanSource::new(forever_plan(50.0))))
            .unwrap();
        let core = host.core_of(vm, 0).unwrap();
        let (mut latched, mut released, mut prev) = (0u32, 0u32, false);
        for _ in 0..2_000 {
            host.tick(|_, _, _| {});
            let now = host.core_fail_closed(core);
            if now && !prev {
                latched += 1;
            }
            if !now && prev {
                released += 1;
            }
            prev = now;
        }
        // 8-tick stall episodes at p=0.05/tick: the 4-tick watchdog must
        // both latch during episodes and release between them.
        assert!(latched > 10, "latched {latched} times");
        assert!(released > 10, "released {released} times");
        assert!(!host.core_fail_closed(1), "un-injected core never latches");
    }

    #[test]
    fn detach_latches_fail_closed_permanently() {
        let plan = FaultPlan {
            seed: 2,
            injector_detach: 1.0,
            ..FaultPlan::none()
        };
        let mut host = Host::with_faults(MicroArch::AmdEpyc7252, 2, 3, plan);
        let vm = host.launch_vm(1, SevMode::SevSnp).unwrap();
        host.attach_injector(vm, 0, Box::new(PlanSource::new(forever_plan(50.0))))
            .unwrap();
        let core = host.core_of(vm, 0).unwrap();
        for _ in 0..WATCHDOG_TICKS {
            assert!(!host.core_fail_closed(core));
            host.tick(|_, _, _| {});
        }
        assert!(host.core_fail_closed(core), "latched after WATCHDOG_TICKS");
        for _ in 0..100 {
            host.tick(|_, _, _| {});
            assert!(host.core_fail_closed(core), "detach never heals");
        }
        // Fail-closed means the PMU lane itself reads zero.
        assert!(host.core(core).pmu().fail_closed());
    }

    #[test]
    fn faulted_host_replays_bit_identically() {
        let run = || {
            let plan = FaultPlan {
                seed: 31,
                injector_stall: 0.1,
                stall_ticks: 5,
                tick_jitter: 0.2,
                counter_corrupt: 0.1,
                ..FaultPlan::none()
            };
            let mut host = Host::with_faults(MicroArch::AmdEpyc7252, 2, 3, plan);
            let vm = host.launch_vm(1, SevMode::SevSnp).unwrap();
            host.attach_app(
                vm,
                0,
                Box::new(PlanSource::new(steady_plan(300.0, 50_000_000))),
            )
            .unwrap();
            host.attach_injector(vm, 0, Box::new(PlanSource::new(forever_plan(80.0))))
                .unwrap();
            let core = host.core_of(vm, 0).unwrap();
            let ev = host
                .core(core)
                .catalog()
                .lookup(named::RETIRED_UOPS)
                .unwrap();
            host.record_trace(core, &[ev], OriginFilter::Any, 1_000_000, 20_000_000)
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fork_detached_into_matches_fork_detached() {
        let (mut host, vm) = host_with_vm();
        host.attach_app(
            vm,
            0,
            Box::new(PlanSource::new(steady_plan(300.0, 20_000_000))),
        )
        .unwrap();
        for _ in 0..50 {
            host.tick(|_, _, _| {});
        }
        let core = host.core_of(vm, 0).unwrap();
        let ev = host
            .core(core)
            .catalog()
            .lookup(named::RETIRED_UOPS)
            .unwrap();

        let mut fresh = host.fork_detached();
        // A dirty arena — a replica that already ran its own measurements
        // — must be overwritten completely by the in-place fork.
        let mut arena = host.fork_detached();
        arena
            .attach_app(
                vm,
                0,
                Box::new(PlanSource::new(steady_plan(900.0, 5_000_000))),
            )
            .unwrap();
        let _ = arena.record_trace(core, &[ev], OriginFilter::Any, 500_000, 3_000_000);
        host.fork_detached_into(&mut arena);
        assert_eq!(fresh.clock_ns(), arena.clock_ns());

        let measure = |h: &mut Host| {
            h.attach_app(
                vm,
                0,
                Box::new(PlanSource::new(steady_plan(300.0, 20_000_000))),
            )
            .unwrap();
            h.record_trace(core, &[ev], OriginFilter::Any, 1_000_000, 10_000_000)
                .unwrap()
        };
        assert_eq!(measure(&mut fresh), measure(&mut arena));
    }

    #[test]
    fn forced_fail_closed_latch_is_permanent_without_injector() {
        let (mut host, vm) = host_with_vm();
        let core = host.core_of(vm, 0).unwrap();
        assert!(!host.has_injector(vm, 0).unwrap());
        assert_eq!(host.injector_status(vm, 0).unwrap(), None);

        // Force the latch with nothing attached: no watchdog poll ever
        // runs on this core, so the latch holds indefinitely.
        host.set_core_fail_closed(core, true);
        for _ in 0..100 {
            host.tick(|_, _, _| {});
            assert!(host.core_fail_closed(core));
            assert!(host.core(core).pmu().fail_closed());
        }

        // A healthy injector releases the forced latch through the
        // normal watchdog path: demonstrated health, not mere attach.
        host.attach_injector(vm, 0, Box::new(PlanSource::new(forever_plan(50.0))))
            .unwrap();
        assert!(host.has_injector(vm, 0).unwrap());
        assert_eq!(
            host.injector_status(vm, 0).unwrap(),
            Some(ProtectionStatus::Healthy)
        );
        host.tick(|_, _, _| {});
        assert!(!host.core_fail_closed(core), "healthy run releases");

        // Idempotent off.
        host.set_core_fail_closed(core, false);
        assert!(!host.core_fail_closed(core));
    }

    #[test]
    fn injector_any_mut_is_none_for_opaque_sources() {
        let (mut host, vm) = host_with_vm();
        assert!(host.injector_any_mut(vm, 0).unwrap().is_none());
        host.attach_injector(vm, 0, Box::new(PlanSource::new(forever_plan(10.0))))
            .unwrap();
        // PlanSource does not opt into supervision.
        assert!(host.injector_any_mut(vm, 0).unwrap().is_none());
        assert!(matches!(
            host.injector_any_mut(VmId(99), 0),
            Err(HostError::UnknownVm(_))
        ));
    }

    #[test]
    fn unknown_ids_error() {
        let (mut host, vm) = host_with_vm();
        assert!(matches!(
            host.core_of(VmId(99), 0),
            Err(HostError::UnknownVm(_))
        ));
        assert!(matches!(
            host.attach_app(vm, 17, Box::new(PlanSource::new(WorkloadPlan::new()))),
            Err(HostError::UnknownVcpu(_, 17))
        ));
    }

    /// Builds the cross-tenant recording shape: attacker pinned on core
    /// 0 (idle), victim on the sibling core 1, a decoy tenant on the
    /// unrecorded core 2, with the host warmed a little so lane state is
    /// replicated mid-stream. Returns the host and the victim/decoy ids.
    fn fleet_shaped_host(arch: MicroArch, seed: u64, plan: FaultPlan) -> (Host, VmId, VmId) {
        let mut host = Host::with_faults(arch, 4, seed, plan);
        let _attacker = host.launch_vm_pinned(&[0], SevMode::SevSnp).unwrap();
        let victim = host.launch_vm_pinned(&[1], SevMode::SevSnp).unwrap();
        let decoy = host.launch_vm_pinned(&[2], SevMode::SevSnp).unwrap();
        for _ in 0..7 {
            host.tick(|_, _, _| {});
        }
        (host, victim, decoy)
    }

    /// Per-lane scalar reference: fork the host, attach the lane's
    /// sources (plus decoy sources on the *unrecorded* core, which the
    /// batched path elides entirely), record the pair.
    #[allow(clippy::type_complexity)]
    fn scalar_pair_traces(
        host: &Host,
        victim: VmId,
        decoy: VmId,
        lane: u64,
        interval_ns: u64,
        window_ns: u64,
    ) -> Result<Vec<Trace>, PerfError> {
        let events = host.core(0).catalog().attack_events();
        let mut replica = host.fork_detached();
        replica
            .attach_app(
                victim,
                0,
                Box::new(PlanSource::new(steady_plan(200.0 + 13.0 * lane as f64, window_ns))),
            )
            .unwrap();
        replica
            .attach_injector(
                victim,
                0,
                Box::new(PlanSource::new(forever_plan(40.0 + 7.0 * lane as f64))),
            )
            .unwrap();
        replica
            .attach_app(
                decoy,
                0,
                Box::new(PlanSource::new(steady_plan(500.0, window_ns))),
            )
            .unwrap();
        replica.record_trace_multi(&[0, 1], &events, OriginFilter::Any, interval_ns, window_ns)
    }

    fn batched_pair_traces(
        host: &Host,
        n_lanes: usize,
        interval_ns: u64,
        window_ns: u64,
    ) -> Result<Vec<Vec<Trace>>, PerfError> {
        let events = host.core(0).catalog().attack_events();
        let lanes: Vec<Vec<LaneGuest>> = (0..n_lanes as u64)
            .map(|lane| {
                vec![
                    LaneGuest::default(),
                    LaneGuest {
                        app: Some(Box::new(PlanSource::new(steady_plan(
                            200.0 + 13.0 * lane as f64,
                            window_ns,
                        )))),
                        injector: Some(Box::new(PlanSource::new(forever_plan(
                            40.0 + 7.0 * lane as f64,
                        )))),
                    },
                ]
            })
            .collect();
        host.record_trace_multi_batch(
            &[0, 1],
            lanes,
            &events,
            OriginFilter::Any,
            interval_ns,
            window_ns,
        )
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        /// Tentpole invariant: the lane-batched multi-core recording is
        /// bit-equal to the scalar fork-per-replica reference on every
        /// model, at arbitrary lane widths (crossing tile boundaries),
        /// under both the inert and the smoke fault plan.
        #[test]
        fn batched_recording_bit_matches_scalar_forks(
            arch_ix in 0usize..MicroArch::ALL.len(),
            seed in 0u64..1 << 40,
            n_lanes in 1usize..40,
            smoke_ix in 0usize..2,
        ) {
            let smoke = smoke_ix == 1;
            let plan = if smoke { FaultPlan::smoke() } else { FaultPlan::none() };
            let (host, victim, decoy) = fleet_shaped_host(MicroArch::ALL[arch_ix], seed, plan);
            let batched = batched_pair_traces(&host, n_lanes, 1_000_000, 3_000_000).unwrap();
            proptest::prop_assert_eq!(batched.len(), n_lanes);
            for (lane, got) in batched.iter().enumerate() {
                let want = scalar_pair_traces(
                    &host, victim, decoy, lane as u64, 1_000_000, 3_000_000,
                ).unwrap();
                for (pos, (w, g)) in want.iter().zip(got).enumerate() {
                    proptest::prop_assert_eq!(
                        &w.data, &g.data,
                        "lane {} core-pos {} diverged (smoke={})", lane, pos, smoke
                    );
                }
            }
        }
    }

    /// Fault-latch parity: under a stall-heavy plan the watchdog latches
    /// (and releases) fail-closed *inside* the recording window; the
    /// batched per-lane latch must replay the scalar one bit-exactly,
    /// and the latch must actually fire (traces differ from the inert
    /// plan's).
    #[test]
    fn batched_fail_closed_latch_matches_scalar() {
        let plan = FaultPlan {
            seed: 5,
            injector_stall: 0.2,
            stall_ticks: 12,
            ..FaultPlan::none()
        };
        let (host, victim, decoy) = fleet_shaped_host(MicroArch::AmdEpyc7252, 41, plan);
        let n_lanes = 20; // crosses the 16-lane tile for 2-core groups
        let batched = batched_pair_traces(&host, n_lanes, 1_000_000, 12_000_000).unwrap();
        for (lane, got) in batched.iter().enumerate() {
            let want =
                scalar_pair_traces(&host, victim, decoy, lane as u64, 1_000_000, 12_000_000)
                    .unwrap();
            for (w, g) in want.iter().zip(got) {
                assert_eq!(w.data, g.data, "lane {lane} diverged under stall faults");
            }
        }
        let (inert_host, ..) = fleet_shaped_host(MicroArch::AmdEpyc7252, 41, FaultPlan::none());
        let inert = batched_pair_traces(&inert_host, 1, 1_000_000, 12_000_000).unwrap();
        assert_ne!(
            inert[0][1].data, batched[0][1].data,
            "the stall plan must actually perturb the victim-core trace"
        );
    }

    #[test]
    fn batched_recording_with_no_lanes_is_empty() {
        let (host, ..) = fleet_shaped_host(MicroArch::AmdEpyc7252, 1, FaultPlan::none());
        let events = host.core(0).catalog().attack_events();
        let out = host
            .record_trace_multi_batch(
                &[0, 1],
                Vec::new(),
                &events,
                OriginFilter::Any,
                1_000_000,
                2_000_000,
            )
            .unwrap();
        assert!(out.is_empty());
    }
}
