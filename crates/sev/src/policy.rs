//! SEV protection levels and the confidentiality errors they raise.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Memory/register protection level of a guest VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SevMode {
    /// Plain virtualization — the host can read everything.
    Unencrypted,
    /// SEV: guest memory encrypted with a per-VM key.
    Sev,
    /// SEV-ES: additionally encrypts register state on world switches.
    SevEs,
    /// SEV-SNP: adds memory-integrity protection (the paper's baseline).
    SevSnp,
}

impl SevMode {
    /// Whether the host can read guest memory pages.
    pub fn memory_readable_by_host(self) -> bool {
        self == SevMode::Unencrypted
    }

    /// Whether the host can read guest register state.
    pub fn registers_readable_by_host(self) -> bool {
        matches!(self, SevMode::Unencrypted | SevMode::Sev)
    }

    /// Whether the host can observe per-core HPC values mapping to guest
    /// execution. True for every SEV generation — the gap this paper (and
    /// Aegis) addresses; Intel TDX isolates guest HPCs instead.
    pub fn hpcs_readable_by_host(self) -> bool {
        true
    }
}

impl fmt::Display for SevMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SevMode::Unencrypted => "unencrypted",
            SevMode::Sev => "SEV",
            SevMode::SevEs => "SEV-ES",
            SevMode::SevSnp => "SEV-SNP",
        };
        f.write_str(s)
    }
}

/// Error returned when the host attempts to breach a guest's
/// confidentiality boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SevViolation {
    /// Guest memory is encrypted.
    MemoryEncrypted,
    /// Guest register state is encrypted (SEV-ES+).
    RegistersEncrypted,
}

impl fmt::Display for SevViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SevViolation::MemoryEncrypted => f.write_str("guest memory is encrypted"),
            SevViolation::RegistersEncrypted => f.write_str("guest register state is encrypted"),
        }
    }
}

impl std::error::Error for SevViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_strengthens_with_generation() {
        assert!(SevMode::Unencrypted.memory_readable_by_host());
        assert!(!SevMode::Sev.memory_readable_by_host());
        assert!(SevMode::Sev.registers_readable_by_host());
        assert!(!SevMode::SevEs.registers_readable_by_host());
        assert!(!SevMode::SevSnp.registers_readable_by_host());
    }

    #[test]
    fn hpcs_leak_on_every_generation() {
        for m in [
            SevMode::Unencrypted,
            SevMode::Sev,
            SevMode::SevEs,
            SevMode::SevSnp,
        ] {
            assert!(m.hpcs_readable_by_host(), "{m}");
        }
    }

    #[test]
    fn modes_are_ordered() {
        assert!(SevMode::Sev < SevMode::SevSnp);
    }
}
