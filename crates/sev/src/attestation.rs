//! Remote attestation.
//!
//! Before trusting a cloud VM with secrets, the customer performs remote
//! attestation against the platform security processor "to confirm if the
//! hardware details and security settings are correct"; in particular,
//! "the processor model of the cloud server is obtained from the AMD PSP
//! during the remote attestation" and drives the choice of template server
//! (paper Sections III-A and V-B). This module models that flow: the host
//! produces a signed-measurement stand-in, and the guest side verifies
//! the processor family and protection mode before deploying an offline
//! defense plan computed on a template of the same family.

use crate::host::{Host, HostError, VmId};
use crate::policy::SevMode;
use aegis_microarch::MicroArch;
use serde::{Deserialize, Serialize};

/// An attestation report for one launched VM: the PSP-provided facts the
/// customer's verification checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttestationReport {
    /// The attested VM.
    pub vm: VmId,
    /// Processor model of the hosting platform.
    pub arch: MicroArch,
    /// Protection mode the VM was launched with.
    pub mode: SevMode,
    /// Launch measurement (a stand-in for the PSP's signed digest; covers
    /// the VM identity, topology and policy).
    pub measurement: u64,
}

impl AttestationReport {
    /// Whether the attested platform belongs to the same processor family
    /// as `template` — the compatibility requirement for an offline
    /// defense plan profiled on that template ("this server should have a
    /// similar processor model, i.e., in the same processor family, as
    /// the target cloud server").
    pub fn same_family_as(&self, template: MicroArch) -> bool {
        self.arch.family_reference() == template.family_reference()
    }

    /// Whether memory *and* register state are sealed from the host —
    /// what a customer should demand before shipping secrets.
    pub fn is_fully_sealed(&self) -> bool {
        !self.mode.memory_readable_by_host() && !self.mode.registers_readable_by_host()
    }
}

/// Verification failures the customer's attestation check can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestationError {
    /// The platform's processor family differs from the template server's,
    /// so the profiled event list and gadget effects do not transfer.
    FamilyMismatch {
        /// Family the plan was profiled on.
        expected: MicroArch,
        /// Family the cloud host attested.
        actual: MicroArch,
    },
    /// The VM is not protected strongly enough (memory or registers
    /// readable by the host).
    InsufficientProtection(SevMode),
}

impl std::fmt::Display for AttestationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttestationError::FamilyMismatch { expected, actual } => write!(
                f,
                "processor family mismatch: plan profiled on {expected}, host attests {actual}"
            ),
            AttestationError::InsufficientProtection(mode) => {
                write!(f, "insufficient protection mode {mode}")
            }
        }
    }
}

impl std::error::Error for AttestationError {}

impl Host {
    /// Produces the attestation report for a VM (the PSP side of remote
    /// attestation).
    ///
    /// # Errors
    ///
    /// Returns [`HostError::UnknownVm`] for unknown ids.
    pub fn attest(&self, vm: VmId) -> Result<AttestationReport, HostError> {
        let mode = self.vm_mode(vm)?;
        // A deterministic measurement over the launch-time facts; a real
        // PSP signs a digest of the initial memory image and policy.
        let mut m = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for byte in [
            vm.0 as u8,
            mode as u8,
            self.arch() as u8,
            self.n_cores() as u8,
        ] {
            m ^= byte as u64;
            m = m.wrapping_mul(0x1000_0000_01b3);
        }
        Ok(AttestationReport {
            vm,
            arch: self.arch(),
            mode,
            measurement: m,
        })
    }
}

/// Verifies an attestation report against the customer's requirements:
/// full sealing and family compatibility with the profiling template.
///
/// # Errors
///
/// Returns the first [`AttestationError`] encountered.
pub fn verify_attestation(
    report: &AttestationReport,
    template_arch: MicroArch,
) -> Result<(), AttestationError> {
    if !report.is_fully_sealed() {
        return Err(AttestationError::InsufficientProtection(report.mode));
    }
    if !report.same_family_as(template_arch) {
        return Err(AttestationError::FamilyMismatch {
            expected: template_arch,
            actual: report.arch,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(arch: MicroArch, mode: SevMode) -> (Host, VmId) {
        let mut h = Host::new(arch, 2, 3);
        let vm = h.launch_vm(1, mode).unwrap();
        (h, vm)
    }

    #[test]
    fn attestation_reports_platform_facts() {
        let (h, vm) = host(MicroArch::AmdEpyc7252, SevMode::SevSnp);
        let r = h.attest(vm).unwrap();
        assert_eq!(r.arch, MicroArch::AmdEpyc7252);
        assert_eq!(r.mode, SevMode::SevSnp);
        assert!(r.is_fully_sealed());
    }

    #[test]
    fn measurement_is_deterministic_and_mode_sensitive() {
        let (h1, vm1) = host(MicroArch::AmdEpyc7252, SevMode::SevSnp);
        let (h2, vm2) = host(MicroArch::AmdEpyc7252, SevMode::SevSnp);
        assert_eq!(
            h1.attest(vm1).unwrap().measurement,
            h2.attest(vm2).unwrap().measurement
        );
        let (h3, vm3) = host(MicroArch::AmdEpyc7252, SevMode::Sev);
        assert_ne!(
            h1.attest(vm1).unwrap().measurement,
            h3.attest(vm3).unwrap().measurement
        );
    }

    #[test]
    fn same_family_accepts_sibling_models() {
        let (h, vm) = host(MicroArch::AmdEpyc7313P, SevMode::SevSnp);
        let r = h.attest(vm).unwrap();
        // Profiled on the 7252, deployed on the 7313P: same family → ok.
        assert!(r.same_family_as(MicroArch::AmdEpyc7252));
        assert!(!r.same_family_as(MicroArch::IntelXeonE5_1650));
    }

    #[test]
    fn verification_rejects_weak_modes_and_wrong_family() {
        let (h, vm) = host(MicroArch::AmdEpyc7252, SevMode::Sev);
        let r = h.attest(vm).unwrap();
        assert_eq!(
            verify_attestation(&r, MicroArch::AmdEpyc7252),
            Err(AttestationError::InsufficientProtection(SevMode::Sev))
        );

        let (h, vm) = host(MicroArch::IntelXeonE5_4617, SevMode::SevSnp);
        let r = h.attest(vm).unwrap();
        assert!(matches!(
            verify_attestation(&r, MicroArch::AmdEpyc7252),
            Err(AttestationError::FamilyMismatch { .. })
        ));
    }

    #[test]
    fn verification_accepts_a_proper_deployment() {
        let (h, vm) = host(MicroArch::AmdEpyc7252, SevMode::SevSnp);
        let r = h.attest(vm).unwrap();
        assert_eq!(verify_attestation(&r, MicroArch::AmdEpyc7313P), Ok(()));
    }

    #[test]
    fn unknown_vm_errors() {
        let (h, _) = host(MicroArch::AmdEpyc7252, SevMode::SevSnp);
        assert!(h.attest(VmId(42)).is_err());
    }
}
