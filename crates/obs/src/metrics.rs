//! The metrics registry: counters, gauges, and log2-bucketed histograms.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Number of log2 buckets. Bucket `i` holds values `v` with
/// `floor(log2(max(v, 1))) == i`; bucket 63 also absorbs anything larger.
pub const N_BUCKETS: usize = 64;

/// A histogram with fixed log2 buckets plus running sum/min/max.
///
/// Values are dimensionless `f64`s by convention recorded in nanoseconds
/// for durations; the log2 bucketing makes one layout serve nanosecond
/// spans and unit counts alike.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Box<[u64; N_BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new([0; N_BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// The bucket index for `value`: `floor(log2(value))` clamped to
    /// `[0, 63]`; values below 1 (including negatives and NaN) land in
    /// bucket 0.
    pub fn bucket_index(value: f64) -> usize {
        // NaN compares false, so it lands in bucket 0 with the sub-1 values.
        if value < 1.0 || value.is_nan() {
            return 0;
        }
        let truncated = if value >= u64::MAX as f64 {
            u64::MAX
        } else {
            value as u64
        };
        (63 - truncated.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.to_vec(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`buckets[i]` = values in
    /// `[2^i, 2^(i+1))`, with underflow in 0 and overflow in 63).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named-metric registry shared by every crate in the workspace.
///
/// All methods take `&self` and serialize internally; recording is safe
/// from worker threads. The registry is write-only for the simulation —
/// nothing here ever feeds back into simulated state.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// Adds `delta` to the named counter (created at 0 on first use).
    pub fn counter_add(&self, name: &str, delta: f64) {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        inner.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into the named histogram.
    pub fn histogram_record(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// A consistent snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("obs registry poisoned");
        Snapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Removes every metric (tests and phase boundaries).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        *inner = Inner::default();
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

/// A point-in-time copy of the registry, diffable with
/// [`Snapshot::since`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, f64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// The named gauge's value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Total seconds attributed to the named span, or `None` if the span
    /// never closed in this snapshot's window (callers fall back to
    /// legacy timers when observability is off).
    pub fn span_seconds(&self, span: &str) -> Option<f64> {
        let calls = self.counter(&format!("span.{span}.calls"));
        (calls > 0.0).then(|| self.counter(&format!("span.{span}.seconds")))
    }

    /// Number of times the named span closed.
    pub fn span_calls(&self, span: &str) -> u64 {
        self.counter(&format!("span.{span}.calls")) as u64
    }

    /// The difference `self − earlier`: counters and histogram buckets
    /// subtract (clamped at zero for robustness against a `clear()` in
    /// between); gauges keep `self`'s values.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), (v - earlier.counter(k)).max(0.0)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let base = earlier.histograms.get(k);
                let buckets: Vec<u64> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, b)| {
                        b.saturating_sub(base.map_or(0, |p| p.buckets.get(i).copied().unwrap_or(0)))
                    })
                    .collect();
                let count = h.count.saturating_sub(base.map_or(0, |p| p.count));
                let sum = (h.sum - base.map_or(0.0, |p| p.sum)).max(0.0);
                (
                    k.clone(),
                    HistogramSnapshot {
                        buckets,
                        count,
                        sum,
                        min: h.min,
                        max: h.max,
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucketing_is_exact_at_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-3.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        assert_eq!(Histogram::bucket_index(0.5), 0);
        assert_eq!(Histogram::bucket_index(1.0), 0);
        assert_eq!(Histogram::bucket_index(1.99), 0);
        assert_eq!(Histogram::bucket_index(2.0), 1);
        assert_eq!(Histogram::bucket_index(3.0), 1);
        assert_eq!(Histogram::bucket_index(4.0), 2);
        assert_eq!(Histogram::bucket_index(1024.0), 10);
        assert_eq!(Histogram::bucket_index(1_000_000_000.0), 29);
        assert_eq!(Histogram::bucket_index(f64::MAX), 63);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut h = Histogram::default();
        for v in [1.0, 2.0, 4.0, 1024.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1031.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1024.0);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[10], 1);
        assert!((s.mean() - 257.75).abs() < 1e-12);
    }

    #[test]
    fn registry_snapshot_diff_isolates_a_region() {
        let r = Registry::default();
        r.counter_add("work.units", 5.0);
        let before = r.snapshot();
        r.counter_add("work.units", 3.0);
        r.histogram_record("work.latency", 8.0);
        r.gauge_set("work.gauge", 42.0);
        let delta = r.snapshot().since(&before);
        assert_eq!(delta.counter("work.units"), 3.0);
        assert_eq!(delta.histogram("work.latency").unwrap().count, 1);
        assert_eq!(delta.gauge("work.gauge"), Some(42.0));
        assert_eq!(delta.counter("missing"), 0.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean(), 0.0);
    }
}
