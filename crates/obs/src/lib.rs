//! Structured observability for the Aegis workspace.
//!
//! The ROADMAP's north star — a production-scale system — needs the same
//! observability a training/inference stack does: per-phase timing,
//! counters, and machine-readable run logs instead of scattered
//! `println!` in library crates. This crate provides the three layers:
//!
//! 1. **Hierarchical spans** ([`span`]): RAII guards with monotonic
//!    wall-clock timing and optional simulated-time attribution. Spans
//!    nest per thread (`pipeline.offline/fuzz.run/fuzz.generate`), and
//!    every close records into the metrics registry.
//! 2. **A metrics registry** ([`Registry`]): named counters, gauges, and
//!    histograms with fixed log2 buckets. Take [`snapshot`]s and diff
//!    them ([`Snapshot::since`]) to attribute work to a code region —
//!    the experiment harness derives its Table III step timings this way
//!    instead of keeping ad-hoc timers.
//! 3. **A JSONL event sink** ([`event`]): append-only run logs under
//!    `results/obs/run-<id>.jsonl`, one JSON object per line, written
//!    whole-line under a lock so concurrent workers never interleave.
//!
//! ## Levels
//!
//! Recording is governed by [`ObsLevel`], resolved as: explicit
//! [`set_level`] override → the `AEGIS_OBS` environment variable
//! (`off|summary|full`) → [`ObsLevel::Summary`].
//!
//! - `off` — nothing is recorded; spans and counters are no-ops.
//! - `summary` — in-memory metrics only (the default): cheap counters
//!   and span histograms for the end-of-run summary table.
//! - `full` — metrics plus the JSONL event sink.
//!
//! ## Determinism contract
//!
//! Observability is strictly *write-only* from the simulation's point of
//! view: nothing in this crate is ever read back into a computation, so
//! simulated results are bit-identical whether the level is `off` or
//! `full` (see `tests/observability.rs` at the workspace root). Wall
//! times naturally vary run to run; simulated quantities do not.

mod metrics;
mod sink;
mod span;
mod summary;

pub use metrics::{global, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use sink::{current_run_log, event, event_with, flush};
pub use span::{span, SpanGuard};
pub use summary::render_summary;

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU8, Ordering};

/// How much the observability layer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ObsLevel {
    /// Record nothing; spans and metrics are no-ops.
    Off,
    /// In-memory metrics only (counters, gauges, span histograms).
    #[default]
    Summary,
    /// Metrics plus the JSONL event sink under `results/obs/`.
    Full,
}

impl ObsLevel {
    /// Parses `off|summary|full` (case-insensitive).
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(ObsLevel::Off),
            "summary" => Some(ObsLevel::Summary),
            "full" => Some(ObsLevel::Full),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Summary => "summary",
            ObsLevel::Full => "full",
        }
    }
}

impl std::fmt::Display for ObsLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ObsLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ObsLevel::parse(s).ok_or_else(|| format!("unknown obs level {s:?} (off|summary|full)"))
    }
}

/// Process-wide level override: 0 = unset, else `ObsLevel as u8 + 1`.
static LEVEL_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Sets (or with `None` clears) the process-wide level override. An
/// explicit override wins over the `AEGIS_OBS` environment variable.
pub fn set_level(level: Option<ObsLevel>) {
    let encoded = match level {
        None => 0,
        Some(ObsLevel::Off) => 1,
        Some(ObsLevel::Summary) => 2,
        Some(ObsLevel::Full) => 3,
    };
    LEVEL_OVERRIDE.store(encoded, Ordering::SeqCst);
}

/// Resolves the effective level: [`set_level`] override, then the
/// `AEGIS_OBS` environment variable, then [`ObsLevel::Summary`].
pub fn level() -> ObsLevel {
    match LEVEL_OVERRIDE.load(Ordering::SeqCst) {
        1 => return ObsLevel::Off,
        2 => return ObsLevel::Summary,
        3 => return ObsLevel::Full,
        _ => {}
    }
    std::env::var("AEGIS_OBS")
        .ok()
        .and_then(|v| ObsLevel::parse(&v))
        .unwrap_or_default()
}

/// Whether anything at all is being recorded.
pub fn enabled() -> bool {
    level() != ObsLevel::Off
}

/// Adds `delta` to the named counter (no-op at `off`).
pub fn counter_add(name: &str, delta: f64) {
    if enabled() {
        global().counter_add(name, delta);
    }
}

/// Sets the named gauge (no-op at `off`).
pub fn gauge_set(name: &str, value: f64) {
    if enabled() {
        global().gauge_set(name, value);
    }
}

/// Records `value` into the named log2-bucketed histogram (no-op at
/// `off`).
pub fn histogram_record(name: &str, value: f64) {
    if enabled() {
        global().histogram_record(name, value);
    }
}

/// Takes a consistent snapshot of every metric.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Clears all metrics and closes the current run log, so the next event
/// opens a fresh one. Meant for tests and long-lived processes that want
/// per-phase run logs; ordinary binaries never need it.
pub fn reset() {
    global().clear();
    sink::close();
    span::clear_thread_stack();
}

/// Serializes tests that mutate the process-global level/sink state.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_roundtrips() {
        for l in [ObsLevel::Off, ObsLevel::Summary, ObsLevel::Full] {
            assert_eq!(ObsLevel::parse(l.name()), Some(l));
            assert_eq!(l.name().parse::<ObsLevel>().unwrap(), l);
        }
        assert_eq!(ObsLevel::parse("FULL"), Some(ObsLevel::Full));
        assert_eq!(ObsLevel::parse("bogus"), None);
        assert!("bogus".parse::<ObsLevel>().is_err());
    }

    #[test]
    fn explicit_override_wins() {
        let _guard = test_guard();
        set_level(Some(ObsLevel::Off));
        assert_eq!(level(), ObsLevel::Off);
        assert!(!enabled());
        set_level(Some(ObsLevel::Full));
        assert_eq!(level(), ObsLevel::Full);
        set_level(None);
        // Unset: env or the Summary default — either way not Off unless
        // the environment says so.
        if std::env::var("AEGIS_OBS").is_err() {
            assert_eq!(level(), ObsLevel::Summary);
        }
    }
}
