//! The end-of-run summary table rendered by CLI and experiment binaries.

use crate::metrics::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Renders a snapshot as a human-readable summary: one section for span
/// timings (calls, total and mean wall seconds), one for plain counters,
/// one for gauges, one for non-span histograms. Returns an empty string
/// when the snapshot holds nothing, so callers can print
/// unconditionally. Lines carry no prefix; binaries prepend their own
/// (the workspace convention is `[obs] ` on stderr, which keeps the
/// stdout of deterministic runs byte-comparable).
pub fn render_summary(snapshot: &Snapshot) -> String {
    let mut out = String::new();

    // Span rows are reassembled from the `span.<name>.calls` /
    // `span.<name>.seconds` counter pairs the span layer writes.
    let mut spans: BTreeMap<&str, (u64, f64)> = BTreeMap::new();
    for (key, value) in &snapshot.counters {
        if let Some(name) = key
            .strip_prefix("span.")
            .and_then(|rest| rest.strip_suffix(".calls"))
        {
            spans.entry(name).or_default().0 = *value as u64;
        } else if let Some(name) = key
            .strip_prefix("span.")
            .and_then(|rest| rest.strip_suffix(".seconds"))
        {
            spans.entry(name).or_default().1 = *value;
        }
    }
    spans.retain(|_, (calls, _)| *calls > 0);
    if !spans.is_empty() {
        let name_w = spans
            .keys()
            .map(|n| n.len())
            .max()
            .unwrap_or(0)
            .max("span".len());
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>8}  {:>12}  {:>12}",
            "span", "calls", "total (s)", "mean (s)"
        );
        for (name, (calls, seconds)) in &spans {
            let mean = seconds / *calls as f64;
            let _ = writeln!(
                out,
                "{name:<name_w$}  {calls:>8}  {seconds:>12.6}  {mean:>12.6}"
            );
        }
    }

    let plain: Vec<(&String, &f64)> = snapshot
        .counters
        .iter()
        .filter(|(k, v)| !k.starts_with("span.") && **v != 0.0)
        .collect();
    if !plain.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let name_w = plain
            .iter()
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(0)
            .max("counter".len());
        let _ = writeln!(out, "{:<name_w$}  {:>14}", "counter", "value");
        for (name, value) in &plain {
            let _ = writeln!(out, "{name:<name_w$}  {}", format_number(**value));
        }
    }

    if !snapshot.gauges.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let name_w = snapshot
            .gauges
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max("gauge".len());
        let _ = writeln!(out, "{:<name_w$}  {:>14}", "gauge", "value");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "{name:<name_w$}  {}", format_number(*value));
        }
    }

    let hists: Vec<(&String, &crate::HistogramSnapshot)> = snapshot
        .histograms
        .iter()
        .filter(|(k, h)| !k.starts_with("span.") && h.count > 0)
        .collect();
    if !hists.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let name_w = hists
            .iter()
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(0)
            .max("histogram".len());
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}",
            "histogram", "count", "mean", "min", "max"
        );
        for (name, h) in &hists {
            let _ = writeln!(
                out,
                "{name:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}",
                h.count,
                format_number(h.mean()),
                format_number(h.min),
                format_number(h.max),
            );
        }
    }

    out
}

/// Integers print without a fractional part; everything else gets three
/// decimals (enough for the unit conventions in this workspace).
fn format_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{:>14}", v as i64)
    } else {
        format!("{v:>14.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn empty_snapshot_renders_nothing() {
        assert_eq!(render_summary(&Snapshot::default()), "");
    }

    #[test]
    fn summary_has_span_counter_gauge_and_histogram_sections() {
        let r = Registry::default();
        r.counter_add("span.fuzz.generate.calls", 2.0);
        r.counter_add("span.fuzz.generate.seconds", 0.5);
        r.counter_add("cache.hit", 3.0);
        r.gauge_set("par.workers", 4.0);
        r.histogram_record("par.unit_ns", 1024.0);
        let text = render_summary(&r.snapshot());
        assert!(text.contains("fuzz.generate"));
        assert!(text.contains("cache.hit"));
        assert!(text.contains("par.workers"));
        assert!(text.contains("par.unit_ns"));
        // Span sums never leak into the counter section.
        assert!(!text.contains("span.fuzz.generate.seconds"));
        // Mean of the two calls is 0.25 s.
        assert!(text.contains("0.250000"));
    }

    #[test]
    fn zero_call_spans_are_dropped() {
        let r = Registry::default();
        r.counter_add("span.idle.calls", 0.0);
        r.counter_add("span.idle.seconds", 0.0);
        assert_eq!(render_summary(&r.snapshot()), "");
    }
}
