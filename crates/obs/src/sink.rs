//! The JSONL event sink: append-only run logs under `results/obs/`.

use crate::{level, ObsLevel};
use serde_json::Value;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

struct Sink {
    file: File,
    path: PathBuf,
    opened: Instant,
    seq: u64,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// The run-log directory: `AEGIS_OBS_DIR`, or `results/obs`.
fn sink_dir() -> PathBuf {
    std::env::var_os("AEGIS_OBS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results").join("obs"))
}

/// The run id: `AEGIS_OBS_RUN_ID`, or `<unix-seconds>-<pid>`.
fn run_id() -> String {
    if let Ok(id) = std::env::var("AEGIS_OBS_RUN_ID") {
        if !id.trim().is_empty() {
            return id.trim().to_string();
        }
    }
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format!("{secs}-{}", std::process::id())
}

fn open_sink() -> Option<Sink> {
    let dir = sink_dir();
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("run-{}.jsonl", run_id()));
    let file = OpenOptions::new().create(true).append(true).open(&path).ok()?;
    Some(Sink {
        file,
        path,
        opened: Instant::now(),
        seq: 0,
    })
}

/// The path of the currently open run log, if any.
pub fn current_run_log() -> Option<PathBuf> {
    SINK.lock()
        .expect("obs sink poisoned")
        .as_ref()
        .map(|s| s.path.clone())
}

/// Flushes the run log to disk (events are written line-buffered; the OS
/// may still hold them).
pub fn flush() {
    if let Some(sink) = SINK.lock().expect("obs sink poisoned").as_mut() {
        let _ = sink.file.flush();
    }
}

/// Closes the current run log; the next event opens a fresh one.
pub(crate) fn close() {
    *SINK.lock().expect("obs sink poisoned") = None;
}

/// Emits a generic event (`kind: "event"`) with string fields. No-op
/// below [`ObsLevel::Full`]. I/O failures are swallowed: observability
/// must never abort a run.
pub fn event(name: &str, fields: &[(&str, &str)]) {
    let values: Vec<(&str, Value)> = fields
        .iter()
        .map(|&(k, v)| (k, Value::String(v.to_string())))
        .collect();
    event_with("event", name, &values);
}

/// Emits an event of an explicit kind with arbitrary JSON fields. Every
/// line carries `seq` (per-run sequence number), `ts_ns` (monotonic
/// nanoseconds since the log opened), `kind`, and `name`; the caller's
/// fields follow. The whole line is written with a single `write_all`
/// under the sink lock, so concurrent workers never interleave bytes.
pub fn event_with(kind: &str, name: &str, fields: &[(&str, Value)]) {
    if level() != ObsLevel::Full {
        return;
    }
    let mut guard = SINK.lock().expect("obs sink poisoned");
    if guard.is_none() {
        *guard = open_sink();
    }
    let Some(sink) = guard.as_mut() else {
        return; // sink dir not writable: drop the event, never panic
    };
    let mut obj = serde_json::Map::new();
    obj.insert("seq".to_string(), Value::from(sink.seq));
    obj.insert(
        "ts_ns".to_string(),
        Value::from(sink.opened.elapsed().as_nanos() as u64),
    );
    obj.insert("kind".to_string(), Value::String(kind.to_string()));
    obj.insert("name".to_string(), Value::String(name.to_string()));
    for (k, v) in fields {
        obj.insert((*k).to_string(), v.clone());
    }
    let Ok(mut line) = serde_json::to_string(&Value::Object(obj)) else {
        return;
    };
    line.push('\n');
    if sink.file.write_all(line.as_bytes()).is_ok() {
        sink.seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_level;

    /// Sink tests mutate process-global state (env, level, the sink);
    /// serialize them with the crate-wide test lock.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        crate::test_guard()
    }

    #[test]
    fn events_land_as_one_json_object_per_line() {
        let _guard = guard();
        let dir = std::env::temp_dir().join(format!("aegis-obs-sink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("AEGIS_OBS_DIR", &dir);
        std::env::set_var("AEGIS_OBS_RUN_ID", "sinktest");
        set_level(Some(crate::ObsLevel::Full));
        close();

        event("cache.miss", &[("cache_kind", "cleanup")]);
        event_with("span", "fuzz.generate", &[("wall_ns", Value::from(125u64))]);
        let path = current_run_log().expect("sink opened");
        flush();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v: Value = serde_json::from_str(line).expect("valid JSON line");
            assert_eq!(v.get("seq").and_then(Value::as_u64), Some(i as u64));
            assert!(v.get("ts_ns").and_then(Value::as_u64).is_some());
            assert!(v.get("kind").and_then(Value::as_str).is_some());
            assert!(v.get("name").and_then(Value::as_str).is_some());
        }
        assert_eq!(
            serde_json::from_str::<Value>(lines[0])
                .unwrap()
                .get("cache_kind")
                .and_then(Value::as_str),
            Some("cleanup")
        );

        set_level(None);
        close();
        std::env::remove_var("AEGIS_OBS_DIR");
        std::env::remove_var("AEGIS_OBS_RUN_ID");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn below_full_no_log_is_written() {
        let _guard = guard();
        let dir = std::env::temp_dir().join(format!("aegis-obs-sink-off-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("AEGIS_OBS_DIR", &dir);
        set_level(Some(crate::ObsLevel::Summary));
        close();
        event("nothing", &[]);
        assert!(current_run_log().is_none());
        assert!(!dir.exists());
        set_level(None);
        std::env::remove_var("AEGIS_OBS_DIR");
    }
}
