//! Hierarchical RAII spans with monotonic wall-clock timing.

use crate::sink;
use crate::{enabled, global, level, ObsLevel};
use serde_json::Value;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Drops any stale thread-local span state (used by [`crate::reset`]).
pub(crate) fn clear_thread_stack() {
    STACK.with(|s| s.borrow_mut().clear());
}

/// Opens a span. The guard records on drop (or explicitly via
/// [`SpanGuard::finish`], which also returns the elapsed seconds so
/// callers can keep feeding legacy report structs from the same
/// measurement). Span names are dotted (`"fuzz.generate"`); nesting
/// *within a thread* is captured as a slash-joined path
/// (`"pipeline.offline/fuzz.run/fuzz.generate"`).
///
/// At [`ObsLevel::Off`] the guard is inert: it still measures (so
/// `finish()` stays meaningful to callers) but records nothing.
pub fn span(name: &'static str) -> SpanGuard {
    let active = enabled();
    let path = if active {
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let mut path = String::new();
            for parent in stack.iter() {
                path.push_str(parent);
                path.push('/');
            }
            path.push_str(name);
            stack.push(name);
            path
        })
    } else {
        String::new()
    };
    SpanGuard {
        name,
        path,
        start: Instant::now(),
        sim_ns: None,
        state: if active {
            GuardState::Active
        } else {
            GuardState::Inert
        },
    }
}

#[derive(PartialEq)]
enum GuardState {
    Active,
    Inert,
    Closed,
}

/// An open span; closes on drop.
pub struct SpanGuard {
    name: &'static str,
    path: String,
    start: Instant,
    sim_ns: Option<u64>,
    state: GuardState,
}

impl SpanGuard {
    /// The span's nesting path on its opening thread.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Attributes an amount of *simulated* time to this span (e.g. the
    /// total simulated nanoseconds replayed while collecting a dataset),
    /// reported alongside the wall time.
    pub fn set_sim_ns(&mut self, sim_ns: u64) {
        self.sim_ns = Some(sim_ns);
    }

    /// Closes the span now and returns its wall-clock duration in
    /// seconds (also returned by inert guards, so callers can use one
    /// code path regardless of the observability level).
    pub fn finish(mut self) -> f64 {
        self.close()
    }

    fn close(&mut self) -> f64 {
        let wall = self.start.elapsed();
        let seconds = wall.as_secs_f64();
        if self.state != GuardState::Active {
            self.state = GuardState::Closed;
            return seconds;
        }
        self.state = GuardState::Closed;
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop this span; tolerate out-of-order drops of sibling
            // guards by searching from the top.
            if let Some(pos) = stack.iter().rposition(|n| *n == self.name) {
                stack.remove(pos);
            }
        });
        let registry = global();
        registry.counter_add(&format!("span.{}.calls", self.name), 1.0);
        registry.counter_add(&format!("span.{}.seconds", self.name), seconds);
        registry.histogram_record(&format!("span.{}", self.name), wall.as_nanos() as f64);
        if level() == ObsLevel::Full {
            let mut fields: Vec<(&str, Value)> = vec![
                ("path", Value::from(self.path.as_str())),
                ("wall_ns", Value::from(wall.as_nanos() as u64)),
            ];
            if let Some(sim) = self.sim_ns {
                fields.push(("sim_ns", Value::from(sim)));
            }
            sink::event_with("span", self.name, &fields);
        }
        seconds
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.state != GuardState::Closed {
            self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_level;

    #[test]
    fn nesting_builds_slash_paths_and_records_metrics() {
        let _guard = crate::test_guard();
        set_level(Some(ObsLevel::Summary));
        global().clear();
        let before = global().snapshot();
        {
            let outer = span("test.outer");
            assert_eq!(outer.path(), "test.outer");
            {
                let inner = span("test.inner");
                assert_eq!(inner.path(), "test.outer/test.inner");
                let secs = inner.finish();
                assert!(secs >= 0.0);
            }
            // After the inner span closes, a sibling nests under the
            // outer span only.
            let sibling = span("test.sibling");
            assert_eq!(sibling.path(), "test.outer/test.sibling");
        }
        let delta = global().snapshot().since(&before);
        assert_eq!(delta.span_calls("test.outer"), 1);
        assert_eq!(delta.span_calls("test.inner"), 1);
        assert_eq!(delta.span_calls("test.sibling"), 1);
        assert!(delta.span_seconds("test.inner").unwrap() >= 0.0);
        assert!(delta.histogram("span.test.outer").is_some());
        set_level(None);
    }

    #[test]
    fn off_level_records_nothing_but_still_times() {
        let _guard = crate::test_guard();
        set_level(Some(ObsLevel::Off));
        global().clear();
        let g = span("test.off");
        assert_eq!(g.path(), "");
        let secs = g.finish();
        assert!(secs >= 0.0);
        let snap = global().snapshot();
        assert_eq!(snap.span_calls("test.off"), 0);
        assert!(snap.span_seconds("test.off").is_none());
        set_level(None);
    }

    #[test]
    fn spans_on_different_threads_do_not_nest_into_each_other() {
        let _guard = crate::test_guard();
        set_level(Some(ObsLevel::Summary));
        let _outer = span("test.main_thread");
        let path = std::thread::spawn(|| span("test.worker").path().to_string())
            .join()
            .unwrap();
        assert_eq!(path, "test.worker");
        set_level(None);
    }
}
