//! # aegis-fuzzer
//!
//! The Event Fuzzer (Module 2 of Aegis): automatically discovers
//! instruction-sequence gadgets that alter the vulnerable HPC events
//! identified by the Application Profiler.
//!
//! The fuzzing pipeline follows Fig. 5 of the paper:
//!
//! 1. **Instruction cleanup** ([`run_cleanup`]) — execute every variant of
//!    the machine-readable ISA specification and drop faulting ones
//!    (~24% survive, ~99% of faults are `#UD`).
//! 2. **Code generation + execution** ([`EventFuzzer`]) — grammar-based
//!    generation of `(reset ; trigger)` gadgets, executed in a pinned,
//!    isolated, serialized harness with RDPMC measurement and medians
//!    over repeated runs.
//! 3. **Result confirmation** — repeated-trigger cold/hot path analysis
//!    with the `λ1`/`λ2` constraints, plus gadgets-reordering
//!    cross-validation against inherited dirty state.
//! 4. **Gadget filtering** ([`cluster_gadgets`], [`covering_set`]) —
//!    clustering by extension/category root cause, extraction of the
//!    strongest gadget per event, and the greedy minimum covering set the
//!    Event Obfuscator injects.

mod cleanup;
mod filter;
mod fuzzer;
mod gadget;
mod harness;
mod report;

pub use cleanup::{run_cleanup, CleanupResult, CleanupStats};
pub use filter::{cluster_gadgets, covering_set, CoveringGadget, FilterStats, GadgetStats};
pub use fuzzer::{
    ConfirmedSeqGadget, EventFuzzer, EventGadgets, FuzzOutcome, FuzzerConfig, SeqGadget,
};
pub use gadget::{ConfirmedGadget, Gadget, GadgetCluster};
pub use harness::{
    measure_median, measure_once, measure_repeated, program_event, BatchTraceRecorder,
    RecordedTrace, TraceEval, TraceLog, TraceRecorder,
};
pub use report::FuzzReport;
