//! Step 4: gadget filtering — clustering by root cause and extraction of
//! the minimal covering gadget set.

use crate::fuzzer::{EventGadgets, FuzzOutcome};
use crate::gadget::{ConfirmedGadget, Gadget, GadgetCluster};
use aegis_microarch::EventId;
use aegis_obs as obs;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Summary statistics over confirmed gadgets per event (Section VIII-B:
/// "the mean and median value of the gadgets for all events are 892 and
/// 505" on Intel, "617 and 440" on AMD).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GadgetStats {
    /// Mean confirmed gadgets per event.
    pub mean: f64,
    /// Median confirmed gadgets per event.
    pub median: f64,
    /// Event with the most gadgets and its count.
    pub max: Option<(EventId, usize)>,
}

impl GadgetStats {
    /// Computes the stats over a fuzzing outcome.
    pub fn from_events(per_event: &[EventGadgets]) -> Self {
        if per_event.is_empty() {
            return GadgetStats {
                mean: 0.0,
                median: 0.0,
                max: None,
            };
        }
        let mut counts: Vec<usize> = per_event.iter().map(|e| e.confirmed.len()).collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        let max = per_event
            .iter()
            .max_by_key(|e| e.confirmed.len())
            .map(|e| (e.event, e.confirmed.len()));
        counts.sort_unstable();
        let n = counts.len();
        let median = if n % 2 == 1 {
            counts[n / 2] as f64
        } else {
            (counts[n / 2 - 1] + counts[n / 2]) as f64 / 2.0
        };
        GadgetStats { mean, median, max }
    }
}

/// Result of the clustering pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterStats {
    /// Confirmed gadgets before clustering.
    pub before: usize,
    /// Representative gadgets after clustering.
    pub after: usize,
}

/// Clusters each event's confirmed gadgets by [`GadgetCluster`], keeping
/// only the strongest representative per cluster; also extracts the
/// highest-effect gadget per event (which stays at index 0). Updates the
/// outcome's filtering wall time.
pub fn cluster_gadgets(outcome: &mut FuzzOutcome) -> FilterStats {
    let span = obs::span("fuzz.filter");
    let mut before = 0;
    let mut after = 0;
    for eg in &mut outcome.per_event {
        before += eg.confirmed.len();
        let mut best: BTreeMap<GadgetCluster, ConfirmedGadget> = BTreeMap::new();
        for g in &eg.confirmed {
            let entry = best.entry(g.cluster).or_insert(*g);
            if g.effect > entry.effect {
                *entry = *g;
            }
        }
        let mut reduced: Vec<ConfirmedGadget> = best.into_values().collect();
        reduced.sort_by(|a, b| b.effect.total_cmp(&a.effect));
        after += reduced.len();
        eg.confirmed = reduced;
    }
    outcome.report.filtering_seconds += span.finish();
    FilterStats { before, after }
}

/// One element of the covering gadget set: a gadget and the vulnerable
/// events it obfuscates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoveringGadget {
    /// The gadget.
    pub gadget: Gadget,
    /// Events whose counters this gadget perturbs.
    pub covers: Vec<EventId>,
}

/// Greedy minimum set cover: the smallest gadget set that perturbs every
/// event that has at least one confirmed gadget.
///
/// This is the optimization of Section VII-C: "the identified gadget sets
/// for various HPC events usually have intersections ... to cover all 137
/// vulnerable HPC events, we only require 43 instruction gadgets."
pub fn covering_set(per_event: &[EventGadgets]) -> Vec<CoveringGadget> {
    // gadget -> events it can obfuscate.
    let mut by_gadget: BTreeMap<Gadget, BTreeSet<EventId>> = BTreeMap::new();
    let mut coverable: BTreeSet<EventId> = BTreeSet::new();
    for eg in per_event {
        if eg.confirmed.is_empty() {
            continue;
        }
        coverable.insert(eg.event);
        for g in &eg.confirmed {
            by_gadget.entry(g.gadget).or_default().insert(eg.event);
        }
    }
    let mut uncovered = coverable;
    let mut cover = Vec::new();
    while !uncovered.is_empty() {
        let (gadget, covered): (Gadget, BTreeSet<EventId>) = by_gadget
            .iter()
            .map(|(g, evs)| (*g, evs.intersection(&uncovered).copied().collect()))
            .max_by_key(|(g, inter): &(Gadget, BTreeSet<EventId>)| {
                (inter.len(), std::cmp::Reverse(*g))
            })
            .expect("uncovered events imply at least one gadget");
        if covered.is_empty() {
            break; // defensive: cannot happen while uncovered ⊆ coverable
        }
        for e in &covered {
            uncovered.remove(e);
        }
        cover.push(CoveringGadget {
            gadget,
            covers: covered.into_iter().collect(),
        });
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::ConfirmedGadget;
    use aegis_isa::{well_known, InstrId, WellKnown};

    fn confirmed(reset: u32, trigger: u32, effect: f64) -> ConfirmedGadget {
        let r = well_known(WellKnown::Clflush);
        let t = well_known(WellKnown::Load64);
        ConfirmedGadget {
            gadget: Gadget::new(InstrId(reset), InstrId(trigger)),
            effect,
            cluster: GadgetCluster::of(&r, &t),
        }
    }

    fn events(data: &[(u32, &[(u32, u32, f64)])]) -> Vec<EventGadgets> {
        data.iter()
            .map(|&(ev, gs)| EventGadgets {
                event: EventId(ev),
                confirmed: gs.iter().map(|&(r, t, e)| confirmed(r, t, e)).collect(),
            })
            .collect()
    }

    #[test]
    fn stats_mean_median_max() {
        let evs = events(&[
            (0, &[(1, 2, 1.0), (3, 4, 2.0)]),
            (1, &[(1, 2, 1.0)]),
            (2, &[(1, 2, 1.0), (3, 4, 1.0), (5, 6, 1.0)]),
        ]);
        let s = GadgetStats::from_events(&evs);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, Some((EventId(2), 3)));
    }

    #[test]
    fn stats_of_empty_outcome() {
        let s = GadgetStats::from_events(&[]);
        assert_eq!(s.max, None);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn covering_set_prefers_shared_gadgets() {
        // Gadget (1,2) covers all three events; singles cover one each.
        let evs = events(&[
            (0, &[(1, 2, 1.0), (7, 8, 5.0)]),
            (1, &[(1, 2, 1.0), (9, 10, 5.0)]),
            (2, &[(1, 2, 1.0)]),
        ]);
        let cover = covering_set(&evs);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].gadget, Gadget::new(InstrId(1), InstrId(2)));
        assert_eq!(cover[0].covers.len(), 3);
    }

    #[test]
    fn covering_set_handles_disjoint_events() {
        let evs = events(&[(0, &[(1, 2, 1.0)]), (1, &[(3, 4, 1.0)])]);
        let cover = covering_set(&evs);
        assert_eq!(cover.len(), 2);
    }

    #[test]
    fn events_without_gadgets_are_skipped() {
        let evs = events(&[(0, &[]), (1, &[(3, 4, 1.0)])]);
        let cover = covering_set(&evs);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].covers, vec![EventId(1)]);
    }

    #[test]
    fn covering_set_of_empty_input_is_empty() {
        assert!(covering_set(&[]).is_empty());
    }
}
