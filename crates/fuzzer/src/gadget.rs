//! Instruction-sequence gadgets: the fuzzer's input format model.

use aegis_isa::{Category, Extension, InstrId, InstructionSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An instruction-sequence gadget: a *reset* sequence bringing the target
/// HPC event to a known state `S0`, followed by a *trigger* sequence
/// transitioning it to `S1` (Fig. 4 of the paper). The reproduction uses
/// one instruction per sequence, which the paper found sufficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Gadget {
    /// The reset instruction (e.g. `CLFLUSH` for cache events).
    pub reset: InstrId,
    /// The trigger instruction (e.g. a load that now misses).
    pub trigger: InstrId,
}

impl Gadget {
    /// Creates a gadget.
    pub fn new(reset: InstrId, trigger: InstrId) -> Self {
        Gadget { reset, trigger }
    }
}

impl fmt::Display for Gadget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} ; {}]", self.reset, self.trigger)
    }
}

/// The root-cause cluster of a gadget: the extension and category of its
/// reset and trigger instructions. Gadget filtering groups confirmed
/// gadgets by this key, "as these properties can strongly indicate the
/// root cause ... in the underlying microarchitectural level" (VI-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GadgetCluster {
    /// Reset instruction's extension.
    pub reset_ext: Extension,
    /// Reset instruction's category.
    pub reset_cat: Category,
    /// Trigger instruction's extension.
    pub trigger_ext: Extension,
    /// Trigger instruction's category.
    pub trigger_cat: Category,
}

impl GadgetCluster {
    /// Builds the cluster key from the two instruction specs.
    pub fn of(reset: &InstructionSpec, trigger: &InstructionSpec) -> Self {
        GadgetCluster {
            reset_ext: reset.extension,
            reset_cat: reset.category,
            trigger_ext: trigger.extension,
            trigger_cat: trigger.category,
        }
    }
}

impl fmt::Display for GadgetCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ; {}/{}",
            self.reset_ext, self.reset_cat, self.trigger_ext, self.trigger_cat
        )
    }
}

/// A gadget confirmed to alter a specific HPC event, with its measured
/// per-execution effect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfirmedGadget {
    /// The gadget.
    pub gadget: Gadget,
    /// Median counter change per gadget execution.
    pub effect: f64,
    /// Root-cause cluster.
    pub cluster: GadgetCluster,
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_isa::{well_known, WellKnown};

    #[test]
    fn display_is_compact() {
        let g = Gadget::new(InstrId(1), InstrId(4));
        assert_eq!(g.to_string(), "[i00001 ; i00004]");
    }

    #[test]
    fn cluster_key_from_specs() {
        let flush = well_known(WellKnown::Clflush);
        let load = well_known(WellKnown::Load64);
        let c = GadgetCluster::of(&flush, &load);
        assert_eq!(c.reset_cat, Category::Flush);
        assert_eq!(c.trigger_cat, Category::Load);
        assert_eq!(c.to_string(), "BASE/FLUSH ; BASE/LOAD");
    }

    #[test]
    fn gadgets_order_and_hash() {
        use std::collections::HashSet;
        let a = Gadget::new(InstrId(0), InstrId(1));
        let b = Gadget::new(InstrId(0), InstrId(2));
        assert!(a < b);
        let set: HashSet<Gadget> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
