//! Step 1: instruction cleanup.
//!
//! The machine-readable ISA specification contains many variants that are
//! illegal on the target microarchitecture. The cleanup step executes
//! every variant once and drops the ones that fault; the paper finds only
//! ~24% of variants legal, with ~99% of faults being illegal-instruction
//! faults (Section VI-C).

use aegis_isa::{InstrId, IsaCatalog};
use aegis_microarch::{Core, ExecError, Origin};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Outcome statistics of the cleanup step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CleanupStats {
    /// Variants tested.
    pub total: usize,
    /// Variants that executed cleanly.
    pub legal: usize,
    /// `#UD` faults.
    pub illegal_faults: usize,
    /// `#GP` (privilege) faults.
    pub privilege_faults: usize,
    /// Wall time of the step, seconds.
    pub wall_seconds: f64,
}

impl CleanupStats {
    /// Fraction of variants that are legal.
    pub fn legal_fraction(&self) -> f64 {
        self.legal as f64 / self.total.max(1) as f64
    }

    /// Of all faults, the fraction that are `#UD`.
    pub fn illegal_fault_fraction(&self) -> f64 {
        let faults = self.illegal_faults + self.privilege_faults;
        if faults == 0 {
            0.0
        } else {
            self.illegal_faults as f64 / faults as f64
        }
    }
}

/// Result of the cleanup step: the usable instruction list plus stats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleanupResult {
    /// Instructions that execute in user mode, in catalog order.
    pub usable: Vec<InstrId>,
    /// Statistics.
    pub stats: CleanupStats,
}

/// Executes every catalog variant once on `core`, keeping the survivors.
pub fn run_cleanup(catalog: &IsaCatalog, core: &mut Core) -> CleanupResult {
    let start = Instant::now();
    let mut usable = Vec::new();
    let mut stats = CleanupStats {
        total: catalog.len(),
        legal: 0,
        illegal_faults: 0,
        privilege_faults: 0,
        wall_seconds: 0.0,
    };
    for spec in catalog.variants() {
        match core.execute_instr(spec, Origin::Host) {
            Ok(_) => {
                stats.legal += 1;
                usable.push(spec.id);
            }
            Err(ExecError::IllegalInstruction) => stats.illegal_faults += 1,
            Err(ExecError::PrivilegeFault) => stats.privilege_faults += 1,
        }
    }
    stats.wall_seconds = start.elapsed().as_secs_f64();
    CleanupResult { usable, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_isa::Vendor;
    use aegis_microarch::{InterferenceConfig, MicroArch};

    fn setup() -> (IsaCatalog, Core) {
        let catalog = IsaCatalog::synthetic(Vendor::Amd, 7);
        let mut core = Core::new(MicroArch::AmdEpyc7252, 7);
        core.set_interference(InterferenceConfig::isolated());
        (catalog, core)
    }

    #[test]
    fn cleanup_matches_catalog_ground_truth() {
        let (catalog, mut core) = setup();
        let result = run_cleanup(&catalog, &mut core);
        assert_eq!(result.usable, catalog.legal_ids());
        assert_eq!(
            result.stats.legal + result.stats.illegal_faults + result.stats.privilege_faults,
            catalog.len()
        );
    }

    #[test]
    fn legal_fraction_near_paper() {
        let (catalog, mut core) = setup();
        let result = run_cleanup(&catalog, &mut core);
        let f = result.stats.legal_fraction();
        assert!((0.20..0.30).contains(&f), "{f}");
        assert!(result.stats.illegal_fault_fraction() > 0.95);
    }

    #[test]
    fn cleanup_records_wall_time() {
        let (catalog, mut core) = setup();
        let result = run_cleanup(&catalog, &mut core);
        assert!(result.stats.wall_seconds > 0.0);
    }
}
