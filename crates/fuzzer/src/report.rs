//! Fuzzing-run timing report (Table III of the paper).

use serde::{Deserialize, Serialize};

/// Wall-clock breakdown of a fuzzing run: one row of Table III plus the
/// throughput figures quoted in Section VIII-B.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FuzzReport {
    /// Instruction-cleanup wall time, seconds.
    pub cleanup_seconds: f64,
    /// Gadget generation + execution wall time, seconds.
    pub generation_seconds: f64,
    /// Result-confirmation wall time, seconds.
    pub confirmation_seconds: f64,
    /// Gadget-filtering wall time, seconds (filled by the filtering step).
    pub filtering_seconds: f64,
    /// Number of usable instructions after cleanup.
    pub usable_instructions: usize,
    /// Total candidate gadgets executed.
    pub gadgets_tested: usize,
}

impl FuzzReport {
    /// Total wall time across all steps, seconds.
    pub fn total_seconds(&self) -> f64 {
        self.cleanup_seconds
            + self.generation_seconds
            + self.confirmation_seconds
            + self.filtering_seconds
    }

    /// Gadgets fuzzed per second of generation+execution time.
    pub fn throughput_per_second(&self) -> f64 {
        if self.generation_seconds == 0.0 {
            0.0
        } else {
            self.gadgets_tested as f64 / self.generation_seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_throughput() {
        let r = FuzzReport {
            cleanup_seconds: 1.0,
            generation_seconds: 10.0,
            confirmation_seconds: 2.0,
            filtering_seconds: 0.5,
            usable_instructions: 3400,
            gadgets_tested: 1000,
        };
        assert!((r.total_seconds() - 13.5).abs() < 1e-12);
        assert!((r.throughput_per_second() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn zero_generation_time_gives_zero_throughput() {
        assert_eq!(FuzzReport::default().throughput_per_second(), 0.0);
    }
}
