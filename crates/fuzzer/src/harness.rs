//! The measurement harness: executes candidate gadgets under controlled
//! conditions and reads the target HPC event with RDPMC.
//!
//! Mirrors the paper's setup (Section VI-D): the fuzzing process is pinned
//! to an isolated core, all memory operands point at a pre-allocated data
//! page (the simulator's scratch page), serializing CPUID instructions
//! fence the measured region, and each measurement is repeated with the
//! median taken to suppress external interference.

use aegis_attack_stats::median;
use aegis_isa::{well_known, InstrId, InstructionSpec, IsaCatalog, WellKnown};
use aegis_microarch::{
    read_counter, ActivityVector, Core, CoreBatch, CounterConfig, EventId, Feature, Origin,
    OriginFilter, ResponseMatrix,
};
use serde::{Deserialize, Serialize};

/// Minimal median helper, private to the fuzzer (avoids a dependency on
/// the attack crate for one function).
///
/// Selection instead of a full sort: the median of `reps` counter reads
/// sits on the generation-gate hot path of every (event, candidate) pair,
/// and `select_nth_unstable` is measurably cheaper than sorting ten
/// elements with a comparator. Counter reads are non-negative finite
/// (quantized `u64` values), so `f64::max` over the lower partition is
/// exact and the result is value-identical to the sort-based median.
mod aegis_attack_stats {
    pub fn median(xs: &mut [f64]) -> f64 {
        let n = xs.len();
        if n == 0 {
            return 0.0;
        }
        let mid = n / 2;
        let (below, at_mid, _) = xs.select_nth_unstable_by(mid, f64::total_cmp);
        if n % 2 == 1 {
            *at_mid
        } else {
            let hi = *at_mid;
            let lo = below.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            (lo + hi) / 2.0
        }
    }
}

/// Counter slot the harness reserves for the event under test.
const SLOT: usize = 0;

/// Programs the target event on the harness slot.
///
/// # Panics
///
/// Panics if the event is unknown on the core.
pub fn program_event(core: &mut Core, event: EventId) {
    core.pmu_mut()
        .program(
            SLOT,
            CounterConfig {
                event,
                filter: OriginFilter::Any,
            },
        )
        .expect("profiled event must exist on this core");
}

/// Executes one instruction sequence between serializing fences and
/// returns the counter delta (one "measurement" in the paper's protocol):
/// serialize, zero the counter (WRMSR), run the sequence, read (RDPMC),
/// serialize. One counter read — and therefore one measurement-noise
/// draw — per window.
///
/// Faulting instructions contribute nothing; the harness skips them the
/// way the real prolog/epilog recovers from SIGILL.
pub fn measure_once(core: &mut Core, catalog: &IsaCatalog, seq: &[InstrId]) -> f64 {
    let cpuid = well_known(WellKnown::Cpuid);
    let _ = core.execute_instr(&cpuid, Origin::Host);
    core.pmu_mut().reset_value(SLOT);
    for &id in seq {
        if let Some(spec) = catalog.get(id) {
            let _ = core.execute_instr(spec, Origin::Host);
        }
    }
    let delta = core.pmu().rdpmc(SLOT).expect("slot programmed") as f64;
    let _ = core.execute_instr(&cpuid, Origin::Host);
    delta
}

/// Repeats [`measure_once`] `reps` times and returns the median delta —
/// the paper's noise-suppression protocol with `reps = 10`.
pub fn measure_median(core: &mut Core, catalog: &IsaCatalog, seq: &[InstrId], reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| measure_once(core, catalog, seq))
        .collect();
    median(&mut samples)
}

/// Runs a sequence `r` times inside one window, returning the per-
/// iteration deltas (for the repeated-triggers confirmation of Fig. 6).
pub fn measure_repeated(
    core: &mut Core,
    catalog: &IsaCatalog,
    seq: &[InstrId],
    r: usize,
) -> Vec<f64> {
    (0..r).map(|_| measure_once(core, catalog, seq)).collect()
}

/// Flat f64s per recorded window: the all-origins fold followed by the
/// host-only fold, `Feature::COUNT` values each.
///
/// Two folds are kept because the SEV observability boundary partitions
/// events into two accumulation behaviours: guest-visible counters fold
/// every step, guest-invisible counters fold only host-origin steps. The
/// folds use the same component-wise `+=` in the same step order as a
/// live [`aegis_microarch::CounterLane`], so the sums are bit-identical
/// to what a programmed counter would have accumulated.
const WINDOW_STRIDE: usize = 2 * Feature::COUNT;

/// A recorded measurement session: per-window activity sums at the
/// fence-delimited positions where the scalar protocol resets and reads
/// the counter, stored flat ([`WINDOW_STRIDE`] f64s per window) so the
/// batched recorder's `finish` is a buffer move rather than a re-copy.
///
/// Recording pays the core simulation once; any number of events can then
/// be evaluated against the trace through the dense response kernel
/// ([`TraceEval`]) — one matrix row dot and one noise draw per window,
/// with results bit-identical to having run the scalar [`measure_once`]
/// protocol with that event programmed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedTrace {
    flat: Vec<f64>,
    steps: usize,
    support: u32,
}

/// An owned session list with a columnar encoding (the orphan rule keeps
/// `Vec<RecordedTrace>` itself from implementing the foreign trait).
///
/// The list stores as two pages mirroring the flat recording layout: one
/// `u64` metadata column (`[n, then per trace: flat length, steps,
/// support]`) and one `f64` column concatenating every trace's window
/// sums — so a checkpoint of thousands of sessions loads as two
/// contiguous reads instead of a JSON tree per window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceLog(pub Vec<RecordedTrace>);

impl aegis_par::Columnar for TraceLog {
    fn schema() -> aegis_par::ColumnSchema {
        aegis_par::ColumnSchema::new("fuzzer/recorded-traces", 1)
    }

    fn encode_columns(&self, frame: &mut aegis_par::ColumnFrame) {
        let traces = &self.0;
        let mut meta = Vec::with_capacity(1 + traces.len() * 3);
        meta.push(traces.len() as u64);
        let total: usize = traces.iter().map(|t| t.flat.len()).sum();
        let mut flat = Vec::with_capacity(total);
        for t in traces {
            meta.push(t.flat.len() as u64);
            meta.push(t.steps as u64);
            meta.push(u64::from(t.support));
            flat.extend_from_slice(&t.flat);
        }
        frame.push_u64(meta);
        frame.push_f64(flat);
    }

    fn decode_columns(
        reader: &mut aegis_par::FrameReader,
    ) -> Result<Self, aegis_par::FrameError> {
        use aegis_par::store::usize_from_u64;
        use aegis_par::FrameError;
        let meta = reader.u64s()?;
        let mut flat = reader.f64s()?;
        let (&n, per) = meta
            .split_first()
            .ok_or_else(|| FrameError::new("trace meta column empty"))?;
        let n = usize_from_u64(n, "trace count")?;
        if per.len() != n * 3 {
            return Err(FrameError::new("trace meta column length mismatch"));
        }
        // Traces are split off the *back* of the concatenated page (in
        // reverse), so each trace's buffer is the moved tail allocation —
        // no per-trace copy of the front.
        let mut traces: Vec<RecordedTrace> = Vec::with_capacity(n);
        for chunk in per.chunks_exact(3).rev() {
            let [len, steps, support] = *chunk else { unreachable!() };
            let len = usize_from_u64(len, "trace flat length")?;
            if len % WINDOW_STRIDE != 0 {
                return Err(FrameError::new("trace length not window aligned"));
            }
            let support = u32::try_from(support)
                .map_err(|_| FrameError::new("trace support exceeds u32"))?;
            let at = flat
                .len()
                .checked_sub(len)
                .ok_or_else(|| FrameError::new("trace page shorter than meta claims"))?;
            traces.push(RecordedTrace {
                flat: flat.split_off(at),
                steps: usize_from_u64(steps, "trace steps")?,
                support,
            });
        }
        if !flat.is_empty() {
            return Err(FrameError::new("trace page longer than meta claims"));
        }
        traces.reverse();
        Ok(TraceLog(traces))
    }
}

impl RecordedTrace {
    /// Number of recorded measurement windows.
    pub fn windows(&self) -> usize {
        self.flat.len() / WINDOW_STRIDE
    }

    /// Number of activity steps the recording folded into window sums.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Union feature-support bitmask over every window sum (both the full
    /// and host-only folds). An event whose
    /// [`ResponseMatrix::support`] mask is disjoint from this one reads
    /// exactly zero on every window of the trace — the noise-free zero
    /// path of the read arithmetic — so evaluation can skip the candidate
    /// outright without changing any result.
    pub fn support(&self) -> u32 {
        self.support
    }
}

/// Union feature-support bitmask over a session's flat window sums —
/// shared by the scalar and batched recorders so the two can never drift.
fn support_of(flat: &[f64]) -> u32 {
    let mut mask = 0u32;
    for w in flat.chunks_exact(WINDOW_STRIDE) {
        for i in 0..Feature::COUNT {
            if w[i] != 0.0 || w[Feature::COUNT + i] != 0.0 {
                mask |= 1 << i;
            }
        }
    }
    mask
}

/// Records fenced measurement windows on a core — the write side of the
/// single-pass trace protocol.
#[derive(Debug)]
pub struct TraceRecorder<'a> {
    core: &'a mut Core,
    catalog: &'a IsaCatalog,
    marks: Vec<(usize, usize)>,
}

impl<'a> TraceRecorder<'a> {
    /// Starts recording on the core (discarding any previous recording).
    pub fn begin(core: &'a mut Core, catalog: &'a IsaCatalog) -> Self {
        core.start_recording();
        TraceRecorder {
            core,
            catalog,
            marks: Vec::new(),
        }
    }

    /// Executes one fenced window exactly like [`measure_once`] —
    /// serializing CPUID, the sequence with faulting instructions
    /// skipped, CPUID — and marks the counter-reset and RDPMC positions
    /// of the scalar protocol.
    pub fn window(&mut self, seq: &[InstrId]) {
        let cpuid = well_known(WellKnown::Cpuid);
        let _ = self.core.execute_instr(&cpuid, Origin::Host);
        let reset = self.core.recording_len();
        for &id in seq {
            if let Some(spec) = self.catalog.get(id) {
                let _ = self.core.execute_instr(spec, Origin::Host);
            }
        }
        let read = self.core.recording_len();
        let _ = self.core.execute_instr(&cpuid, Origin::Host);
        self.marks.push((reset, read));
    }

    /// Stops recording and folds the step log into per-window sums.
    pub fn finish(self) -> RecordedTrace {
        let steps = self.core.take_recording();
        let mut flat = Vec::with_capacity(self.marks.len() * WINDOW_STRIDE);
        for &(reset, read) in &self.marks {
            // Same `+=` fold, same step order as a live lane.
            let mut all = ActivityVector::ZERO;
            let mut any_guest = false;
            for (origin, delta) in &steps[reset..read] {
                all += *delta;
                any_guest |= origin.is_guest();
            }
            // With no guest steps the host-only fold is the same
            // sequence of adds, so the full fold is reused verbatim —
            // the common case for host-driven fuzzing windows.
            let host = if any_guest {
                let mut host = ActivityVector::ZERO;
                for (origin, delta) in &steps[reset..read] {
                    if !origin.is_guest() {
                        host += *delta;
                    }
                }
                host
            } else {
                all
            };
            flat.extend_from_slice(&all.0);
            flat.extend_from_slice(&host.0);
        }
        let support = support_of(&flat);
        RecordedTrace {
            flat,
            steps: steps.len(),
            support,
        }
    }
}

/// Records fenced measurement windows on every lane of a [`CoreBatch`]
/// at once — the lane-parallel write side of the single-pass trace
/// protocol.
///
/// Lane `l` of the batch records one candidate's session; the traces
/// returned by [`BatchTraceRecorder::finish`] are bit-identical to what a
/// scalar [`TraceRecorder`] produces on lane `l`'s scalar twin
/// (`template.clone()` + `reseed(seeds[l])`) driven through the same
/// window sequence. The batch folds window sums as it executes, so there
/// is no per-step activity log and no end-of-session re-fold pass.
#[derive(Debug)]
pub struct BatchTraceRecorder<'a> {
    batch: &'a mut CoreBatch,
    catalog: &'a IsaCatalog,
    /// Step counts at `begin`, subtracted so traces count only recorded
    /// steps — the analogue of the scalar recorder's fresh activity log.
    base_steps: Vec<usize>,
    /// Per-lane window sums in window order, flat: each window appends
    /// `2 × Feature::COUNT` values (the all-origins fold, then the
    /// host-only fold). Flat storage keeps the per-window hot path to two
    /// slice appends and moves straight into the trace at `finish`.
    sums: Vec<Vec<f64>>,
    /// Per-lane running support union, folded window by window from
    /// [`CoreBatch::fenced_window`]'s return value — bit-identical to
    /// [`support_of`] over the finished sums, without the finish-time
    /// rescan.
    support: Vec<u32>,
    /// The serializing fence, built once — [`well_known`] allocates its
    /// mnemonic, which must not happen per window.
    fence: InstructionSpec,
    /// Scratch for resolved specs, reused across lanes and windows.
    specs: Vec<&'a InstructionSpec>,
}

/// Flat f64s reserved per lane up front: enough for a typical recording
/// protocol (~64 windows) without reallocating mid-session.
const SUMS_RESERVE: usize = 2 * Feature::COUNT * 64;

impl<'a> BatchTraceRecorder<'a> {
    /// Starts recording on every lane of the batch.
    pub fn begin(batch: &'a mut CoreBatch, catalog: &'a IsaCatalog) -> Self {
        let n = batch.n_lanes();
        let base_steps = (0..n).map(|l| batch.steps(l)).collect();
        BatchTraceRecorder {
            batch,
            catalog,
            base_steps,
            sums: (0..n).map(|_| Vec::with_capacity(SUMS_RESERVE)).collect(),
            support: vec![0; n],
            fence: well_known(WellKnown::Cpuid),
            specs: Vec::new(),
        }
    }

    /// Executes one fenced window on every lane — lane `l` running
    /// `seqs[l]` — exactly like [`TraceRecorder::window`] on each lane's
    /// scalar twin: serializing CPUID, the sequence with faulting
    /// instructions skipped, CPUID. The fences execute outside the window
    /// sums, mirroring the scalar protocol's reset/read marks. Window
    /// execution goes through [`CoreBatch::fenced_window`], whose memoized
    /// replay path makes repeated windows (the whole recording protocol)
    /// cost O(features) instead of a per-instruction re-simulation.
    ///
    /// # Panics
    ///
    /// Panics if `seqs.len()` differs from the batch's lane count.
    pub fn window(&mut self, seqs: &[&[InstrId]]) {
        assert_eq!(
            seqs.len(),
            self.batch.n_lanes(),
            "one sequence per lane"
        );
        let mut resolved: Option<&[InstrId]> = None;
        for (lane, seq) in seqs.iter().enumerate() {
            // The protocol's calibration windows hand every lane the same
            // sequence (often literally the same slice); resolve specs
            // once per distinct sequence instead of once per lane.
            if resolved != Some(*seq) {
                self.specs.clear();
                self.specs
                    .extend(seq.iter().filter_map(|&id| self.catalog.get(id)));
                resolved = Some(*seq);
            }
            self.support[lane] |= self.batch.fenced_window(
                lane,
                &self.fence,
                &self.specs,
                Origin::Host,
                &mut self.sums[lane],
            );
        }
    }

    /// Stops recording and returns one trace per lane, in lane order.
    /// Each lane's flat sum buffer moves into its trace unchanged — no
    /// per-window re-copy.
    pub fn finish(self) -> Vec<RecordedTrace> {
        let BatchTraceRecorder {
            batch,
            base_steps,
            sums,
            support,
            ..
        } = self;
        sums.into_iter()
            .enumerate()
            .map(|(lane, flat)| {
                debug_assert_eq!(support[lane], support_of(&flat));
                RecordedTrace {
                    steps: batch.steps(lane) - base_steps[lane],
                    flat,
                    support: support[lane],
                }
            })
            .collect()
    }
}

/// Evaluates one event's counter against a [`RecordedTrace`] — the read
/// side of the single-pass trace protocol.
///
/// Each window costs one dense-row dot product and (for responding
/// windows) one noise draw; there is no per-instruction work left at
/// evaluation time. Windows are consumed lazily and in order, so an
/// evaluation abandoned after the generation gate never pays for the
/// confirmation windows.
#[derive(Debug)]
pub struct TraceEval<'a> {
    trace: &'a RecordedTrace,
    matrix: &'a ResponseMatrix,
    noise_base: u64,
    event: EventId,
    /// Cached from the matrix so the per-window loop never re-indexes it.
    guest_visible: bool,
    /// Read index of the event's noise stream. A plain counter — unlike a
    /// live [`aegis_microarch::CounterLane`] the evaluator is exclusively
    /// owned, so it
    /// needs no atomic; the arithmetic per read is the shared
    /// [`aegis_microarch::read_counter`], identical to the lane's.
    draws: u64,
    window: usize,
}

impl<'a> TraceEval<'a> {
    /// Prepares to evaluate `event` against `trace`. `noise_base` must be
    /// the recording core's measurement-noise base (the evaluator then
    /// draws the exact noise the scalar PMU would have drawn).
    pub fn new(
        trace: &'a RecordedTrace,
        matrix: &'a ResponseMatrix,
        noise_base: u64,
        event: EventId,
    ) -> Self {
        TraceEval {
            trace,
            matrix,
            noise_base,
            event,
            guest_visible: matrix.guest_visible(event),
            draws: 0,
            window: 0,
        }
    }

    /// Number of windows consumed so far.
    pub fn windows_consumed(&self) -> usize {
        self.window
    }

    /// Returns the next window's counter delta, bit-identical to what the
    /// scalar [`measure_once`] would have read, or `None` when every
    /// recorded window has been consumed.
    pub fn next_window(&mut self) -> Option<f64> {
        let at = self.window * WINDOW_STRIDE;
        let w = self.trace.flat.get(at..at + WINDOW_STRIDE)?;
        self.window += 1;
        // The exact arithmetic a live lane would apply at this read
        // index, borrowing the fold straight out of flat storage.
        let acc = if self.guest_visible {
            ActivityVector::from_slice(&w[..Feature::COUNT])
        } else {
            ActivityVector::from_slice(&w[Feature::COUNT..])
        };
        let draw = self.draws;
        self.draws += 1;
        Some(read_counter(self.matrix, self.event, self.noise_base, draw, acc) as f64)
    }

    /// Consumes the next `n` windows and returns their median —
    /// the batched counterpart of [`measure_median`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` windows remain.
    pub fn median_of(&mut self, n: usize) -> f64 {
        let n = n.max(1);
        // The generation gate runs this for every (event, candidate)
        // pair; a stack buffer keeps the common rep counts allocation-free.
        let mut buf = [0.0f64; 32];
        if n <= buf.len() {
            for slot in &mut buf[..n] {
                *slot = self.next_window().expect("trace window underflow");
            }
            median(&mut buf[..n])
        } else {
            let mut samples: Vec<f64> = (0..n)
                .map(|_| self.next_window().expect("trace window underflow"))
                .collect();
            median(&mut samples)
        }
    }

    /// Consumes the next `n` windows and returns the raw deltas — the
    /// batched counterpart of [`measure_repeated`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` windows remain.
    pub fn take_windows(&mut self, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| self.next_window().expect("trace window underflow"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_isa::Vendor;
    use aegis_microarch::{named, InterferenceConfig, MicroArch};

    fn setup() -> (IsaCatalog, Core) {
        let catalog = IsaCatalog::synthetic(Vendor::Amd, 7);
        let mut core = Core::new(MicroArch::AmdEpyc7252, 7);
        core.set_interference(InterferenceConfig::isolated());
        (catalog, core)
    }

    #[test]
    fn flush_load_gadget_moves_refill_event() {
        let (catalog, mut core) = setup();
        let ev = core
            .catalog()
            .lookup(named::DATA_CACHE_REFILLS_FROM_SYSTEM)
            .unwrap();
        program_event(&mut core, ev);
        let seq = [WellKnown::Clflush.id(), WellKnown::Load64.id()];
        let delta = measure_median(&mut core, &catalog, &seq, 10);
        assert!((0.9..1.5).contains(&delta), "refill delta {delta}");
    }

    #[test]
    fn nop_does_not_move_refill_event() {
        let (catalog, mut core) = setup();
        let ev = core
            .catalog()
            .lookup(named::DATA_CACHE_REFILLS_FROM_SYSTEM)
            .unwrap();
        program_event(&mut core, ev);
        let delta = measure_median(&mut core, &catalog, &[WellKnown::Nop.id()], 10);
        assert!(delta.abs() < 0.5, "nop delta {delta}");
    }

    #[test]
    fn uops_event_counts_everything() {
        let (catalog, mut core) = setup();
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        program_event(&mut core, ev);
        let delta = measure_median(&mut core, &catalog, &[WellKnown::Add64.id()], 10);
        assert!(delta >= 1.0, "uops delta {delta}");
    }

    #[test]
    fn faulting_instructions_are_skipped() {
        let (catalog, mut core) = setup();
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        program_event(&mut core, ev);
        let illegal = catalog.variants().iter().find(|v| !v.legal).unwrap().id;
        let delta = measure_median(&mut core, &catalog, &[illegal], 5);
        assert!(delta.abs() < 1.0, "illegal instr delta {delta}");
    }

    #[test]
    fn repeated_measure_returns_r_samples() {
        let (catalog, mut core) = setup();
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        program_event(&mut core, ev);
        let v = measure_repeated(&mut core, &catalog, &[WellKnown::Add64.id()], 7);
        assert_eq!(v.len(), 7);
    }

    #[test]
    fn trace_eval_bit_matches_scalar_measurement() {
        // The batched path must reproduce the scalar protocol exactly:
        // same-seeded cores, same window sequence → bit-identical deltas
        // for every event, even though the recording core never programs
        // a counter.
        let seqs: [&[aegis_isa::InstrId]; 3] = [
            &[WellKnown::Clflush.id(), WellKnown::Load64.id()],
            &[WellKnown::Add64.id()],
            &[WellKnown::Store64.id(), WellKnown::Load64.id(), WellKnown::Nop.id()],
        ];
        let reps = 10;

        let (catalog, mut rec_core) = setup();
        let matrix = std::sync::Arc::clone(rec_core.pmu().matrix());
        let noise_base = rec_core.pmu().noise_base();
        let mut rec = TraceRecorder::begin(&mut rec_core, &catalog);
        for seq in seqs {
            for _ in 0..reps {
                rec.window(seq);
            }
        }
        let trace = rec.finish();
        assert_eq!(trace.windows(), 3 * reps);
        assert!(trace.steps() > 0);

        let events = [
            named::RETIRED_UOPS,
            named::DATA_CACHE_REFILLS_FROM_SYSTEM,
            named::LS_DISPATCH,
        ];
        for name in events {
            let (catalog2, mut scalar_core) = setup();
            let ev = scalar_core.catalog().lookup(name).unwrap();
            program_event(&mut scalar_core, ev);
            let mut eval = TraceEval::new(&trace, &matrix, noise_base, ev);
            for seq in seqs {
                let scalar: Vec<f64> = (0..reps)
                    .map(|_| measure_once(&mut scalar_core, &catalog2, seq))
                    .collect();
                let batched = eval.take_windows(reps);
                for (s, b) in scalar.iter().zip(&batched) {
                    assert_eq!(s.to_bits(), b.to_bits(), "event {name}: {s} vs {b}");
                }
            }
        }
    }

    #[test]
    fn batch_recorder_bit_matches_scalar_recorder_per_lane() {
        // Lane l of the batched recorder must produce the exact trace a
        // scalar TraceRecorder produces on `baseline.clone()` +
        // `reseed(seeds[l])` driven through the same window schedule —
        // sums, step counts, and support masks all bit-identical.
        let (catalog, baseline) = setup();
        let seeds = [11u64, 0x5eed_cafe, 42, 7];
        let lane_seqs: [&[InstrId]; 4] = [
            &[WellKnown::Clflush.id(), WellKnown::Load64.id()],
            &[WellKnown::Add64.id()],
            &[WellKnown::Store64.id(), WellKnown::Load64.id()],
            &[WellKnown::BranchBiased.id(), WellKnown::Nop.id()],
        ];
        let reps = 6;

        let mut batch = CoreBatch::from_template(&baseline, &seeds);
        let mut rec = BatchTraceRecorder::begin(&mut batch, &catalog);
        for _ in 0..reps {
            rec.window(&lane_seqs);
        }
        let batched = rec.finish();
        assert_eq!(batched.len(), seeds.len());

        for (lane, &seed) in seeds.iter().enumerate() {
            let mut session = baseline.clone();
            session.reseed(seed);
            let mut rec = TraceRecorder::begin(&mut session, &catalog);
            for _ in 0..reps {
                rec.window(lane_seqs[lane]);
            }
            let scalar = rec.finish();
            assert_eq!(scalar, batched[lane], "lane {lane} diverged");
            assert_eq!(scalar.steps(), batched[lane].steps());
            assert_eq!(scalar.support(), batched[lane].support());
        }
    }

    #[test]
    fn trace_eval_median_matches_measure_median() {
        let (catalog, mut scalar_core) = setup();
        let ev = scalar_core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        program_event(&mut scalar_core, ev);
        let seq = [WellKnown::Clflush.id(), WellKnown::Load64.id()];
        let scalar = measure_median(&mut scalar_core, &catalog, &seq, 10);

        let (_, mut rec_core) = setup();
        let matrix = std::sync::Arc::clone(rec_core.pmu().matrix());
        let noise_base = rec_core.pmu().noise_base();
        let mut rec = TraceRecorder::begin(&mut rec_core, &catalog);
        for _ in 0..10 {
            rec.window(&seq);
        }
        let trace = rec.finish();
        let mut eval = TraceEval::new(&trace, &matrix, noise_base, ev);
        assert_eq!(scalar.to_bits(), eval.median_of(10).to_bits());
    }

    #[test]
    fn disjoint_support_reads_exactly_zero() {
        // The fuzzer skips (event, candidate) pairs whose feature support
        // is disjoint from the trace's. That is only sound if disjoint
        // support really implies a bit-exact zero read on every window —
        // pin the algebraic identity here.
        let (catalog, mut core) = setup();
        let matrix = std::sync::Arc::clone(core.pmu().matrix());
        let noise_base = core.pmu().noise_base();
        let mut rec = TraceRecorder::begin(&mut core, &catalog);
        for _ in 0..6 {
            rec.window(&[WellKnown::Nop.id()]);
        }
        let trace = rec.finish();
        let mut disjoint = 0;
        for e in 0..matrix.n_events() as u32 {
            let ev = EventId(e);
            if matrix.support(ev) & trace.support() != 0 {
                continue;
            }
            disjoint += 1;
            let mut eval = TraceEval::new(&trace, &matrix, noise_base, ev);
            while let Some(v) = eval.next_window() {
                assert_eq!(v.to_bits(), 0.0f64.to_bits(), "event {ev} read {v}");
            }
        }
        assert!(disjoint > 0, "nop trace should leave some events disjoint");
    }

    #[test]
    fn trace_log_columnar_roundtrip_is_bit_exact() {
        use aegis_par::Columnar;
        let (catalog, mut core) = setup();
        let mut traces = Vec::new();
        for n in 1..4usize {
            let mut rec = TraceRecorder::begin(&mut core, &catalog);
            for _ in 0..n {
                rec.window(&[WellKnown::Add64.id()]);
            }
            traces.push(rec.finish());
        }
        let log = TraceLog(traces);
        let back = TraceLog::from_frame(log.to_frame()).unwrap();
        assert_eq!(back.0.len(), log.0.len());
        for (b, t) in back.0.iter().zip(&log.0) {
            assert_eq!(b.steps, t.steps);
            assert_eq!(b.support, t.support);
            assert_eq!(
                b.flat.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                t.flat.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
        assert_eq!(
            TraceLog::from_frame(TraceLog::default().to_frame()).unwrap(),
            TraceLog::default()
        );
        // A meta column that disagrees with the page must not decode.
        let mut frame = aegis_par::ColumnFrame::new();
        frame.push_u64(vec![1, WINDOW_STRIDE as u64, 3, 0]);
        frame.push_f64(vec![0.0; WINDOW_STRIDE - 1]);
        assert!(TraceLog::from_frame(frame).is_err());
    }

    #[test]
    fn lazy_eval_stops_early_without_panicking() {
        let (catalog, mut core) = setup();
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        let matrix = std::sync::Arc::clone(core.pmu().matrix());
        let noise_base = core.pmu().noise_base();
        let mut rec = TraceRecorder::begin(&mut core, &catalog);
        for _ in 0..5 {
            rec.window(&[WellKnown::Add64.id()]);
        }
        let trace = rec.finish();
        let mut eval = TraceEval::new(&trace, &matrix, noise_base, ev);
        assert!(eval.next_window().is_some());
        drop(eval); // abandoning mid-trace is free
        let mut eval2 = TraceEval::new(&trace, &matrix, noise_base, ev);
        assert_eq!(eval2.take_windows(5).len(), 5);
        assert!(eval2.next_window().is_none());
    }
}
