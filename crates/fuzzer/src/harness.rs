//! The measurement harness: executes candidate gadgets under controlled
//! conditions and reads the target HPC event with RDPMC.
//!
//! Mirrors the paper's setup (Section VI-D): the fuzzing process is pinned
//! to an isolated core, all memory operands point at a pre-allocated data
//! page (the simulator's scratch page), serializing CPUID instructions
//! fence the measured region, and each measurement is repeated with the
//! median taken to suppress external interference.

use aegis_attack_stats::median;
use aegis_isa::{well_known, InstrId, IsaCatalog, WellKnown};
use aegis_microarch::{
    read_counter, ActivityVector, Core, CounterConfig, EventId, Origin, OriginFilter,
    ResponseMatrix,
};
use serde::{Deserialize, Serialize};

/// Minimal median helper, private to the fuzzer (avoids a dependency on
/// the attack crate for one function).
///
/// Selection instead of a full sort: the median of `reps` counter reads
/// sits on the generation-gate hot path of every (event, candidate) pair,
/// and `select_nth_unstable` is measurably cheaper than sorting ten
/// elements with a comparator. Counter reads are non-negative finite
/// (quantized `u64` values), so `f64::max` over the lower partition is
/// exact and the result is value-identical to the sort-based median.
mod aegis_attack_stats {
    pub fn median(xs: &mut [f64]) -> f64 {
        let n = xs.len();
        if n == 0 {
            return 0.0;
        }
        let mid = n / 2;
        let (below, at_mid, _) = xs.select_nth_unstable_by(mid, f64::total_cmp);
        if n % 2 == 1 {
            *at_mid
        } else {
            let hi = *at_mid;
            let lo = below.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            (lo + hi) / 2.0
        }
    }
}

/// Counter slot the harness reserves for the event under test.
const SLOT: usize = 0;

/// Programs the target event on the harness slot.
///
/// # Panics
///
/// Panics if the event is unknown on the core.
pub fn program_event(core: &mut Core, event: EventId) {
    core.pmu_mut()
        .program(
            SLOT,
            CounterConfig {
                event,
                filter: OriginFilter::Any,
            },
        )
        .expect("profiled event must exist on this core");
}

/// Executes one instruction sequence between serializing fences and
/// returns the counter delta (one "measurement" in the paper's protocol):
/// serialize, zero the counter (WRMSR), run the sequence, read (RDPMC),
/// serialize. One counter read — and therefore one measurement-noise
/// draw — per window.
///
/// Faulting instructions contribute nothing; the harness skips them the
/// way the real prolog/epilog recovers from SIGILL.
pub fn measure_once(core: &mut Core, catalog: &IsaCatalog, seq: &[InstrId]) -> f64 {
    let cpuid = well_known(WellKnown::Cpuid);
    let _ = core.execute_instr(&cpuid, Origin::Host);
    core.pmu_mut().reset_value(SLOT);
    for &id in seq {
        if let Some(spec) = catalog.get(id) {
            let _ = core.execute_instr(spec, Origin::Host);
        }
    }
    let delta = core.pmu().rdpmc(SLOT).expect("slot programmed") as f64;
    let _ = core.execute_instr(&cpuid, Origin::Host);
    delta
}

/// Repeats [`measure_once`] `reps` times and returns the median delta —
/// the paper's noise-suppression protocol with `reps = 10`.
pub fn measure_median(core: &mut Core, catalog: &IsaCatalog, seq: &[InstrId], reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| measure_once(core, catalog, seq))
        .collect();
    median(&mut samples)
}

/// Runs a sequence `r` times inside one window, returning the per-
/// iteration deltas (for the repeated-triggers confirmation of Fig. 6).
pub fn measure_repeated(
    core: &mut Core,
    catalog: &IsaCatalog,
    seq: &[InstrId],
    r: usize,
) -> Vec<f64> {
    (0..r).map(|_| measure_once(core, catalog, seq)).collect()
}

/// One recorded measurement window: the activity accumulated between the
/// counter reset and the RDPMC read, pre-summed in step order.
///
/// Two folds are kept because the SEV observability boundary partitions
/// events into two accumulation behaviours: guest-visible counters fold
/// every step, guest-invisible counters fold only host-origin steps. The
/// folds use the same component-wise `+=` in the same step order as a
/// live [`aegis_microarch::CounterLane`], so the sums are bit-identical to what a
/// programmed counter would have accumulated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct WindowSum {
    all: ActivityVector,
    host: ActivityVector,
}

/// A recorded measurement session: per-window activity sums at the
/// fence-delimited positions where the scalar protocol resets and reads
/// the counter.
///
/// Recording pays the core simulation once; any number of events can then
/// be evaluated against the trace through the dense response kernel
/// ([`TraceEval`]) — one matrix row dot and one noise draw per window,
/// with results bit-identical to having run the scalar [`measure_once`]
/// protocol with that event programmed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedTrace {
    sums: Vec<WindowSum>,
    steps: usize,
    support: u32,
}

impl RecordedTrace {
    /// Number of recorded measurement windows.
    pub fn windows(&self) -> usize {
        self.sums.len()
    }

    /// Number of activity steps the recording folded into window sums.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Union feature-support bitmask over every window sum (both the full
    /// and host-only folds). An event whose
    /// [`ResponseMatrix::support`] mask is disjoint from this one reads
    /// exactly zero on every window of the trace — the noise-free zero
    /// path of the read arithmetic — so evaluation can skip the candidate
    /// outright without changing any result.
    pub fn support(&self) -> u32 {
        self.support
    }
}

/// Records fenced measurement windows on a core — the write side of the
/// single-pass trace protocol.
#[derive(Debug)]
pub struct TraceRecorder<'a> {
    core: &'a mut Core,
    catalog: &'a IsaCatalog,
    marks: Vec<(usize, usize)>,
}

impl<'a> TraceRecorder<'a> {
    /// Starts recording on the core (discarding any previous recording).
    pub fn begin(core: &'a mut Core, catalog: &'a IsaCatalog) -> Self {
        core.start_recording();
        TraceRecorder {
            core,
            catalog,
            marks: Vec::new(),
        }
    }

    /// Executes one fenced window exactly like [`measure_once`] —
    /// serializing CPUID, the sequence with faulting instructions
    /// skipped, CPUID — and marks the counter-reset and RDPMC positions
    /// of the scalar protocol.
    pub fn window(&mut self, seq: &[InstrId]) {
        let cpuid = well_known(WellKnown::Cpuid);
        let _ = self.core.execute_instr(&cpuid, Origin::Host);
        let reset = self.core.recording_len();
        for &id in seq {
            if let Some(spec) = self.catalog.get(id) {
                let _ = self.core.execute_instr(spec, Origin::Host);
            }
        }
        let read = self.core.recording_len();
        let _ = self.core.execute_instr(&cpuid, Origin::Host);
        self.marks.push((reset, read));
    }

    /// Stops recording and folds the step log into per-window sums.
    pub fn finish(self) -> RecordedTrace {
        let steps = self.core.take_recording();
        let sums = self
            .marks
            .iter()
            .map(|&(reset, read)| {
                // Same `+=` fold, same step order as a live lane.
                let mut all = ActivityVector::ZERO;
                let mut any_guest = false;
                for (origin, delta) in &steps[reset..read] {
                    all += *delta;
                    any_guest |= origin.is_guest();
                }
                // With no guest steps the host-only fold is the same
                // sequence of adds, so the full fold is reused verbatim —
                // the common case for host-driven fuzzing windows.
                let host = if any_guest {
                    let mut host = ActivityVector::ZERO;
                    for (origin, delta) in &steps[reset..read] {
                        if !origin.is_guest() {
                            host += *delta;
                        }
                    }
                    host
                } else {
                    all
                };
                WindowSum { all, host }
            })
            .collect::<Vec<WindowSum>>();
        let support = sums.iter().fold(0u32, |m, s| {
            let nonzero = |v: &ActivityVector| {
                v.0.iter()
                    .enumerate()
                    .filter(|(_, &x)| x != 0.0)
                    .fold(0u32, |m, (i, _)| m | 1 << i)
            };
            m | nonzero(&s.all) | nonzero(&s.host)
        });
        RecordedTrace {
            sums,
            steps: steps.len(),
            support,
        }
    }
}

/// Evaluates one event's counter against a [`RecordedTrace`] — the read
/// side of the single-pass trace protocol.
///
/// Each window costs one dense-row dot product and (for responding
/// windows) one noise draw; there is no per-instruction work left at
/// evaluation time. Windows are consumed lazily and in order, so an
/// evaluation abandoned after the generation gate never pays for the
/// confirmation windows.
#[derive(Debug)]
pub struct TraceEval<'a> {
    trace: &'a RecordedTrace,
    matrix: &'a ResponseMatrix,
    noise_base: u64,
    event: EventId,
    /// Cached from the matrix so the per-window loop never re-indexes it.
    guest_visible: bool,
    /// Read index of the event's noise stream. A plain counter — unlike a
    /// live [`aegis_microarch::CounterLane`] the evaluator is exclusively
    /// owned, so it
    /// needs no atomic; the arithmetic per read is the shared
    /// [`aegis_microarch::read_counter`], identical to the lane's.
    draws: u64,
    window: usize,
}

impl<'a> TraceEval<'a> {
    /// Prepares to evaluate `event` against `trace`. `noise_base` must be
    /// the recording core's measurement-noise base (the evaluator then
    /// draws the exact noise the scalar PMU would have drawn).
    pub fn new(
        trace: &'a RecordedTrace,
        matrix: &'a ResponseMatrix,
        noise_base: u64,
        event: EventId,
    ) -> Self {
        TraceEval {
            trace,
            matrix,
            noise_base,
            event,
            guest_visible: matrix.guest_visible(event),
            draws: 0,
            window: 0,
        }
    }

    /// Number of windows consumed so far.
    pub fn windows_consumed(&self) -> usize {
        self.window
    }

    /// One counter read over a window sum — the exact arithmetic a live
    /// lane would apply at this read index.
    #[inline]
    fn read_window(&mut self, sum: &WindowSum) -> f64 {
        let acc = if self.guest_visible {
            &sum.all
        } else {
            &sum.host
        };
        let draw = self.draws;
        self.draws += 1;
        read_counter(self.matrix, self.event, self.noise_base, draw, acc) as f64
    }

    /// Returns the next window's counter delta, bit-identical to what the
    /// scalar [`measure_once`] would have read, or `None` when every
    /// recorded window has been consumed.
    pub fn next_window(&mut self) -> Option<f64> {
        let sum = self.trace.sums.get(self.window)?;
        self.window += 1;
        Some(self.read_window(sum))
    }

    /// Consumes the next `n` windows and returns their median —
    /// the batched counterpart of [`measure_median`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` windows remain.
    pub fn median_of(&mut self, n: usize) -> f64 {
        let n = n.max(1);
        // The generation gate runs this for every (event, candidate)
        // pair; a stack buffer keeps the common rep counts allocation-free.
        let mut buf = [0.0f64; 32];
        if n <= buf.len() {
            for slot in &mut buf[..n] {
                *slot = self.next_window().expect("trace window underflow");
            }
            median(&mut buf[..n])
        } else {
            let mut samples: Vec<f64> = (0..n)
                .map(|_| self.next_window().expect("trace window underflow"))
                .collect();
            median(&mut samples)
        }
    }

    /// Consumes the next `n` windows and returns the raw deltas — the
    /// batched counterpart of [`measure_repeated`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` windows remain.
    pub fn take_windows(&mut self, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| self.next_window().expect("trace window underflow"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_isa::Vendor;
    use aegis_microarch::{named, InterferenceConfig, MicroArch};

    fn setup() -> (IsaCatalog, Core) {
        let catalog = IsaCatalog::synthetic(Vendor::Amd, 7);
        let mut core = Core::new(MicroArch::AmdEpyc7252, 7);
        core.set_interference(InterferenceConfig::isolated());
        (catalog, core)
    }

    #[test]
    fn flush_load_gadget_moves_refill_event() {
        let (catalog, mut core) = setup();
        let ev = core
            .catalog()
            .lookup(named::DATA_CACHE_REFILLS_FROM_SYSTEM)
            .unwrap();
        program_event(&mut core, ev);
        let seq = [WellKnown::Clflush.id(), WellKnown::Load64.id()];
        let delta = measure_median(&mut core, &catalog, &seq, 10);
        assert!((0.9..1.5).contains(&delta), "refill delta {delta}");
    }

    #[test]
    fn nop_does_not_move_refill_event() {
        let (catalog, mut core) = setup();
        let ev = core
            .catalog()
            .lookup(named::DATA_CACHE_REFILLS_FROM_SYSTEM)
            .unwrap();
        program_event(&mut core, ev);
        let delta = measure_median(&mut core, &catalog, &[WellKnown::Nop.id()], 10);
        assert!(delta.abs() < 0.5, "nop delta {delta}");
    }

    #[test]
    fn uops_event_counts_everything() {
        let (catalog, mut core) = setup();
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        program_event(&mut core, ev);
        let delta = measure_median(&mut core, &catalog, &[WellKnown::Add64.id()], 10);
        assert!(delta >= 1.0, "uops delta {delta}");
    }

    #[test]
    fn faulting_instructions_are_skipped() {
        let (catalog, mut core) = setup();
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        program_event(&mut core, ev);
        let illegal = catalog.variants().iter().find(|v| !v.legal).unwrap().id;
        let delta = measure_median(&mut core, &catalog, &[illegal], 5);
        assert!(delta.abs() < 1.0, "illegal instr delta {delta}");
    }

    #[test]
    fn repeated_measure_returns_r_samples() {
        let (catalog, mut core) = setup();
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        program_event(&mut core, ev);
        let v = measure_repeated(&mut core, &catalog, &[WellKnown::Add64.id()], 7);
        assert_eq!(v.len(), 7);
    }

    #[test]
    fn trace_eval_bit_matches_scalar_measurement() {
        // The batched path must reproduce the scalar protocol exactly:
        // same-seeded cores, same window sequence → bit-identical deltas
        // for every event, even though the recording core never programs
        // a counter.
        let seqs: [&[aegis_isa::InstrId]; 3] = [
            &[WellKnown::Clflush.id(), WellKnown::Load64.id()],
            &[WellKnown::Add64.id()],
            &[WellKnown::Store64.id(), WellKnown::Load64.id(), WellKnown::Nop.id()],
        ];
        let reps = 10;

        let (catalog, mut rec_core) = setup();
        let matrix = std::sync::Arc::clone(rec_core.pmu().matrix());
        let noise_base = rec_core.pmu().noise_base();
        let mut rec = TraceRecorder::begin(&mut rec_core, &catalog);
        for seq in seqs {
            for _ in 0..reps {
                rec.window(seq);
            }
        }
        let trace = rec.finish();
        assert_eq!(trace.windows(), 3 * reps);
        assert!(trace.steps() > 0);

        let events = [
            named::RETIRED_UOPS,
            named::DATA_CACHE_REFILLS_FROM_SYSTEM,
            named::LS_DISPATCH,
        ];
        for name in events {
            let (catalog2, mut scalar_core) = setup();
            let ev = scalar_core.catalog().lookup(name).unwrap();
            program_event(&mut scalar_core, ev);
            let mut eval = TraceEval::new(&trace, &matrix, noise_base, ev);
            for seq in seqs {
                let scalar: Vec<f64> = (0..reps)
                    .map(|_| measure_once(&mut scalar_core, &catalog2, seq))
                    .collect();
                let batched = eval.take_windows(reps);
                for (s, b) in scalar.iter().zip(&batched) {
                    assert_eq!(s.to_bits(), b.to_bits(), "event {name}: {s} vs {b}");
                }
            }
        }
    }

    #[test]
    fn trace_eval_median_matches_measure_median() {
        let (catalog, mut scalar_core) = setup();
        let ev = scalar_core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        program_event(&mut scalar_core, ev);
        let seq = [WellKnown::Clflush.id(), WellKnown::Load64.id()];
        let scalar = measure_median(&mut scalar_core, &catalog, &seq, 10);

        let (_, mut rec_core) = setup();
        let matrix = std::sync::Arc::clone(rec_core.pmu().matrix());
        let noise_base = rec_core.pmu().noise_base();
        let mut rec = TraceRecorder::begin(&mut rec_core, &catalog);
        for _ in 0..10 {
            rec.window(&seq);
        }
        let trace = rec.finish();
        let mut eval = TraceEval::new(&trace, &matrix, noise_base, ev);
        assert_eq!(scalar.to_bits(), eval.median_of(10).to_bits());
    }

    #[test]
    fn disjoint_support_reads_exactly_zero() {
        // The fuzzer skips (event, candidate) pairs whose feature support
        // is disjoint from the trace's. That is only sound if disjoint
        // support really implies a bit-exact zero read on every window —
        // pin the algebraic identity here.
        let (catalog, mut core) = setup();
        let matrix = std::sync::Arc::clone(core.pmu().matrix());
        let noise_base = core.pmu().noise_base();
        let mut rec = TraceRecorder::begin(&mut core, &catalog);
        for _ in 0..6 {
            rec.window(&[WellKnown::Nop.id()]);
        }
        let trace = rec.finish();
        let mut disjoint = 0;
        for e in 0..matrix.n_events() as u32 {
            let ev = EventId(e);
            if matrix.support(ev) & trace.support() != 0 {
                continue;
            }
            disjoint += 1;
            let mut eval = TraceEval::new(&trace, &matrix, noise_base, ev);
            while let Some(v) = eval.next_window() {
                assert_eq!(v.to_bits(), 0.0f64.to_bits(), "event {ev} read {v}");
            }
        }
        assert!(disjoint > 0, "nop trace should leave some events disjoint");
    }

    #[test]
    fn lazy_eval_stops_early_without_panicking() {
        let (catalog, mut core) = setup();
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        let matrix = std::sync::Arc::clone(core.pmu().matrix());
        let noise_base = core.pmu().noise_base();
        let mut rec = TraceRecorder::begin(&mut core, &catalog);
        for _ in 0..5 {
            rec.window(&[WellKnown::Add64.id()]);
        }
        let trace = rec.finish();
        let mut eval = TraceEval::new(&trace, &matrix, noise_base, ev);
        assert!(eval.next_window().is_some());
        drop(eval); // abandoning mid-trace is free
        let mut eval2 = TraceEval::new(&trace, &matrix, noise_base, ev);
        assert_eq!(eval2.take_windows(5).len(), 5);
        assert!(eval2.next_window().is_none());
    }
}
