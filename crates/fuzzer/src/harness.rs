//! The measurement harness: executes candidate gadgets under controlled
//! conditions and reads the target HPC event with RDPMC.
//!
//! Mirrors the paper's setup (Section VI-D): the fuzzing process is pinned
//! to an isolated core, all memory operands point at a pre-allocated data
//! page (the simulator's scratch page), serializing CPUID instructions
//! fence the measured region, and each measurement is repeated with the
//! median taken to suppress external interference.

use aegis_attack_stats::median;
use aegis_isa::{well_known, InstrId, IsaCatalog, WellKnown};
use aegis_microarch::{Core, CounterConfig, EventId, Origin, OriginFilter};

/// Minimal median helper, private to the fuzzer (avoids a dependency on
/// the attack crate for one function).
mod aegis_attack_stats {
    pub fn median(xs: &mut [f64]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.sort_by(f64::total_cmp);
        let n = xs.len();
        if n % 2 == 1 {
            xs[n / 2]
        } else {
            (xs[n / 2 - 1] + xs[n / 2]) / 2.0
        }
    }
}

/// Counter slot the harness reserves for the event under test.
const SLOT: usize = 0;

/// Programs the target event on the harness slot.
///
/// # Panics
///
/// Panics if the event is unknown on the core.
pub fn program_event(core: &mut Core, event: EventId) {
    core.pmu_mut()
        .program(
            SLOT,
            CounterConfig {
                event,
                filter: OriginFilter::Any,
            },
        )
        .expect("profiled event must exist on this core");
}

/// Executes one instruction sequence between serializing fences and
/// returns the counter delta (one "measurement" in the paper's protocol).
///
/// Faulting instructions contribute nothing; the harness skips them the
/// way the real prolog/epilog recovers from SIGILL.
pub fn measure_once(core: &mut Core, catalog: &IsaCatalog, seq: &[InstrId]) -> f64 {
    let cpuid = well_known(WellKnown::Cpuid);
    // Serialize, snapshot, run, snapshot, serialize.
    let _ = core.execute_instr(&cpuid, Origin::Host);
    let before = core.pmu().rdpmc(SLOT).expect("slot programmed") as f64;
    for &id in seq {
        if let Some(spec) = catalog.get(id) {
            let _ = core.execute_instr(spec, Origin::Host);
        }
    }
    let after = core.pmu().rdpmc(SLOT).expect("slot programmed") as f64;
    let _ = core.execute_instr(&cpuid, Origin::Host);
    after - before
}

/// Repeats [`measure_once`] `reps` times and returns the median delta —
/// the paper's noise-suppression protocol with `reps = 10`.
pub fn measure_median(core: &mut Core, catalog: &IsaCatalog, seq: &[InstrId], reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| measure_once(core, catalog, seq))
        .collect();
    median(&mut samples)
}

/// Runs a sequence `r` times inside one window, returning the per-
/// iteration deltas (for the repeated-triggers confirmation of Fig. 6).
pub fn measure_repeated(
    core: &mut Core,
    catalog: &IsaCatalog,
    seq: &[InstrId],
    r: usize,
) -> Vec<f64> {
    (0..r).map(|_| measure_once(core, catalog, seq)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_isa::Vendor;
    use aegis_microarch::{named, InterferenceConfig, MicroArch};

    fn setup() -> (IsaCatalog, Core) {
        let catalog = IsaCatalog::synthetic(Vendor::Amd, 7);
        let mut core = Core::new(MicroArch::AmdEpyc7252, 7);
        core.set_interference(InterferenceConfig::isolated());
        (catalog, core)
    }

    #[test]
    fn flush_load_gadget_moves_refill_event() {
        let (catalog, mut core) = setup();
        let ev = core
            .catalog()
            .lookup(named::DATA_CACHE_REFILLS_FROM_SYSTEM)
            .unwrap();
        program_event(&mut core, ev);
        let seq = [WellKnown::Clflush.id(), WellKnown::Load64.id()];
        let delta = measure_median(&mut core, &catalog, &seq, 10);
        assert!((0.9..1.5).contains(&delta), "refill delta {delta}");
    }

    #[test]
    fn nop_does_not_move_refill_event() {
        let (catalog, mut core) = setup();
        let ev = core
            .catalog()
            .lookup(named::DATA_CACHE_REFILLS_FROM_SYSTEM)
            .unwrap();
        program_event(&mut core, ev);
        let delta = measure_median(&mut core, &catalog, &[WellKnown::Nop.id()], 10);
        assert!(delta.abs() < 0.5, "nop delta {delta}");
    }

    #[test]
    fn uops_event_counts_everything() {
        let (catalog, mut core) = setup();
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        program_event(&mut core, ev);
        let delta = measure_median(&mut core, &catalog, &[WellKnown::Add64.id()], 10);
        assert!(delta >= 1.0, "uops delta {delta}");
    }

    #[test]
    fn faulting_instructions_are_skipped() {
        let (catalog, mut core) = setup();
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        program_event(&mut core, ev);
        let illegal = catalog.variants().iter().find(|v| !v.legal).unwrap().id;
        let delta = measure_median(&mut core, &catalog, &[illegal], 5);
        assert!(delta.abs() < 1.0, "illegal instr delta {delta}");
    }

    #[test]
    fn repeated_measure_returns_r_samples() {
        let (catalog, mut core) = setup();
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        program_event(&mut core, ev);
        let v = measure_repeated(&mut core, &catalog, &[WellKnown::Add64.id()], 7);
        assert_eq!(v.len(), 7);
    }
}
