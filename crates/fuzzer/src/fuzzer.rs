//! Steps 2–3: gadget generation/execution and result confirmation.

use crate::cleanup::{run_cleanup, CleanupResult};
use crate::gadget::{ConfirmedGadget, Gadget, GadgetCluster};
use crate::harness::{
    measure_median, measure_repeated, program_event, BatchTraceRecorder, RecordedTrace, TraceEval,
    TraceLog,
};
use crate::report::FuzzReport;
use aegis_faults::{self as faults, FaultPlan};
use aegis_isa::IsaCatalog;
use aegis_microarch::{noise_base_for_seed, Core, CoreBatch, EventId};
use aegis_obs as obs;
use aegis_par::{derive_seed, ArtifactCache, ArtifactKey, Checkpoint, Executor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Seed-derivation stream tag for per-event fuzzing RNGs (scalar path).
const STREAM_FUZZ: u64 = 0x10;
/// Stream tag for the shared candidate-pool sampler (vectorized path).
const STREAM_POOL: u64 = 0x11;
/// Stream tag for per-candidate recording sessions (vectorized path).
const STREAM_SESSION: u64 = 0x12;

/// Candidates recorded between two [`FuzzCheckpoint`] persists when the
/// crash-safety harness (an active fault plan) is armed.
const CKPT_CHUNK: usize = 32;

/// Lanes per [`CoreBatch`] block in the recording pass. Matches
/// [`CKPT_CHUNK`] so a checkpointed chunk is exactly one batch; lane
/// seeds are keyed by absolute candidate index, so the block partition
/// (like the worker count) cannot change any result.
const LANE_WIDTH: usize = 32;

/// Simulated seconds charged per measurement window when an active fault
/// plan puts report timing on the simulated clock. Wall-clock timings
/// cannot be bit-identical across a kill/resume pair; window counts are.
const SIM_SECONDS_PER_WINDOW: f64 = 1e-6;

/// Fuzzer configuration (defaults follow the paper where it states them).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuzzerConfig {
    /// Measurement repetitions per candidate; the paper sets 10 as the
    /// efficiency/accuracy trade-off.
    pub measure_reps: usize,
    /// `R`: iterations per path in the repeated-triggers confirmation.
    pub confirm_reps: usize,
    /// `λ1` tolerance band for `V2 − V1 = (1 − λ1) R (v2 − v1)`;
    /// the paper uses `[-0.2, 0.2]`.
    pub lambda1: f64,
    /// `λ2` threshold for `V2 > λ2 V1`; the paper uses 10.
    pub lambda2: f64,
    /// Candidate gadgets sampled per event (the budget; the paper sweeps
    /// the full cross product, we sample it).
    pub candidates_per_event: usize,
    /// Minimum median per-execution count change to call a candidate
    /// "interesting".
    pub min_effect: f64,
    /// Relative tolerance of the gadgets-reordering cross-validation.
    pub reorder_tolerance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FuzzerConfig {
    fn default() -> Self {
        FuzzerConfig {
            measure_reps: 10,
            confirm_reps: 20,
            lambda1: 0.2,
            lambda2: 10.0,
            candidates_per_event: 400,
            min_effect: 0.9,
            reorder_tolerance: 0.3,
            seed: 7,
        }
    }
}

/// Confirmed gadgets for one HPC event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventGadgets {
    /// The fuzzed event.
    pub event: EventId,
    /// Confirmed gadgets, strongest effect first.
    pub confirmed: Vec<ConfirmedGadget>,
}

impl EventGadgets {
    /// The gadget with the highest per-execution effect, if any.
    pub fn best(&self) -> Option<&ConfirmedGadget> {
        self.confirmed.first()
    }
}

/// Per-event fuzzing result with its timing attribution (internal: the
/// parallel run loop folds these into the [`FuzzReport`]).
#[derive(Debug, Clone, Default)]
struct FuzzedEvent {
    confirmed: Vec<ConfirmedGadget>,
    tested: usize,
    generation_seconds: f64,
    confirmation_seconds: f64,
}

/// Full fuzzing outcome across events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzOutcome {
    /// Per-event confirmed gadgets, in input event order.
    pub per_event: Vec<EventGadgets>,
    /// Step timings and throughput (Table III).
    pub report: FuzzReport,
}

/// The Event Fuzzer (Section VI): finds instruction gadgets that alter
/// profiled HPC events.
#[derive(Debug, Clone)]
pub struct EventFuzzer {
    config: FuzzerConfig,
    cache: ArtifactCache,
    faults: FaultPlan,
}

impl EventFuzzer {
    /// Creates a fuzzer with the given configuration, memoizing the
    /// instruction-cleanup step under `results/cache/` (disable with
    /// `AEGIS_NO_CACHE=1`).
    pub fn new(config: FuzzerConfig) -> Self {
        EventFuzzer::with_cache(config, ArtifactCache::default_location())
    }

    /// Creates a fuzzer with an explicit artifact cache (use
    /// [`ArtifactCache::disabled`] to always recompute cleanup) and the
    /// ambient [`FaultPlan`].
    pub fn with_cache(config: FuzzerConfig, cache: ArtifactCache) -> Self {
        Self::with_faults(config, cache, faults::plan())
    }

    /// Creates a fuzzer with an explicit cache and fault plan. An active
    /// plan arms the crash-safety harness: the recording pass persists a
    /// [`FuzzCheckpoint`] every [`CKPT_CHUNK`] candidates and report
    /// timings move to the simulated clock, so a killed run resumes to a
    /// bit-identical [`FuzzOutcome`].
    pub fn with_faults(config: FuzzerConfig, cache: ArtifactCache, plan: FaultPlan) -> Self {
        EventFuzzer {
            config,
            cache,
            faults: plan,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FuzzerConfig {
        &self.config
    }

    /// Runs instruction cleanup, reusing a cached result when the same
    /// (catalog, core model) combination was cleaned before. Cleanup is
    /// deterministic in those inputs, so a hit is exact — only the stored
    /// wall time refers to the original computation.
    ///
    /// Cleanup executes on a *scratch clone* of `core`: the miss path
    /// must leave the caller's core in exactly the state the hit path
    /// does, or everything downstream of a cold run (recorded sessions,
    /// covering sets, gadget-stack calibration) would diverge from the
    /// same run repeated warm.
    fn cleanup(&self, catalog: &IsaCatalog, core: &Core) -> CleanupResult {
        let key = ArtifactKey::of(
            "cleanup",
            &(
                format!("{:?}", catalog.vendor()),
                catalog.seed(),
                catalog.len(),
                format!("{:?}", core.arch()),
            ),
        );
        if let Some(hit) = self.cache.get_json::<CleanupResult>(&key) {
            return hit;
        }
        let mut scratch = core.clone();
        let result = run_cleanup(catalog, &mut scratch);
        let _ = self.cache.put_json(&key, &result);
        result
    }

    /// Runs the full pipeline — cleanup, gadget generation + execution,
    /// confirmation, and per-event effect ordering — against `events`,
    /// on the vectorized measurement plane.
    ///
    /// The candidate pool is sampled once and shared by every event. Each
    /// candidate's measurement session (generation windows, cold and hot
    /// confirmation paths, reorder recheck) is then *recorded* exactly
    /// once on a core reseeded by `derive_seed(seed, STREAM_SESSION,
    /// candidate_index)`, and every event is evaluated against the
    /// recorded traces through the dense [`aegis_microarch::ResponseMatrix`]
    /// — collapsing O(events × candidates × reps) core simulations to
    /// O(candidates × reps) plus cheap kernel evaluations. Per-event
    /// measurement noise comes from per-(event, draw) streams, so the
    /// outcome is bit-identical regardless of worker count or evaluation
    /// order.
    pub fn run(&self, catalog: &IsaCatalog, core: &mut Core, events: &[EventId]) -> FuzzOutcome {
        let run_span = obs::span("fuzz.run");
        let mut report = FuzzReport::default();

        // The span times this run's cleanup wall clock (near zero on a
        // cache hit); the report keeps the producing computation's wall
        // time so Table III stays meaningful across cached reruns.
        let cleanup_span = obs::span("fuzz.cleanup");
        let cleanup = self.cleanup(catalog, core);
        cleanup_span.finish();
        let fault_mode = self.faults.is_active();
        // Fault mode charges cleanup on the simulated clock too — the
        // kill/resume bit-equality contract covers the whole report.
        report.cleanup_seconds = if fault_mode {
            cleanup.usable.len() as f64 * SIM_SECONDS_PER_WINDOW
        } else {
            cleanup.stats.wall_seconds
        };
        report.usable_instructions = cleanup.usable.len();

        // Candidate pool, sampled once for all events.
        let usable = &cleanup.usable;
        let budget = if usable.is_empty() {
            0
        } else {
            self.config.candidates_per_event
        };
        let mut pool_rng =
            StdRng::seed_from_u64(derive_seed(self.config.seed, STREAM_POOL, 0));
        let pool: Vec<Gadget> = (0..budget)
            .map(|_| {
                let reset = usable[pool_rng.gen_range(0..usable.len())];
                let trigger = usable[pool_rng.gen_range(0..usable.len())];
                Gadget::new(reset, trigger)
            })
            .collect();

        let reps = self.config.measure_reps.max(1);
        let r = self.config.confirm_reps;

        // Recording pass: one fenced session per candidate, independent
        // of how many events will read it. With an active fault plan the
        // pass is chunked and checkpointed through the artifact cache so
        // a mid-run kill resumes where it died.
        let record_span = obs::span("fuzz.record");
        let checkpointing = fault_mode && !pool.is_empty();
        let ckpt_key = ArtifactKey::of(
            "fuzz-ckpt",
            &(
                self.config,
                format!("{:?}", catalog.vendor()),
                catalog.seed(),
                catalog.len(),
                format!("{:?}", core.arch()),
            ),
        );
        let mut traces: Vec<RecordedTrace> = Vec::with_capacity(pool.len());
        let mut resume_from = 0usize;
        if checkpointing {
            if let Some(ck) = self.cache.get_col::<Checkpoint<TraceLog>>(&ckpt_key) {
                let completed = ck.completed as usize;
                if ck.payload.0.len() == completed && completed <= pool.len() {
                    resume_from = completed;
                    traces = ck.payload.0;
                    obs::counter_add("fuzz.ckpt_resumed", 1.0);
                    faults::report("fuzz", "resume", &[("completed", resume_from as u64)]);
                }
            }
        }
        let kill_at = self.faults.fuzz_kill_after as usize;
        // The kill fires only on a run that starts *before* the kill
        // point: the resumed run sails past it and completes.
        let kill_armed = checkpointing && kill_at > 0 && resume_from < kill_at;

        let baseline: &Core = core;
        let record_units: Vec<(usize, Gadget)> = pool.iter().copied().enumerate().collect();
        let chunk_len = if checkpointing {
            CKPT_CHUNK
        } else {
            record_units.len().max(1)
        };
        let mut done = resume_from;
        while done < record_units.len() {
            let end = (done + chunk_len).min(record_units.len());
            // Lane-parallel recording: each worker drives a CoreBatch of
            // up to LANE_WIDTH candidate sessions, reusing one arena
            // across blocks. Lane seeds are keyed by *absolute* candidate
            // index, so neither the worker count nor the lane width can
            // perturb a single trace.
            let blocks: Vec<Vec<(usize, Gadget)>> = record_units[done..end]
                .chunks(LANE_WIDTH)
                .map(<[(usize, Gadget)]>::to_vec)
                .collect();
            let block_traces: Vec<Vec<RecordedTrace>> = Executor::from_config().map_with(
                blocks,
                |_worker| (baseline.clone(), None::<CoreBatch>),
                |(pristine, arena), _unit, block| {
                    let seeds: Vec<u64> = block
                        .iter()
                        .map(|(idx, _)| {
                            derive_seed(self.config.seed, STREAM_SESSION, *idx as u64)
                        })
                        .collect();
                    match arena {
                        Some(batch) => batch.reset_from(pristine, &seeds),
                        None => *arena = Some(CoreBatch::from_template(pristine, &seeds)),
                    }
                    let batch = arena.as_mut().expect("arena just filled");
                    let fulls: Vec<[aegis_isa::InstrId; 2]> =
                        block.iter().map(|(_, g)| [g.reset, g.trigger]).collect();
                    let resets: Vec<[aegis_isa::InstrId; 1]> =
                        block.iter().map(|(_, g)| [g.reset]).collect();
                    let full_seqs: Vec<&[aegis_isa::InstrId]> =
                        fulls.iter().map(|s| s.as_slice()).collect();
                    let reset_seqs: Vec<&[aegis_isa::InstrId]> =
                        resets.iter().map(|s| s.as_slice()).collect();
                    let mut rec = BatchTraceRecorder::begin(batch, catalog);
                    for _ in 0..reps {
                        rec.window(&full_seqs); // generation + execution
                    }
                    for _ in 0..r {
                        rec.window(&reset_seqs); // confirmation: cold path
                    }
                    for _ in 0..r {
                        rec.window(&full_seqs); // confirmation: hot path
                    }
                    for _ in 0..reps {
                        rec.window(&full_seqs); // reordering cross-validation
                    }
                    rec.finish()
                },
            );
            for mut block in block_traces {
                traces.append(&mut block);
            }
            done = end;
            if checkpointing {
                let _ = self
                    .cache
                    .put_col(&ckpt_key, &Checkpoint::new(done as u64, TraceLog(traces.clone())));
                if kill_armed && done >= kill_at {
                    faults::report("fuzz", "kill", &[("completed", done as u64)]);
                    panic!(
                        "aegis-faults: injected fuzzer kill after {done} recorded candidates"
                    );
                }
            }
        }
        let record_elapsed = record_span.finish();

        // The shared recording cost enters the report exactly once, split
        // between generation and confirmation in proportion to the window
        // counts each phase contributed to the session — not once per
        // event, which would overstate Table III by the event count.
        // Under an active fault plan the cost is charged on the simulated
        // clock (windows × SIM_SECONDS_PER_WINDOW): a resumed run must
        // reproduce the killed run's report bit-for-bit, which wall time
        // cannot.
        let gen_windows = reps as f64;
        let confirm_windows = (2 * r + reps) as f64;
        let record_time = if checkpointing {
            pool.len() as f64 * (gen_windows + confirm_windows) * SIM_SECONDS_PER_WINDOW
        } else {
            record_elapsed
        };
        let gen_share = gen_windows / (gen_windows + confirm_windows);
        report.generation_seconds += record_time * gen_share;
        report.confirmation_seconds += record_time * (1.0 - gen_share);

        // Evaluation pass: dense-kernel walk of the shared traces, one
        // unit per event.
        let eval_span = obs::span("fuzz.evaluate");
        let matrix = Arc::clone(core.pmu().matrix());
        let pool_ref = &pool;
        let traces_ref = &traces;
        let units: Vec<(usize, EventId)> = events.iter().copied().enumerate().collect();
        let sim_time = checkpointing;
        let results = Executor::from_config().map(units, |_index, (_idx, event)| {
            let timed =
                self.evaluate_event(catalog, &matrix, pool_ref, traces_ref, event, sim_time);
            (event, timed)
        });
        eval_span.finish();

        let mut per_event = Vec::with_capacity(events.len());
        for (event, timed) in results {
            report.gadgets_tested += timed.tested;
            report.generation_seconds += timed.generation_seconds;
            report.confirmation_seconds += timed.confirmation_seconds;
            per_event.push(EventGadgets {
                event,
                confirmed: timed.confirmed,
            });
        }
        obs::counter_add("fuzz.gadgets_tested", report.gadgets_tested as f64);
        obs::counter_add(
            "fuzz.confirmed",
            per_event.iter().map(|e| e.confirmed.len()).sum::<usize>() as f64,
        );
        run_span.finish();
        FuzzOutcome { per_event, report }
    }

    /// The pre-vectorization pipeline: every event re-simulates every
    /// candidate through the core. Kept as the reference implementation —
    /// the kernel benchmark measures the vectorized [`EventFuzzer::run`]
    /// against it, and it documents the protocol the traces replay.
    ///
    /// Events fuzz independently across the configured worker pool: each
    /// event gets a pristine clone of the post-cleanup core and an RNG
    /// seeded by `derive_seed(seed, STREAM_FUZZ, event_index)`, so the
    /// outcome is bit-identical regardless of the worker count.
    pub fn run_scalar(
        &self,
        catalog: &IsaCatalog,
        core: &mut Core,
        events: &[EventId],
    ) -> FuzzOutcome {
        let run_span = obs::span("fuzz.run");
        let mut report = FuzzReport::default();

        let cleanup_span = obs::span("fuzz.cleanup");
        let cleanup = self.cleanup(catalog, core);
        cleanup_span.finish();
        report.cleanup_seconds = cleanup.stats.wall_seconds;
        report.usable_instructions = cleanup.usable.len();

        let baseline: &Core = core;
        let cleanup_ref = &cleanup;
        let units: Vec<(usize, EventId)> = events.iter().copied().enumerate().collect();
        let results = Executor::from_config().map_with(
            units,
            |_worker| baseline.clone(),
            |pristine, _unit, (idx, event)| {
                let mut ev_core = pristine.clone();
                let mut rng = StdRng::seed_from_u64(derive_seed(
                    self.config.seed,
                    STREAM_FUZZ,
                    idx as u64,
                ));
                let timed =
                    self.fuzz_event(catalog, &mut ev_core, cleanup_ref, event, &mut rng);
                (event, timed)
            },
        );
        let mut per_event = Vec::with_capacity(events.len());
        for (event, timed) in results {
            report.gadgets_tested += timed.tested;
            report.generation_seconds += timed.generation_seconds;
            report.confirmation_seconds += timed.confirmation_seconds;
            per_event.push(EventGadgets {
                event,
                confirmed: timed.confirmed,
            });
        }
        obs::counter_add("fuzz.gadgets_tested", report.gadgets_tested as f64);
        obs::counter_add(
            "fuzz.confirmed",
            per_event.iter().map(|e| e.confirmed.len()).sum::<usize>() as f64,
        );
        run_span.finish();
        FuzzOutcome { per_event, report }
    }

    /// Evaluates one event against the shared recorded traces. The walk
    /// is lazy: candidates whose generation-phase median stays under
    /// `min_effect` never pay for their confirmation windows.
    fn evaluate_event(
        &self,
        catalog: &IsaCatalog,
        matrix: &aegis_microarch::ResponseMatrix,
        pool: &[Gadget],
        traces: &[RecordedTrace],
        event: EventId,
        sim_time: bool,
    ) -> FuzzedEvent {
        let reps = self.config.measure_reps.max(1);
        let r = self.config.confirm_reps;
        // One clock read for the whole event; the elapsed time is split
        // between generation and confirmation by the window counts each
        // phase consumed. A per-candidate `Instant` pair costs more than
        // evaluating the windows it would time.
        let start = Instant::now();
        let mut gen_windows = 0usize;
        let mut confirm_windows = 0usize;
        let mut confirmed: Vec<ConfirmedGadget> = Vec::new();
        let event_support = matrix.support(event);
        let can_skip_disjoint = self.config.min_effect > 0.0;
        for (idx, (gadget, trace)) in pool.iter().zip(traces).enumerate() {
            // Disjoint feature support ⇒ every window of this candidate
            // reads exactly zero for this event (zero response is
            // noise-free by construction), so the generation median is
            // zero and the gate rejects. Skipping here is an algebraic
            // identity, not an approximation — and since each candidate
            // gets a fresh evaluator, no draw-index bookkeeping survives
            // the skip.
            if can_skip_disjoint && event_support & trace.support() == 0 {
                continue;
            }
            let noise_base =
                noise_base_for_seed(derive_seed(self.config.seed, STREAM_SESSION, idx as u64));
            let mut eval = TraceEval::new(trace, matrix, noise_base, event);

            // Generation gate (the scalar path's measure_median).
            let delta = eval.median_of(reps);
            gen_windows += reps;
            if delta < self.config.min_effect {
                continue;
            }

            // Confirmation: repeated triggers (Fig. 6) + reorder recheck.
            let cold = eval.take_windows(r);
            let hot = eval.take_windows(r);
            if let Some(effect) = self.confirm_samples(cold, hot) {
                let redo = eval.median_of(reps);
                let base = effect.max(1.0);
                if (redo - effect).abs() / base <= self.config.reorder_tolerance {
                    let reset = catalog.get(gadget.reset).expect("usable id");
                    let trigger = catalog.get(gadget.trigger).expect("usable id");
                    confirmed.push(ConfirmedGadget {
                        gadget: *gadget,
                        effect,
                        cluster: GadgetCluster::of(reset, trigger),
                    });
                }
            }
            confirm_windows += eval.windows_consumed() - reps;
        }
        let elapsed = if sim_time {
            (gen_windows + confirm_windows) as f64 * SIM_SECONDS_PER_WINDOW
        } else {
            start.elapsed().as_secs_f64()
        };
        let windows = (gen_windows + confirm_windows).max(1) as f64;
        let generation_seconds = elapsed * gen_windows as f64 / windows;
        let confirmation_seconds = elapsed * confirm_windows as f64 / windows;
        confirmed.sort_by(|a, b| b.effect.total_cmp(&a.effect));
        FuzzedEvent {
            confirmed,
            tested: pool.len(),
            generation_seconds,
            confirmation_seconds,
        }
    }

    /// Fuzzes one event; returns confirmed gadgets (strongest first),
    /// the number of candidates tested, and the step timings.
    fn fuzz_event(
        &self,
        catalog: &IsaCatalog,
        core: &mut Core,
        cleanup: &CleanupResult,
        event: EventId,
        rng: &mut StdRng,
    ) -> FuzzedEvent {
        let usable = &cleanup.usable;
        if usable.is_empty() {
            return FuzzedEvent::default();
        }
        program_event(core, event);

        // Generation + execution: sample candidate (reset, trigger) pairs
        // and keep those whose hot path moves the counter.
        let gen_span = obs::span("fuzz.generate");
        let mut candidates: Vec<(Gadget, f64)> = Vec::new();
        let budget = self.config.candidates_per_event;
        for _ in 0..budget {
            let reset = usable[rng.gen_range(0..usable.len())];
            let trigger = usable[rng.gen_range(0..usable.len())];
            let gadget = Gadget::new(reset, trigger);
            let delta = measure_median(core, catalog, &[reset, trigger], self.config.measure_reps);
            if delta >= self.config.min_effect {
                candidates.push((gadget, delta));
            }
        }
        let gen_elapsed = gen_span.finish();

        // Confirmation: repeated triggers (cold vs hot path, Fig. 6).
        // The span also covers the reordering cross-validation below —
        // the same window the legacy report attributed to confirmation.
        let confirm_span = obs::span("fuzz.confirm");
        let mut confirmed: Vec<ConfirmedGadget> = Vec::new();
        for (gadget, _) in &candidates {
            if let Some(effect) = self.confirm(catalog, core, *gadget) {
                let reset = catalog.get(gadget.reset).expect("usable id");
                let trigger = catalog.get(gadget.trigger).expect("usable id");
                confirmed.push(ConfirmedGadget {
                    gadget: *gadget,
                    effect,
                    cluster: GadgetCluster::of(reset, trigger),
                });
            }
        }

        // Gadgets reordering: re-measure in a shuffled order and drop
        // gadgets whose behaviour depends on inherited dirty state.
        let mut order: Vec<usize> = (0..confirmed.len()).collect();
        order.shuffle(rng);
        let mut stable = vec![false; confirmed.len()];
        for &i in &order {
            let g = confirmed[i].gadget;
            let redo = measure_median(
                core,
                catalog,
                &[g.reset, g.trigger],
                self.config.measure_reps,
            );
            let base = confirmed[i].effect.max(1.0);
            stable[i] = (redo - confirmed[i].effect).abs() / base <= self.config.reorder_tolerance;
        }
        let mut result: Vec<ConfirmedGadget> = confirmed
            .into_iter()
            .zip(stable)
            .filter_map(|(g, ok)| ok.then_some(g))
            .collect();
        result.sort_by(|a, b| b.effect.total_cmp(&a.effect));

        // Attribute wall time: generation+execution vs confirmation. The
        // timings return explicitly so worker threads can report them —
        // a thread-local accumulator would strand them on the worker.
        FuzzedEvent {
            confirmed: result,
            tested: budget,
            generation_seconds: gen_elapsed,
            confirmation_seconds: confirm_span.finish(),
        }
    }

    /// The repeated-triggers check: runs the cold path (reset only) and
    /// the hot path (reset + trigger) `R` times each, then applies the
    /// paper's constraints
    /// `V2 − V1 = (1 − λ1) R (v2 − v1)` and `V2 > λ2 V1`.
    /// Returns the per-execution hot-path effect if confirmed.
    fn confirm(&self, catalog: &IsaCatalog, core: &mut Core, gadget: Gadget) -> Option<f64> {
        self.confirm_seq(
            catalog,
            core,
            &[gadget.reset],
            &[gadget.reset, gadget.trigger],
        )
    }

    /// Sequence-general form of the repeated-triggers check (used by both
    /// the single-instruction fast path and the multi-instruction
    /// extension).
    fn confirm_seq(
        &self,
        catalog: &IsaCatalog,
        core: &mut Core,
        reset_seq: &[aegis_isa::InstrId],
        full_seq: &[aegis_isa::InstrId],
    ) -> Option<f64> {
        let r = self.config.confirm_reps;
        let cold = measure_repeated(core, catalog, reset_seq, r);
        let hot = measure_repeated(core, catalog, full_seq, r);
        self.confirm_samples(cold, hot)
    }

    /// The λ-constraint arithmetic of the repeated-triggers check, shared
    /// by the scalar path (live measurements) and the vectorized path
    /// (windows read back from a recorded trace).
    fn confirm_samples(&self, mut cold: Vec<f64>, mut hot: Vec<f64>) -> Option<f64> {
        let r = cold.len();
        let v1_sum: f64 = cold.iter().sum();
        let v2_sum: f64 = hot.iter().sum();
        cold.sort_by(f64::total_cmp);
        hot.sort_by(f64::total_cmp);
        let v1 = cold[r / 2];
        let v2 = hot[r / 2];
        let diff = v2 - v1;
        if diff < self.config.min_effect {
            return None; // trigger does not move the event beyond reset noise
        }
        // V2 − V1 must track R(v2 − v1) within the λ1 band: a mismatch
        // means side effects or dirty state, not the trigger (C5/C6).
        let expected = r as f64 * diff;
        if ((v2_sum - v1_sum) - expected).abs() > self.config.lambda1 * expected {
            return None;
        }
        // The hot path must dominate the cold path unless the reset is
        // essentially silent on this event.
        if v1_sum > 1.0 && v2_sum <= self.config.lambda2 * v1_sum {
            return None;
        }
        Some(v2)
    }
}

impl EventFuzzer {
    /// The paper's stated future work: fuzzing *multi-instruction*
    /// reset/trigger sequences. Samples `candidates_per_event` gadgets
    /// whose reset and trigger sequences each contain `seq_len`
    /// instructions, runs the same measurement and repeated-triggers
    /// confirmation as the single-instruction pipeline, and returns the
    /// confirmed sequence gadgets sorted by effect.
    ///
    /// Longer sequences enlarge the search space combinatorially (the
    /// reason the paper defers them) but can reach compound
    /// micro-architectural states a single instruction cannot.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len == 0`.
    pub fn fuzz_event_sequences(
        &self,
        catalog: &IsaCatalog,
        core: &mut Core,
        event: EventId,
        seq_len: usize,
    ) -> Vec<ConfirmedSeqGadget> {
        assert!(seq_len >= 1, "sequences need at least one instruction");
        let cleanup = self.cleanup(catalog, core);
        let usable = &cleanup.usable;
        if usable.is_empty() {
            return Vec::new();
        }
        program_event(core, event);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5e90_0001);
        let mut confirmed = Vec::new();
        for _ in 0..self.config.candidates_per_event {
            let pick = |rng: &mut StdRng| -> Vec<aegis_isa::InstrId> {
                (0..seq_len)
                    .map(|_| usable[rng.gen_range(0..usable.len())])
                    .collect()
            };
            let reset = pick(&mut rng);
            let trigger = pick(&mut rng);
            let full: Vec<aegis_isa::InstrId> =
                reset.iter().chain(trigger.iter()).copied().collect();
            let delta = measure_median(core, catalog, &full, self.config.measure_reps);
            if delta < self.config.min_effect {
                continue;
            }
            if let Some(effect) = self.confirm_seq(catalog, core, &reset, &full) {
                confirmed.push(ConfirmedSeqGadget {
                    gadget: SeqGadget { reset, trigger },
                    effect,
                });
            }
        }
        confirmed.sort_by(|a, b| b.effect.total_cmp(&a.effect));
        confirmed
    }
}

/// A multi-instruction gadget: reset and trigger *sequences* rather than
/// single instructions (the paper's future-work extension).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SeqGadget {
    /// Reset instruction sequence.
    pub reset: Vec<aegis_isa::InstrId>,
    /// Trigger instruction sequence.
    pub trigger: Vec<aegis_isa::InstrId>,
}

/// A confirmed multi-instruction gadget and its per-execution effect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfirmedSeqGadget {
    /// The sequence gadget.
    pub gadget: SeqGadget,
    /// Median hot-path counter change per execution.
    pub effect: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_isa::{Vendor, WellKnown};
    use aegis_microarch::{named, InterferenceConfig, MicroArch};

    fn setup() -> (IsaCatalog, Core) {
        let catalog = IsaCatalog::synthetic(Vendor::Amd, 7);
        let mut core = Core::new(MicroArch::AmdEpyc7252, 7);
        core.set_interference(InterferenceConfig::isolated());
        (catalog, core)
    }

    fn quick_config() -> FuzzerConfig {
        FuzzerConfig {
            candidates_per_event: 150,
            confirm_reps: 10,
            ..FuzzerConfig::default()
        }
    }

    #[test]
    fn finds_gadgets_for_uops_event() {
        let (catalog, mut core) = setup();
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        // Paper-default candidate budget: the shared candidate pool makes
        // the confirmation count a property of the pool seed, and 400
        // candidates put the expectation well clear of the threshold.
        let mut cfg = quick_config();
        cfg.candidates_per_event = 400;
        let fuzzer = EventFuzzer::new(cfg);
        let out = fuzzer.run(&catalog, &mut core, &[ev]);
        let gadgets = &out.per_event[0];
        // Every instruction retires µops, but the λ2 constraint demands a
        // trigger that dominates its reset by 10×, so only light-reset /
        // heavy-trigger pairs confirm — a few percent of candidates, like
        // the paper's thousands out of 11.6M tested.
        assert!(
            gadgets.confirmed.len() >= 3,
            "found {}",
            gadgets.confirmed.len()
        );
        // Sorted by effect, strongest first.
        for w in gadgets.confirmed.windows(2) {
            assert!(w[0].effect >= w[1].effect);
        }
    }

    #[test]
    fn refill_event_yields_flush_load_style_gadgets() {
        let (catalog, mut core) = setup();
        let ev = core
            .catalog()
            .lookup(named::DATA_CACHE_REFILLS_FROM_SYSTEM)
            .unwrap();
        let mut cfg = quick_config();
        cfg.candidates_per_event = 800;
        let fuzzer = EventFuzzer::new(cfg);
        let out = fuzzer.run(&catalog, &mut core, &[ev]);
        let confirmed = &out.per_event[0].confirmed;
        assert!(!confirmed.is_empty(), "no gadgets for refill event");
        // Confirmed gadgets must involve a flush reset or a memory-writing
        // trigger path that forces refills.
        let has_flush_reset = confirmed
            .iter()
            .any(|g| g.cluster.reset_cat == aegis_isa::Category::Flush);
        assert!(has_flush_reset, "expected CLFLUSH-style reset gadgets");
    }

    #[test]
    fn confirm_accepts_known_good_gadget() {
        let (catalog, mut core) = setup();
        let ev = core
            .catalog()
            .lookup(named::DATA_CACHE_REFILLS_FROM_SYSTEM)
            .unwrap();
        program_event(&mut core, ev);
        let fuzzer = EventFuzzer::new(quick_config());
        let g = Gadget::new(WellKnown::Clflush.id(), WellKnown::Load64.id());
        let effect = fuzzer.confirm(&catalog, &mut core, g);
        assert!(effect.is_some(), "flush+load must confirm on refill event");
        assert!(effect.unwrap() >= 0.9);
    }

    #[test]
    fn confirm_rejects_inert_gadget() {
        let (catalog, mut core) = setup();
        let ev = core
            .catalog()
            .lookup(named::DATA_CACHE_REFILLS_FROM_SYSTEM)
            .unwrap();
        program_event(&mut core, ev);
        let fuzzer = EventFuzzer::new(quick_config());
        let g = Gadget::new(WellKnown::Nop.id(), WellKnown::Add64.id());
        assert!(fuzzer.confirm(&catalog, &mut core, g).is_none());
    }

    #[test]
    fn multi_instruction_sequences_confirm_on_refill_event() {
        let (catalog, mut core) = setup();
        let ev = core
            .catalog()
            .lookup(named::DATA_CACHE_REFILLS_FROM_SYSTEM)
            .unwrap();
        let mut cfg = quick_config();
        cfg.candidates_per_event = 600;
        let fuzzer = EventFuzzer::new(cfg);
        let confirmed = fuzzer.fuzz_event_sequences(&catalog, &mut core, ev, 2);
        assert!(
            !confirmed.is_empty(),
            "2-instruction sequences must find refill gadgets"
        );
        for c in &confirmed {
            assert_eq!(c.gadget.reset.len(), 2);
            assert_eq!(c.gadget.trigger.len(), 2);
            assert!(c.effect >= 0.9);
        }
        for w in confirmed.windows(2) {
            assert!(w[0].effect >= w[1].effect);
        }
    }

    #[test]
    fn longer_sequences_reach_larger_effects() {
        // More trigger instructions can move a cache event several times
        // per execution where a single trigger moves it at most once.
        let (catalog, mut core) = setup();
        let ev = core
            .catalog()
            .lookup(named::DATA_CACHE_REFILLS_FROM_SYSTEM)
            .unwrap();
        let mut cfg = quick_config();
        cfg.candidates_per_event = 1_500;
        let fuzzer = EventFuzzer::new(cfg);
        let short = fuzzer.fuzz_event_sequences(&catalog, &mut core, ev, 1);
        core.reset_cache();
        let long = fuzzer.fuzz_event_sequences(&catalog, &mut core, ev, 3);
        let max = |v: &[ConfirmedSeqGadget]| v.first().map_or(0.0, |c| c.effect);
        assert!(
            max(&long) >= max(&short),
            "3-instruction max effect {} must reach 1-instruction {}",
            max(&long),
            max(&short)
        );
        assert!(!long.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn zero_length_sequences_panic() {
        let (catalog, mut core) = setup();
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        EventFuzzer::new(quick_config()).fuzz_event_sequences(&catalog, &mut core, ev, 0);
    }

    #[test]
    fn inert_events_confirm_no_gadgets() {
        // "Other"-class events (e.g. hardware breakpoints) respond to no
        // instruction activity; the fuzzer must come back empty-handed
        // rather than hallucinate gadgets from measurement noise.
        let (catalog, mut core) = setup();
        let inert = core
            .catalog()
            .events()
            .iter()
            .find(|e| e.response.is_empty())
            .expect("catalog has inert events")
            .id;
        let fuzzer = EventFuzzer::new(quick_config());
        let out = fuzzer.run(&catalog, &mut core, &[inert]);
        assert!(
            out.per_event[0].confirmed.is_empty(),
            "found {} bogus gadgets",
            out.per_event[0].confirmed.len()
        );
    }

    #[test]
    fn killed_run_resumes_bit_identically() {
        let cfg = FuzzerConfig {
            candidates_per_event: 96,
            confirm_reps: 10,
            ..FuzzerConfig::default()
        };
        let run_with = |plan: FaultPlan, dir: &std::path::Path| -> FuzzOutcome {
            let (catalog, mut core) = setup();
            let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
            let cache = ArtifactCache::with_faults(dir, FaultPlan::none());
            let fuzzer = EventFuzzer::with_faults(cfg, cache, plan);
            fuzzer.run(&catalog, &mut core, &[ev])
        };
        let tmp = |tag: &str| {
            let d = std::env::temp_dir().join(format!(
                "aegis-fuzz-ckpt-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&d);
            d
        };
        // Reference: an active (jitter-only, fuzzer-irrelevant) plan so
        // the run uses the same checkpointed, sim-timed code path but is
        // never killed.
        let base = FaultPlan {
            seed: 1,
            tick_jitter: 0.5,
            ..FaultPlan::none()
        };
        let dir_ref = tmp("ref");
        let reference = run_with(base, &dir_ref);

        // Kill the run mid-recording, then resume it from the persisted
        // checkpoint in the same cache.
        let kill_plan = FaultPlan {
            fuzz_kill_after: 64,
            ..base
        };
        let dir_kill = tmp("kill");
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_with(kill_plan, &dir_kill)
        }));
        assert!(killed.is_err(), "the injected kill must abort the run");
        let resumed = run_with(kill_plan, &dir_kill);
        assert_eq!(reference, resumed);

        let _ = std::fs::remove_dir_all(&dir_ref);
        let _ = std::fs::remove_dir_all(&dir_kill);
    }

    #[test]
    fn report_accounts_for_all_steps() {
        let (catalog, mut core) = setup();
        let ev = core.catalog().lookup(named::RETIRED_UOPS).unwrap();
        let fuzzer = EventFuzzer::new(quick_config());
        let out = fuzzer.run(&catalog, &mut core, &[ev]);
        let r = &out.report;
        assert!(r.cleanup_seconds > 0.0);
        assert!(r.generation_seconds > 0.0);
        assert!(r.confirmation_seconds > 0.0);
        assert_eq!(r.gadgets_tested, 150);
        assert!(r.throughput_per_second() > 0.0);
        assert!(r.usable_instructions > 3_000);
    }
}
