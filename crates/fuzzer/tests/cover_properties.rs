//! Property-based tests of the covering-set construction and gadget
//! statistics over randomly generated fuzzing outcomes.

use aegis_fuzzer::{
    covering_set, ConfirmedGadget, EventGadgets, Gadget, GadgetCluster, GadgetStats,
};
use aegis_isa::{well_known, InstrId, WellKnown};
use aegis_microarch::EventId;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn confirmed(reset: u32, trigger: u32, effect: f64) -> ConfirmedGadget {
    let r = well_known(WellKnown::Clflush);
    let t = well_known(WellKnown::Load64);
    ConfirmedGadget {
        gadget: Gadget::new(InstrId(reset), InstrId(trigger)),
        effect,
        cluster: GadgetCluster::of(&r, &t),
    }
}

/// Strategy: up to 12 events, each with up to 6 gadgets drawn from a pool
/// of 10 gadget identities (so intersections are common).
fn outcomes() -> impl Strategy<Value = Vec<EventGadgets>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..10, 0u32..10, 0.5f64..50.0), 0..6),
        1..12,
    )
    .prop_map(|events| {
        events
            .into_iter()
            .enumerate()
            .map(|(i, gs)| EventGadgets {
                event: EventId(i as u32),
                confirmed: gs.into_iter().map(|(r, t, e)| confirmed(r, t, e)).collect(),
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn cover_is_complete_and_minimal_ish(per_event in outcomes()) {
        let cover = covering_set(&per_event);

        // 1. Completeness: every event with ≥1 gadget is covered.
        let coverable: BTreeSet<EventId> = per_event
            .iter()
            .filter(|e| !e.confirmed.is_empty())
            .map(|e| e.event)
            .collect();
        let covered: BTreeSet<EventId> =
            cover.iter().flat_map(|c| c.covers.iter().copied()).collect();
        prop_assert_eq!(&covered, &coverable);

        // 2. Soundness: a gadget only covers events it was confirmed for.
        for cg in &cover {
            for ev in &cg.covers {
                let eg = per_event.iter().find(|e| e.event == *ev).unwrap();
                prop_assert!(eg.confirmed.iter().any(|c| c.gadget == cg.gadget));
            }
        }

        // 3. No gadget is selected twice, and no event is claimed twice.
        let mut gadgets: Vec<Gadget> = cover.iter().map(|c| c.gadget).collect();
        let before = gadgets.len();
        gadgets.sort();
        gadgets.dedup();
        prop_assert_eq!(gadgets.len(), before);
        let claimed: usize = cover.iter().map(|c| c.covers.len()).sum();
        prop_assert_eq!(claimed, coverable.len());

        // 4. Size bound: never larger than the number of coverable events.
        prop_assert!(cover.len() <= coverable.len());

        // 5. Greedy guarantee sanity: the first pick covers at least as
        //    many events as any single gadget could.
        if let Some(first) = cover.first() {
            let best_single = per_event
                .iter()
                .flat_map(|e| e.confirmed.iter().map(move |c| (c.gadget, e.event)))
                .fold(std::collections::BTreeMap::<Gadget, BTreeSet<EventId>>::new(), |mut m, (g, ev)| {
                    m.entry(g).or_default().insert(ev);
                    m
                })
                .values()
                .map(BTreeSet::len)
                .max()
                .unwrap_or(0);
            prop_assert!(first.covers.len() == best_single);
        }
    }

    #[test]
    fn gadget_stats_are_consistent(per_event in outcomes()) {
        let stats = GadgetStats::from_events(&per_event);
        let counts: Vec<usize> = per_event.iter().map(|e| e.confirmed.len()).collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        prop_assert!((stats.mean - mean).abs() < 1e-9);
        if let Some((ev, n)) = stats.max {
            prop_assert_eq!(n, *counts.iter().max().unwrap());
            let eg = per_event.iter().find(|e| e.event == ev).unwrap();
            prop_assert_eq!(eg.confirmed.len(), n);
        }
        // The median lies within the count range.
        if !counts.is_empty() {
            let lo = *counts.iter().min().unwrap() as f64;
            let hi = *counts.iter().max().unwrap() as f64;
            prop_assert!(stats.median >= lo && stats.median <= hi);
        }
    }

    #[test]
    fn covering_set_is_deterministic(per_event in outcomes()) {
        let a = covering_set(&per_event);
        let b = covering_set(&per_event);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.gadget, y.gadget);
            prop_assert_eq!(&x.covers, &y.covers);
        }
    }
}
