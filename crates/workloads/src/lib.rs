//! # aegis-workloads
//!
//! Secret-dependent workload generators standing in for the paper's three
//! victim applications: Chrome loading one of 45 websites, a user typing
//! `K ∈ [0, 9]` keystrokes in a 3-second window, and PyTorch inference of
//! one of 30 DNN architectures.
//!
//! Each application implements [`SecretApp`]: given a secret, it samples a
//! [`WorkloadPlan`] — a timed sequence of internally consistent activity
//! mixes ([`MixSpec`]) that the SEV simulator executes on a guest vCPU.
//! Profiles are deterministic per seed with controlled within-class
//! jitter, so the attacker faces the same learning problem as on real
//! hardware: distinct but noisy secret-conditioned HPC trajectories.

mod app;
mod crypto;
mod dnn;
mod keystroke;
mod mix;
mod plan;
mod website;

pub use app::SecretApp;
pub use crypto::CryptoApp;
pub use dnn::{DnnZoo, Layer, LayerKind, LayerSpan, ModelArch, N_MODELS};
pub use keystroke::{KeystrokeApp, MAX_KEYSTROKES};
pub use mix::{idle_rate, MixSpec};
pub use plan::{Segment, WorkloadPlan};
pub use website::{PhaseKind, SiteProfile, WebsiteCatalog, N_SITES, SITE_NAMES};
