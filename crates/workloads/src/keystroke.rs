//! Keystroke workloads for the keystroke sniffing case study.
//!
//! The paper simulates `K ∈ [0, 9]` keystrokes (via `xdotool`) inside a
//! 3-second window; the attacker predicts `K` from the HPC trace. Each
//! keystroke is a short burst of interrupt/input-processing activity on
//! top of a light desktop background.

use crate::app::SecretApp;
use crate::mix::{idle_rate, MixSpec};
use crate::plan::{Segment, WorkloadPlan};
use rand::rngs::StdRng;
use rand::Rng;

/// Largest keystroke count (`K ∈ [0, MAX_KEYSTROKES]`).
pub const MAX_KEYSTROKES: usize = 9;

/// Duration of one keypress processing burst.
const BURST_NS: u64 = 20_000_000; // 20 ms

/// Keystroke sessions: the secret is the number of keystrokes in the
/// window.
///
/// # Example
///
/// ```
/// use aegis_workloads::{KeystrokeApp, SecretApp};
/// use rand::SeedableRng;
///
/// let app = KeystrokeApp::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let plan = app.sample_plan(4, &mut rng); // four keystrokes
/// assert_eq!(plan.duration_ns(), app.window_ns());
/// ```
#[derive(Debug, Clone)]
pub struct KeystrokeApp {
    window_ns: u64,
}

impl KeystrokeApp {
    /// Creates the app with the paper's 3-second window.
    pub fn new() -> Self {
        Self::with_window(3_000_000_000)
    }

    /// Creates the app with a custom window (must fit all bursts).
    ///
    /// # Panics
    ///
    /// Panics if the window cannot hold [`MAX_KEYSTROKES`] + 1 bursts.
    pub fn with_window(window_ns: u64) -> Self {
        assert!(
            window_ns / BURST_NS > MAX_KEYSTROKES as u64,
            "window too small for {MAX_KEYSTROKES} keystrokes"
        );
        KeystrokeApp { window_ns }
    }

    fn burst_mix(rng: &mut StdRng) -> MixSpec {
        MixSpec {
            uops_per_us: rng.gen_range(380.0..520.0),
            load_frac: 0.3,
            store_frac: 0.15,
            l1_miss_rate: 0.08,
            l2_miss_rate: 0.4,
            llc_miss_rate: 0.35,
            branch_frac: 0.2,
            branch_miss_rate: 0.07,
            simd_frac: 0.05,
            fp_frac: 0.0,
            syscalls_per_us: 0.3,
            page_faults_per_us: 0.002,
        }
    }
}

impl Default for KeystrokeApp {
    fn default() -> Self {
        Self::new()
    }
}

impl SecretApp for KeystrokeApp {
    fn name(&self) -> &str {
        "keystroke-sniffing"
    }

    fn n_secrets(&self) -> usize {
        MAX_KEYSTROKES + 1
    }

    fn secret_name(&self, idx: usize) -> String {
        format!("{idx} keystrokes")
    }

    fn window_ns(&self) -> u64 {
        self.window_ns
    }

    fn sample_plan(&self, secret: usize, rng: &mut StdRng) -> WorkloadPlan {
        assert!(secret <= MAX_KEYSTROKES, "keystroke count out of range");
        // Pick distinct, non-overlapping press times.
        let slots = (self.window_ns / BURST_NS) as usize; // 150 slots
        let mut chosen: Vec<usize> = Vec::with_capacity(secret);
        while chosen.len() < secret {
            let s = rng.gen_range(0..slots);
            if !chosen.contains(&s) {
                chosen.push(s);
            }
        }
        chosen.sort_unstable();

        let mut plan = WorkloadPlan::new();
        let mut cursor_ns = 0u64;
        for slot in chosen {
            let press_at = slot as u64 * BURST_NS;
            if press_at > cursor_ns {
                plan.push(Segment::new(press_at - cursor_ns, idle_rate()));
            }
            plan.push(Segment::new(BURST_NS, Self::burst_mix(rng).build()));
            cursor_ns = press_at + BURST_NS;
        }
        plan.pad_to(self.window_ns, idle_rate());
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::Feature;
    use rand::SeedableRng;

    #[test]
    fn ten_secret_classes() {
        let app = KeystrokeApp::new();
        assert_eq!(app.n_secrets(), 10);
        assert_eq!(app.secret_name(3), "3 keystrokes");
    }

    #[test]
    fn zero_keystrokes_is_pure_idle() {
        let app = KeystrokeApp::new();
        let mut rng = StdRng::seed_from_u64(4);
        let plan = app.sample_plan(0, &mut rng);
        assert_eq!(plan.segments.len(), 1);
        assert!(plan.segments[0].rate[Feature::UopsRetired] < 10.0);
    }

    #[test]
    fn burst_count_matches_secret() {
        let app = KeystrokeApp::new();
        let mut rng = StdRng::seed_from_u64(4);
        for k in 0..=MAX_KEYSTROKES {
            let plan = app.sample_plan(k, &mut rng);
            let bursts = plan
                .segments
                .iter()
                .filter(|s| s.rate[Feature::UopsRetired] > 100.0)
                .count();
            assert_eq!(bursts, k, "k={k}");
            assert_eq!(plan.duration_ns(), app.window_ns());
        }
    }

    #[test]
    fn total_uops_increase_with_keystrokes() {
        let app = KeystrokeApp::new();
        let mut rng = StdRng::seed_from_u64(8);
        let low = app.sample_plan(1, &mut rng).total_uops();
        let high = app.sample_plan(9, &mut rng).total_uops();
        assert!(high > low * 3.0, "low {low} high {high}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_count() {
        let app = KeystrokeApp::new();
        let mut rng = StdRng::seed_from_u64(1);
        app.sample_plan(10, &mut rng);
    }
}
