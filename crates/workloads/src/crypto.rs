//! Cryptographic-key workload — the paper's future-work case study
//! ("investigate the effectiveness of Aegis on more fine-grained attacks,
//! e.g., stealing cryptographic keys").
//!
//! Models a textbook square-and-multiply modular exponentiation: for each
//! key bit (MSB first) the implementation *squares*; for a 1-bit it also
//! *multiplies*. Squaring and multiplication have distinguishable
//! micro-architectural mixes, so the per-bit operation sequence leaks the
//! key through HPC traces at millisecond granularity — a much finer
//! leakage pattern than website loads, which is exactly why the paper
//! defers it as the stress test for the defense.

use crate::app::SecretApp;
use crate::mix::{idle_rate, MixSpec};
use crate::plan::{Segment, WorkloadPlan};
use aegis_microarch::rand_util::normal;
use rand::rngs::StdRng;

/// Duration of one modular squaring, nanoseconds.
const SQUARE_NS: u64 = 8_000_000;
/// Duration of one modular multiplication, nanoseconds.
const MULTIPLY_NS: u64 = 8_000_000;
/// Idle gap between exponentiation runs.
const GAP_NS: u64 = 10_000_000;

/// A private-key exponentiation service: the secret is the key itself.
///
/// # Example
///
/// ```
/// use aegis_workloads::{CryptoApp, SecretApp};
///
/// let app = CryptoApp::new(4); // 4-bit keys → 16 secrets
/// assert_eq!(app.n_secrets(), 16);
/// assert_eq!(app.secret_name(0b1010), "key 1010");
/// ```
#[derive(Debug, Clone)]
pub struct CryptoApp {
    key_bits: usize,
    window_ns: u64,
}

impl CryptoApp {
    /// Creates the app with `key_bits`-bit keys (2^bits secrets).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= key_bits <= 16`.
    pub fn new(key_bits: usize) -> Self {
        assert!((1..=16).contains(&key_bits), "key_bits must be in 1..=16");
        CryptoApp {
            key_bits,
            window_ns: 3_000_000_000,
        }
    }

    /// Creates the app with a custom monitoring window.
    ///
    /// # Panics
    ///
    /// Panics unless the window holds at least one full exponentiation.
    pub fn with_window(key_bits: usize, window_ns: u64) -> Self {
        let mut app = Self::new(key_bits);
        let one_exp = key_bits as u64 * (SQUARE_NS + MULTIPLY_NS) + GAP_NS;
        assert!(
            window_ns >= one_exp,
            "window must hold one exponentiation ({one_exp} ns)"
        );
        app.window_ns = window_ns;
        app
    }

    /// Number of key bits.
    pub fn key_bits(&self) -> usize {
        self.key_bits
    }

    fn square_mix(rng: &mut StdRng) -> MixSpec {
        MixSpec {
            uops_per_us: 1_800.0 * normal(rng, 1.0, 0.03).clamp(0.85, 1.15),
            load_frac: 0.30,
            store_frac: 0.12,
            l1_miss_rate: 0.03,
            l2_miss_rate: 0.4,
            llc_miss_rate: 0.3,
            branch_frac: 0.10,
            branch_miss_rate: 0.02,
            simd_frac: 0.0,
            fp_frac: 0.0,
            syscalls_per_us: 0.0001,
            page_faults_per_us: 0.0,
        }
    }

    fn multiply_mix(rng: &mut StdRng) -> MixSpec {
        MixSpec {
            // Multiplication touches the second operand: more loads,
            // more misses, slightly hotter.
            uops_per_us: 2_300.0 * normal(rng, 1.0, 0.03).clamp(0.85, 1.15),
            load_frac: 0.42,
            store_frac: 0.15,
            l1_miss_rate: 0.10,
            l2_miss_rate: 0.5,
            llc_miss_rate: 0.5,
            branch_frac: 0.12,
            branch_miss_rate: 0.03,
            simd_frac: 0.0,
            fp_frac: 0.0,
            syscalls_per_us: 0.0001,
            page_faults_per_us: 0.0,
        }
    }
}

impl SecretApp for CryptoApp {
    fn name(&self) -> &str {
        "crypto-key-extraction"
    }

    fn n_secrets(&self) -> usize {
        1 << self.key_bits
    }

    fn secret_name(&self, idx: usize) -> String {
        format!("key {idx:0width$b}", width = self.key_bits)
    }

    fn window_ns(&self) -> u64 {
        self.window_ns
    }

    fn sample_plan(&self, secret: usize, rng: &mut StdRng) -> WorkloadPlan {
        assert!(secret < self.n_secrets(), "key out of range");
        let mut plan = WorkloadPlan::new();
        // Repeat the exponentiation until the window is full, like a busy
        // signing service handling back-to-back requests.
        while plan.duration_ns() < self.window_ns {
            for bit in (0..self.key_bits).rev() {
                let dur = (SQUARE_NS as f64 * normal(rng, 1.0, 0.04).clamp(0.8, 1.2)) as u64;
                plan.push(Segment::new(dur, Self::square_mix(rng).build()));
                if secret >> bit & 1 == 1 {
                    let dur = (MULTIPLY_NS as f64 * normal(rng, 1.0, 0.04).clamp(0.8, 1.2)) as u64;
                    plan.push(Segment::new(dur, Self::multiply_mix(rng).build()));
                }
            }
            plan.push(Segment::new(GAP_NS, idle_rate()));
        }
        plan.truncate_to(self.window_ns);
        plan.pad_to(self.window_ns, idle_rate());
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::Feature;
    use rand::SeedableRng;

    #[test]
    fn secret_space_and_names() {
        let app = CryptoApp::new(4);
        assert_eq!(app.n_secrets(), 16);
        assert_eq!(app.secret_name(0), "key 0000");
        assert_eq!(app.secret_name(15), "key 1111");
    }

    #[test]
    fn plans_fill_the_window() {
        let app = CryptoApp::with_window(4, 400_000_000);
        let mut rng = StdRng::seed_from_u64(1);
        for key in [0usize, 7, 15] {
            let plan = app.sample_plan(key, &mut rng);
            assert_eq!(plan.duration_ns(), app.window_ns());
        }
    }

    #[test]
    fn hamming_weight_shows_in_total_work() {
        // Each 1-bit adds a multiplication, so total µops grow with the
        // key's Hamming weight — the coarse leakage.
        let app = CryptoApp::with_window(4, 400_000_000);
        let mut rng = StdRng::seed_from_u64(2);
        let light = app.sample_plan(0b0000, &mut rng).total_uops();
        let heavy = app.sample_plan(0b1111, &mut rng).total_uops();
        assert!(heavy > light * 1.1, "light {light} heavy {heavy}");
    }

    #[test]
    fn multiply_bursts_follow_one_bits() {
        let app = CryptoApp::with_window(4, 400_000_000);
        let mut rng = StdRng::seed_from_u64(3);
        let plan = app.sample_plan(0b1010, &mut rng);
        // First exponentiation: square(+mul), square, square(+mul), square.
        let busy: Vec<bool> = plan
            .segments
            .iter()
            .take(6)
            .map(|s| s.rate[Feature::UopsRetired] > 2_000.0)
            .collect();
        // Segments: S M S S M S → multiply bursts at positions 1 and 4.
        assert_eq!(busy, vec![false, true, false, false, true, false]);
    }

    #[test]
    #[should_panic(expected = "key out of range")]
    fn rejects_out_of_range_key() {
        let app = CryptoApp::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        app.sample_plan(4, &mut rng);
    }

    #[test]
    #[should_panic(expected = "window must hold")]
    fn rejects_tiny_window() {
        CryptoApp::with_window(8, 1_000_000);
    }
}
