//! Consistent activity-mix construction.
//!
//! [`MixSpec`] describes an execution phase in high-level terms (µop rate,
//! memory intensity, miss rates, branchiness, SIMD share, kernel
//! interaction) and expands it into an internally consistent
//! [`ActivityVector`]: cache hits + misses equal accesses, cycles cover
//! µops plus miss penalties, and so on. Workload profiles are built from
//! these specs so that every HPC event in the catalog sees plausible,
//! correlated values.

use aegis_microarch::{ActivityVector, Feature};
use serde::{Deserialize, Serialize};

/// High-level description of an execution phase, expanded to a consistent
/// per-microsecond [`ActivityVector`] by [`MixSpec::build`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixSpec {
    /// µops retired per microsecond (phase intensity).
    pub uops_per_us: f64,
    /// Fraction of µops that are loads.
    pub load_frac: f64,
    /// Fraction of µops that are stores.
    pub store_frac: f64,
    /// L1D miss rate over data accesses.
    pub l1_miss_rate: f64,
    /// Of L1D misses, fraction that also miss L2.
    pub l2_miss_rate: f64,
    /// Of L2 misses, fraction that miss LLC (refill from system).
    pub llc_miss_rate: f64,
    /// Fraction of µops that are branches.
    pub branch_frac: f64,
    /// Misprediction rate over branches.
    pub branch_miss_rate: f64,
    /// Fraction of µops that are packed SIMD.
    pub simd_frac: f64,
    /// Fraction of µops that are scalar FP.
    pub fp_frac: f64,
    /// System calls per microsecond.
    pub syscalls_per_us: f64,
    /// Page faults per microsecond.
    pub page_faults_per_us: f64,
}

impl MixSpec {
    /// A near-idle VM: background daemons only.
    pub fn idle() -> Self {
        MixSpec {
            uops_per_us: 2.0,
            load_frac: 0.2,
            store_frac: 0.1,
            l1_miss_rate: 0.05,
            l2_miss_rate: 0.3,
            llc_miss_rate: 0.3,
            branch_frac: 0.15,
            branch_miss_rate: 0.05,
            simd_frac: 0.0,
            fp_frac: 0.0,
            syscalls_per_us: 0.001,
            page_faults_per_us: 0.0001,
        }
    }

    /// Expands the spec into an activity rate per microsecond.
    pub fn build(&self) -> ActivityVector {
        let uops = self.uops_per_us.max(0.0);
        let instr = uops / 1.25; // average µops per instruction
        let loads = uops * self.load_frac.clamp(0.0, 1.0);
        let stores = uops * self.store_frac.clamp(0.0, 1.0);
        let accesses = loads + stores;
        let l1_miss = accesses * self.l1_miss_rate.clamp(0.0, 1.0);
        let l1_hit = accesses - l1_miss;
        let l2_miss = l1_miss * self.l2_miss_rate.clamp(0.0, 1.0);
        let llc_miss = l2_miss * self.llc_miss_rate.clamp(0.0, 1.0);
        let dtlb_miss = accesses * 0.002 + llc_miss * 0.05;
        let branches = uops * self.branch_frac.clamp(0.0, 1.0);
        let branch_misses = branches * self.branch_miss_rate.clamp(0.0, 1.0);
        let simd = uops * self.simd_frac.clamp(0.0, 1.0);
        let fp = uops * self.fp_frac.clamp(0.0, 1.0);
        // Cycle model: ~1 µop/cycle base IPC plus miss and misprediction
        // penalties; stall cycles are everything beyond retirement slots.
        let cycles =
            uops / 2.5 + l1_miss * 10.0 + l2_miss * 30.0 + llc_miss * 120.0 + branch_misses * 15.0;
        let stalls = (cycles - uops / 4.0).max(0.0);
        ActivityVector::from_pairs(&[
            (Feature::UopsRetired, uops),
            (Feature::InstrRetired, instr),
            (Feature::Loads, loads),
            (Feature::Stores, stores),
            (Feature::L1dAccess, accesses),
            (Feature::L1dHit, l1_hit),
            (Feature::L1dMiss, l1_miss),
            (Feature::L2Miss, l2_miss),
            (Feature::LlcMiss, llc_miss),
            (Feature::DtlbMiss, dtlb_miss),
            (Feature::Branches, branches),
            (Feature::BranchMisses, branch_misses),
            (Feature::SimdOps, simd),
            (Feature::FpOps, fp),
            (Feature::StallCycles, stalls),
            (Feature::Cycles, cycles),
            (Feature::Syscalls, self.syscalls_per_us.max(0.0)),
            (Feature::PageFaults, self.page_faults_per_us.max(0.0)),
        ])
    }
}

/// The canonical idle activity rate, used to pad plans to the monitoring
/// window.
pub fn idle_rate() -> ActivityVector {
    MixSpec::idle().build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_mix_is_internally_consistent() {
        let spec = MixSpec {
            uops_per_us: 1000.0,
            load_frac: 0.3,
            store_frac: 0.1,
            l1_miss_rate: 0.1,
            l2_miss_rate: 0.5,
            llc_miss_rate: 0.4,
            branch_frac: 0.2,
            branch_miss_rate: 0.1,
            simd_frac: 0.2,
            fp_frac: 0.05,
            syscalls_per_us: 0.01,
            page_faults_per_us: 0.001,
        };
        let v = spec.build();
        let access = v[Feature::L1dAccess];
        assert!((v[Feature::Loads] + v[Feature::Stores] - access).abs() < 1e-9);
        assert!((v[Feature::L1dHit] + v[Feature::L1dMiss] - access).abs() < 1e-9);
        assert!(v[Feature::L2Miss] <= v[Feature::L1dMiss]);
        assert!(v[Feature::LlcMiss] <= v[Feature::L2Miss]);
        assert!(v[Feature::BranchMisses] <= v[Feature::Branches]);
        assert!(v[Feature::Cycles] > 0.0);
    }

    #[test]
    fn idle_is_light() {
        let v = idle_rate();
        assert!(v[Feature::UopsRetired] < 10.0);
        assert!(v[Feature::LlcMiss] < 1.0);
    }

    #[test]
    fn rates_clamped_to_valid_ranges() {
        let mut spec = MixSpec::idle();
        spec.load_frac = 2.0;
        spec.l1_miss_rate = -1.0;
        let v = spec.build();
        assert!(v[Feature::Loads] <= v[Feature::UopsRetired]);
        assert_eq!(v[Feature::L1dMiss], 0.0);
    }

    #[test]
    fn intensity_scales_linearly() {
        let mut a = MixSpec::idle();
        a.uops_per_us = 100.0;
        let mut b = a;
        b.uops_per_us = 200.0;
        let va = a.build();
        let vb = b.build();
        assert!((vb[Feature::Loads] / va[Feature::Loads] - 2.0).abs() < 1e-9);
    }
}
