//! Website-access workloads for the website fingerprinting case study.
//!
//! The paper's attacker fingerprints accesses to 45 of the Alexa top-50
//! sites from HPC traces. Here each site gets a deterministic *profile*:
//! a phase structure (DNS, connect, download, parse, script, render, ...)
//! with site-specific durations and instruction mixes, plus per-access
//! jitter — the within-class variance that makes the learning problem
//! non-trivial.

use crate::app::SecretApp;
use crate::mix::{idle_rate, MixSpec};
use crate::plan::{Segment, WorkloadPlan};
use aegis_microarch::rand_util::normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Number of fingerprinted sites (Alexa top-50 minus 5 blocked ones).
pub const N_SITES: usize = 45;

/// The 45 target sites.
pub const SITE_NAMES: [&str; N_SITES] = [
    "google.com",
    "youtube.com",
    "facebook.com",
    "twitter.com",
    "instagram.com",
    "baidu.com",
    "wikipedia.org",
    "yandex.ru",
    "yahoo.com",
    "whatsapp.com",
    "amazon.com",
    "netflix.com",
    "live.com",
    "reddit.com",
    "tiktok.com",
    "office.com",
    "linkedin.com",
    "vk.com",
    "dzen.ru",
    "mail.ru",
    "bing.com",
    "naver.com",
    "microsoft.com",
    "twitch.tv",
    "pinterest.com",
    "zoom.us",
    "discord.com",
    "max.com",
    "roblox.com",
    "qq.com",
    "duckduckgo.com",
    "ebay.com",
    "fandom.com",
    "weather.com",
    "quora.com",
    "aliexpress.com",
    "booking.com",
    "canva.com",
    "spotify.com",
    "paypal.com",
    "imdb.com",
    "github.com",
    "stackoverflow.com",
    "apple.com",
    "cnn.com",
];

/// Browser loading phases a site access progresses through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// DNS resolution.
    Dns,
    /// TCP/TLS connection establishment.
    Connect,
    /// Resource download.
    Download,
    /// HTML/CSS parsing.
    Parse,
    /// JavaScript execution.
    Script,
    /// Layout and paint.
    Render,
    /// Media decode (images/video).
    Media,
}

impl PhaseKind {
    const ALL: [PhaseKind; 7] = [
        PhaseKind::Dns,
        PhaseKind::Connect,
        PhaseKind::Download,
        PhaseKind::Parse,
        PhaseKind::Script,
        PhaseKind::Render,
        PhaseKind::Media,
    ];

    /// Template `(duration_ms, mix)` for this phase kind before
    /// site-specific perturbation.
    fn template(self) -> (f64, MixSpec) {
        let base = MixSpec {
            uops_per_us: 0.0,
            load_frac: 0.3,
            store_frac: 0.1,
            l1_miss_rate: 0.05,
            l2_miss_rate: 0.4,
            llc_miss_rate: 0.3,
            branch_frac: 0.18,
            branch_miss_rate: 0.05,
            simd_frac: 0.0,
            fp_frac: 0.0,
            syscalls_per_us: 0.002,
            page_faults_per_us: 0.0002,
        };
        match self {
            PhaseKind::Dns => (
                30.0,
                MixSpec {
                    uops_per_us: 60.0,
                    syscalls_per_us: 0.05,
                    ..base
                },
            ),
            PhaseKind::Connect => (
                70.0,
                MixSpec {
                    uops_per_us: 150.0,
                    syscalls_per_us: 0.08,
                    ..base
                },
            ),
            PhaseKind::Download => (
                300.0,
                MixSpec {
                    uops_per_us: 350.0,
                    load_frac: 0.35,
                    store_frac: 0.25,
                    l1_miss_rate: 0.15,
                    llc_miss_rate: 0.6,
                    syscalls_per_us: 0.12,
                    page_faults_per_us: 0.003,
                    ..base
                },
            ),
            PhaseKind::Parse => (
                250.0,
                MixSpec {
                    uops_per_us: 900.0,
                    load_frac: 0.32,
                    branch_frac: 0.22,
                    branch_miss_rate: 0.08,
                    ..base
                },
            ),
            PhaseKind::Script => (
                500.0,
                MixSpec {
                    uops_per_us: 1_400.0,
                    load_frac: 0.3,
                    store_frac: 0.15,
                    l1_miss_rate: 0.08,
                    branch_frac: 0.25,
                    branch_miss_rate: 0.1,
                    page_faults_per_us: 0.001,
                    ..base
                },
            ),
            PhaseKind::Render => (
                250.0,
                MixSpec {
                    uops_per_us: 1_100.0,
                    simd_frac: 0.35,
                    store_frac: 0.25,
                    l1_miss_rate: 0.1,
                    ..base
                },
            ),
            PhaseKind::Media => (
                200.0,
                MixSpec {
                    uops_per_us: 1_600.0,
                    simd_frac: 0.55,
                    load_frac: 0.35,
                    l1_miss_rate: 0.12,
                    llc_miss_rate: 0.5,
                    ..base
                },
            ),
        }
    }
}

#[derive(Debug, Clone)]
struct SitePhase {
    duration_ms: f64,
    mix: MixSpec,
}

/// The deterministic loading profile of one site.
#[derive(Debug, Clone)]
pub struct SiteProfile {
    name: &'static str,
    phases: Vec<SitePhase>,
}

impl SiteProfile {
    fn generate(idx: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ (0x517e_0000 + idx as u64));
        let mut phases = Vec::new();
        // Every access starts with DNS + connect + download.
        for kind in [PhaseKind::Dns, PhaseKind::Connect, PhaseKind::Download] {
            phases.push(perturb(kind, &mut rng));
        }
        // Then a site-specific mixture of parse/script/render/media bursts.
        let extra = rng.gen_range(3..=7);
        for _ in 0..extra {
            let kind = PhaseKind::ALL[rng.gen_range(3..PhaseKind::ALL.len())];
            phases.push(perturb(kind, &mut rng));
        }
        SiteProfile {
            name: SITE_NAMES[idx],
            phases,
        }
    }

    /// Site host name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

fn perturb(kind: PhaseKind, rng: &mut StdRng) -> SitePhase {
    let (dur, mut mix) = kind.template();
    let duration_ms = dur * rng.gen_range(0.5..1.8);
    mix.uops_per_us *= rng.gen_range(0.7..1.4);
    mix.load_frac *= rng.gen_range(0.85..1.15);
    mix.store_frac *= rng.gen_range(0.85..1.15);
    mix.l1_miss_rate *= rng.gen_range(0.7..1.4);
    mix.llc_miss_rate *= rng.gen_range(0.7..1.4);
    mix.branch_frac *= rng.gen_range(0.85..1.15);
    mix.simd_frac *= rng.gen_range(0.8..1.25);
    SitePhase { duration_ms, mix }
}

/// The catalog of all 45 fingerprinted sites.
///
/// # Example
///
/// ```
/// use aegis_workloads::{SecretApp, WebsiteCatalog};
/// use rand::SeedableRng;
///
/// let catalog = WebsiteCatalog::new(7);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let plan = catalog.sample_plan(0, &mut rng);
/// assert_eq!(plan.duration_ns(), catalog.window_ns());
/// ```
#[derive(Debug, Clone)]
pub struct WebsiteCatalog {
    sites: Vec<SiteProfile>,
    window_ns: u64,
}

impl WebsiteCatalog {
    /// Builds the deterministic site catalog for a seed.
    pub fn new(seed: u64) -> Self {
        WebsiteCatalog {
            sites: (0..N_SITES)
                .map(|i| SiteProfile::generate(i, seed))
                .collect(),
            window_ns: 3_000_000_000,
        }
    }

    /// Profile of one site.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= N_SITES`.
    pub fn site(&self, idx: usize) -> &SiteProfile {
        &self.sites[idx]
    }
}

impl SecretApp for WebsiteCatalog {
    fn name(&self) -> &str {
        "website-fingerprinting"
    }

    fn n_secrets(&self) -> usize {
        N_SITES
    }

    fn secret_name(&self, idx: usize) -> String {
        self.sites[idx].name.to_string()
    }

    fn window_ns(&self) -> u64 {
        self.window_ns
    }

    fn sample_plan(&self, secret: usize, rng: &mut StdRng) -> WorkloadPlan {
        let profile = &self.sites[secret];
        let mut plan = WorkloadPlan::new();
        for phase in &profile.phases {
            // Per-access jitter: network variance and content churn.
            let dur_ms = (phase.duration_ms * normal(rng, 1.0, 0.1).clamp(0.6, 1.6)).max(1.0);
            let mut mix = phase.mix;
            mix.uops_per_us *= normal(rng, 1.0, 0.05).clamp(0.7, 1.3);
            plan.push(Segment::new((dur_ms * 1e6) as u64, mix.build()));
        }
        plan.truncate_to(self.window_ns);
        plan.pad_to(self.window_ns, idle_rate());
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_microarch::Feature;

    #[test]
    fn catalog_has_45_distinct_sites() {
        let c = WebsiteCatalog::new(7);
        assert_eq!(c.n_secrets(), 45);
        let mut names: Vec<_> = (0..45).map(|i| c.secret_name(i)).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 45);
    }

    #[test]
    fn plans_fill_the_window_exactly() {
        let c = WebsiteCatalog::new(7);
        let mut rng = StdRng::seed_from_u64(5);
        for site in 0..45 {
            let plan = c.sample_plan(site, &mut rng);
            assert_eq!(plan.duration_ns(), c.window_ns());
        }
    }

    #[test]
    fn profiles_are_deterministic_per_seed() {
        let a = WebsiteCatalog::new(7);
        let b = WebsiteCatalog::new(7);
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        assert_eq!(a.sample_plan(10, &mut r1), b.sample_plan(10, &mut r2));
    }

    #[test]
    fn sites_have_distinct_signatures() {
        let c = WebsiteCatalog::new(7);
        let mut rng = StdRng::seed_from_u64(9);
        let totals: Vec<f64> = (0..45)
            .map(|s| c.sample_plan(s, &mut rng).total_uops())
            .collect();
        let mut sorted = totals.clone();
        sorted.sort_by(f64::total_cmp);
        // Substantial spread across sites (distinct class signal).
        assert!(sorted[44] / sorted[0] > 1.5, "{:?}", &sorted[..5]);
    }

    #[test]
    fn accesses_of_same_site_vary() {
        let c = WebsiteCatalog::new(7);
        let mut rng = StdRng::seed_from_u64(13);
        let a = c.sample_plan(0, &mut rng);
        let b = c.sample_plan(0, &mut rng);
        assert_ne!(a, b);
        // ... but much less than across sites.
        let rel = (a.total_uops() - b.total_uops()).abs() / a.total_uops();
        assert!(rel < 0.3, "within-class variation {rel}");
    }

    #[test]
    fn plans_start_with_network_phases() {
        let c = WebsiteCatalog::new(7);
        let mut rng = StdRng::seed_from_u64(1);
        let plan = c.sample_plan(3, &mut rng);
        // DNS phase is light on µops.
        assert!(plan.segments[0].rate[Feature::UopsRetired] < 200.0);
    }
}
