//! Workload plans: timed sequences of activity-rate segments.

use aegis_microarch::{ActivityVector, Feature};
use serde::{Deserialize, Serialize};

/// One phase of a workload: an activity rate sustained for a duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Nominal duration in nanoseconds.
    pub duration_ns: u64,
    /// Activity produced per microsecond while the segment runs.
    pub rate: ActivityVector,
}

impl Segment {
    /// Creates a segment.
    pub fn new(duration_ns: u64, rate: ActivityVector) -> Self {
        Segment { duration_ns, rate }
    }

    /// Total µops the segment demands at its nominal duration.
    pub fn total_uops(&self) -> f64 {
        self.rate[Feature::UopsRetired] * (self.duration_ns as f64 / 1_000.0)
    }
}

/// A complete single-run execution plan of an application: what the guest
/// vCPU will execute for one secret (one website access, one 3-second
/// keystroke window, one DNN inference).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkloadPlan {
    /// Ordered execution phases.
    pub segments: Vec<Segment>,
}

impl WorkloadPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a segment.
    pub fn push(&mut self, segment: Segment) {
        self.segments.push(segment);
    }

    /// Nominal total duration.
    pub fn duration_ns(&self) -> u64 {
        self.segments.iter().map(|s| s.duration_ns).sum()
    }

    /// Total µops demanded at nominal duration.
    pub fn total_uops(&self) -> f64 {
        self.segments.iter().map(Segment::total_uops).sum()
    }

    /// Pads the plan with an idle-rate segment so it spans at least
    /// `duration_ns` (used to fill the attacker's 3-second window).
    pub fn pad_to(&mut self, duration_ns: u64, idle_rate: ActivityVector) {
        let current = self.duration_ns();
        if current < duration_ns {
            self.push(Segment::new(duration_ns - current, idle_rate));
        }
    }

    /// Truncates the plan to at most `duration_ns`, splitting the final
    /// segment if needed.
    pub fn truncate_to(&mut self, duration_ns: u64) {
        let mut acc = 0u64;
        for (i, seg) in self.segments.iter_mut().enumerate() {
            if acc + seg.duration_ns > duration_ns {
                seg.duration_ns = duration_ns - acc;
                let keep = if seg.duration_ns == 0 { i } else { i + 1 };
                self.segments.truncate(keep);
                return;
            }
            acc += seg.duration_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(uops: f64) -> ActivityVector {
        ActivityVector::from_pairs(&[(Feature::UopsRetired, uops)])
    }

    #[test]
    fn duration_and_uops_sum() {
        let mut p = WorkloadPlan::new();
        p.push(Segment::new(1_000_000, rate(100.0)));
        p.push(Segment::new(2_000_000, rate(50.0)));
        assert_eq!(p.duration_ns(), 3_000_000);
        assert_eq!(p.total_uops(), 100.0 * 1_000.0 + 50.0 * 2_000.0);
    }

    #[test]
    fn pad_extends_short_plans_only() {
        let mut p = WorkloadPlan::new();
        p.push(Segment::new(1_000_000, rate(100.0)));
        p.pad_to(3_000_000, rate(1.0));
        assert_eq!(p.duration_ns(), 3_000_000);
        let before = p.segments.len();
        p.pad_to(2_000_000, rate(1.0));
        assert_eq!(p.segments.len(), before);
    }

    #[test]
    fn truncate_splits_segment() {
        let mut p = WorkloadPlan::new();
        p.push(Segment::new(2_000_000, rate(100.0)));
        p.push(Segment::new(2_000_000, rate(50.0)));
        p.truncate_to(3_000_000);
        assert_eq!(p.duration_ns(), 3_000_000);
        assert_eq!(p.segments.len(), 2);
        assert_eq!(p.segments[1].duration_ns, 1_000_000);
    }

    #[test]
    fn truncate_drops_zero_length_tail() {
        let mut p = WorkloadPlan::new();
        p.push(Segment::new(2_000_000, rate(100.0)));
        p.push(Segment::new(2_000_000, rate(50.0)));
        p.truncate_to(2_000_000);
        assert_eq!(p.segments.len(), 1);
    }
}
