//! The [`SecretApp`] abstraction: an application executing one of a set of
//! customer-specified secrets.

use crate::plan::WorkloadPlan;
use rand::rngs::StdRng;

/// An application parameterized by a secret, as in the paper's attack
/// abstraction: the victim runs the app with secret `y ∈ Y`, and the HPC
/// leakage trace `x ∈ X` is what the attacker observes.
///
/// Implemented by the three case studies: [`WebsiteCatalog`] (45 sites),
/// [`KeystrokeApp`] (0–9 keystrokes), and [`DnnZoo`] (30 models).
///
/// [`WebsiteCatalog`]: crate::WebsiteCatalog
/// [`KeystrokeApp`]: crate::KeystrokeApp
/// [`DnnZoo`]: crate::DnnZoo
pub trait SecretApp: Send + Sync {
    /// Human-readable application name.
    fn name(&self) -> &str;

    /// Number of distinct secrets.
    fn n_secrets(&self) -> usize;

    /// Human-readable name of one secret.
    ///
    /// # Panics
    ///
    /// May panic if `idx >= self.n_secrets()`.
    fn secret_name(&self, idx: usize) -> String;

    /// Length of one monitored execution window (3 s in the paper).
    fn window_ns(&self) -> u64;

    /// Samples one execution of the app with the given secret. Every call
    /// draws fresh within-class jitter from `rng`; plans span exactly
    /// [`SecretApp::window_ns`].
    fn sample_plan(&self, secret: usize, rng: &mut StdRng) -> WorkloadPlan;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DnnZoo, KeystrokeApp, WebsiteCatalog};
    use rand::SeedableRng;

    fn check_app(app: &dyn SecretApp) {
        assert!(app.n_secrets() > 1);
        assert!(!app.name().is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        for s in [0, app.n_secrets() - 1] {
            let plan = app.sample_plan(s, &mut rng);
            assert_eq!(plan.duration_ns(), app.window_ns(), "{} s={s}", app.name());
            assert!(!app.secret_name(s).is_empty());
        }
    }

    #[test]
    fn all_three_case_studies_satisfy_the_contract() {
        check_app(&WebsiteCatalog::new(7));
        check_app(&KeystrokeApp::new());
        check_app(&DnnZoo::new(7));
    }
}
