//! DNN-inference workloads for the model extraction case study.
//!
//! The paper extracts the layer architecture of 30 common PyTorch models
//! from HPC traces of their inference runs. Here each model is a sequence
//! of typed layers, each layer a burst of characteristic activity whose
//! duration scales with the layer's size; inference repeats until the
//! 3-second monitoring window is full. The zoo also exposes per-run layer
//! spans as the attacker's ground truth for sequence learning.

use crate::app::SecretApp;
use crate::mix::MixSpec;
use crate::plan::{Segment, WorkloadPlan};
use aegis_microarch::rand_util::normal;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of models in the zoo.
pub const N_MODELS: usize = 30;

/// Layer types occurring in the zoo's architectures — the alphabet of the
/// sequence-to-sequence extraction task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv,
    /// Fully connected / linear.
    Fc,
    /// Max/avg pooling.
    Pool,
    /// Batch normalization.
    BatchNorm,
    /// ReLU-family activation.
    ReLU,
    /// Dropout.
    Dropout,
    /// Residual addition.
    Add,
    /// Channel concatenation.
    Concat,
    /// Gated recurrent unit step.
    Gru,
    /// Self-attention block.
    Attention,
    /// Embedding lookup.
    Embed,
    /// Softmax head.
    Softmax,
}

impl LayerKind {
    /// All layer kinds, in a stable order (the CTC alphabet).
    pub const ALL: [LayerKind; 12] = [
        LayerKind::Conv,
        LayerKind::Fc,
        LayerKind::Pool,
        LayerKind::BatchNorm,
        LayerKind::ReLU,
        LayerKind::Dropout,
        LayerKind::Add,
        LayerKind::Concat,
        LayerKind::Gru,
        LayerKind::Attention,
        LayerKind::Embed,
        LayerKind::Softmax,
    ];

    /// Index within [`LayerKind::ALL`].
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).expect("in ALL")
    }

    /// Base `(duration_ms, mix)` of one layer of unit size.
    fn template(self) -> (f64, MixSpec) {
        let base = MixSpec {
            uops_per_us: 0.0,
            load_frac: 0.35,
            store_frac: 0.12,
            l1_miss_rate: 0.06,
            l2_miss_rate: 0.4,
            llc_miss_rate: 0.3,
            branch_frac: 0.08,
            branch_miss_rate: 0.02,
            simd_frac: 0.0,
            fp_frac: 0.02,
            syscalls_per_us: 0.0005,
            page_faults_per_us: 0.0001,
        };
        match self {
            LayerKind::Conv => (
                6.0,
                MixSpec {
                    uops_per_us: 2_450.0,
                    load_frac: 0.3,
                    store_frac: 0.15,
                    l1_miss_rate: 0.07,
                    l2_miss_rate: 0.5,
                    llc_miss_rate: 0.6,
                    simd_frac: 0.7,
                    ..base
                },
            ),
            LayerKind::Fc => (
                4.0,
                MixSpec {
                    uops_per_us: 2_150.0,
                    load_frac: 0.4,
                    store_frac: 0.17,
                    l1_miss_rate: 0.18,
                    l2_miss_rate: 0.6,
                    llc_miss_rate: 0.7,
                    simd_frac: 0.5,
                    ..base
                },
            ),
            LayerKind::Pool => (
                2.5,
                MixSpec {
                    uops_per_us: 1_250.0,
                    load_frac: 0.33,
                    store_frac: 0.12,
                    l1_miss_rate: 0.05,
                    l2_miss_rate: 0.4,
                    llc_miss_rate: 0.3,
                    simd_frac: 0.3,
                    ..base
                },
            ),
            LayerKind::BatchNorm => (
                2.0,
                MixSpec {
                    uops_per_us: 1_850.0,
                    load_frac: 0.26,
                    store_frac: 0.14,
                    l1_miss_rate: 0.04,
                    l2_miss_rate: 0.4,
                    llc_miss_rate: 0.3,
                    simd_frac: 0.6,
                    ..base
                },
            ),
            LayerKind::ReLU => (
                1.8,
                MixSpec {
                    uops_per_us: 950.0,
                    load_frac: 0.22,
                    store_frac: 0.12,
                    l1_miss_rate: 0.03,
                    l2_miss_rate: 0.4,
                    llc_miss_rate: 0.3,
                    simd_frac: 0.5,
                    ..base
                },
            ),
            LayerKind::Dropout => (
                1.5,
                MixSpec {
                    uops_per_us: 800.0,
                    load_frac: 0.2,
                    store_frac: 0.1,
                    l1_miss_rate: 0.06,
                    l2_miss_rate: 0.5,
                    llc_miss_rate: 0.5,
                    ..base
                },
            ),
            LayerKind::Add => (
                1.5,
                MixSpec {
                    uops_per_us: 1_400.0,
                    load_frac: 0.35,
                    store_frac: 0.18,
                    l1_miss_rate: 0.06,
                    l2_miss_rate: 0.4,
                    llc_miss_rate: 0.3,
                    simd_frac: 0.55,
                    ..base
                },
            ),
            LayerKind::Concat => (
                1.7,
                MixSpec {
                    uops_per_us: 1_550.0,
                    load_frac: 0.3,
                    store_frac: 0.28,
                    l1_miss_rate: 0.09,
                    l2_miss_rate: 0.5,
                    llc_miss_rate: 0.5,
                    ..base
                },
            ),
            LayerKind::Gru => (
                3.5,
                MixSpec {
                    uops_per_us: 2_000.0,
                    load_frac: 0.32,
                    store_frac: 0.15,
                    l1_miss_rate: 0.12,
                    l2_miss_rate: 0.5,
                    llc_miss_rate: 0.5,
                    branch_frac: 0.2,
                    ..base
                },
            ),
            LayerKind::Attention => (
                5.0,
                MixSpec {
                    uops_per_us: 2_300.0,
                    load_frac: 0.34,
                    store_frac: 0.16,
                    l1_miss_rate: 0.1,
                    l2_miss_rate: 0.4,
                    llc_miss_rate: 0.35,
                    simd_frac: 0.6,
                    ..base
                },
            ),
            LayerKind::Embed => (
                2.5,
                MixSpec {
                    uops_per_us: 1_700.0,
                    load_frac: 0.42,
                    store_frac: 0.14,
                    l1_miss_rate: 0.2,
                    l2_miss_rate: 0.6,
                    llc_miss_rate: 0.7,
                    ..base
                },
            ),
            LayerKind::Softmax => (
                1.6,
                MixSpec {
                    uops_per_us: 1_100.0,
                    load_frac: 0.25,
                    store_frac: 0.12,
                    l1_miss_rate: 0.04,
                    l2_miss_rate: 0.4,
                    llc_miss_rate: 0.3,
                    fp_frac: 0.3,
                    ..base
                },
            ),
        }
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One layer instance: a kind plus a size multiplier for its duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Layer type.
    pub kind: LayerKind,
    /// Relative size (scales duration).
    pub size: f64,
}

/// Span of one executed layer inside a sampled inference plan —
/// the attacker's sequence-learning ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerSpan {
    /// Layer type.
    pub kind: LayerKind,
    /// Start offset in the plan, nanoseconds.
    pub start_ns: u64,
    /// End offset in the plan, nanoseconds.
    pub end_ns: u64,
}

/// A named model architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArch {
    /// Model name, e.g. `resnet50`.
    pub name: String,
    /// Layer sequence.
    pub layers: Vec<Layer>,
}

impl ModelArch {
    /// The layer-kind label sequence (the MEA prediction target `Y`).
    pub fn label_sequence(&self) -> Vec<LayerKind> {
        self.layers.iter().map(|l| l.kind).collect()
    }
}

fn layer(kind: LayerKind, size: f64) -> Layer {
    Layer { kind, size }
}

/// conv → bn → relu block.
fn conv_block(layers: &mut Vec<Layer>, size: f64) {
    layers.push(layer(LayerKind::Conv, size));
    layers.push(layer(LayerKind::BatchNorm, size * 0.5));
    layers.push(layer(LayerKind::ReLU, size * 0.3));
}

fn vgg(name: &str, stages: &[usize]) -> ModelArch {
    let mut layers = Vec::new();
    for (i, &convs) in stages.iter().enumerate() {
        let size = 0.6 + 0.35 * i as f64;
        for _ in 0..convs {
            layers.push(layer(LayerKind::Conv, size));
            layers.push(layer(LayerKind::ReLU, size * 0.3));
        }
        layers.push(layer(LayerKind::Pool, 0.5));
    }
    for _ in 0..2 {
        layers.push(layer(LayerKind::Fc, 2.0));
        layers.push(layer(LayerKind::ReLU, 0.4));
        layers.push(layer(LayerKind::Dropout, 0.3));
    }
    layers.push(layer(LayerKind::Fc, 1.0));
    layers.push(layer(LayerKind::Softmax, 0.3));
    ModelArch {
        name: name.to_string(),
        layers,
    }
}

fn resnet(name: &str, blocks: &[usize], bottleneck: bool) -> ModelArch {
    let mut layers = Vec::new();
    conv_block(&mut layers, 1.2);
    layers.push(layer(LayerKind::Pool, 0.5));
    for (stage, &n) in blocks.iter().enumerate() {
        let size = 0.5 + 0.3 * stage as f64;
        for _ in 0..n {
            let convs = if bottleneck { 3 } else { 2 };
            for _ in 0..convs {
                conv_block(&mut layers, size);
            }
            layers.push(layer(LayerKind::Add, 0.3));
        }
    }
    layers.push(layer(LayerKind::Pool, 0.4));
    layers.push(layer(LayerKind::Fc, 1.0));
    layers.push(layer(LayerKind::Softmax, 0.3));
    ModelArch {
        name: name.to_string(),
        layers,
    }
}

fn densenet(name: &str, blocks: &[usize]) -> ModelArch {
    let mut layers = Vec::new();
    conv_block(&mut layers, 1.0);
    layers.push(layer(LayerKind::Pool, 0.5));
    for (stage, &n) in blocks.iter().enumerate() {
        let size = 0.4 + 0.2 * stage as f64;
        for _ in 0..n {
            conv_block(&mut layers, size * 0.5);
            layers.push(layer(LayerKind::Concat, 0.3));
        }
        layers.push(layer(LayerKind::Pool, 0.3));
    }
    layers.push(layer(LayerKind::Fc, 1.0));
    layers.push(layer(LayerKind::Softmax, 0.3));
    ModelArch {
        name: name.to_string(),
        layers,
    }
}

fn mobile(name: &str, blocks: usize) -> ModelArch {
    let mut layers = Vec::new();
    conv_block(&mut layers, 0.8);
    for b in 0..blocks {
        let size = 0.3 + 0.05 * b as f64;
        conv_block(&mut layers, size); // depthwise
        conv_block(&mut layers, size * 0.7); // pointwise
        if b % 2 == 1 {
            layers.push(layer(LayerKind::Add, 0.2));
        }
    }
    layers.push(layer(LayerKind::Pool, 0.3));
    layers.push(layer(LayerKind::Fc, 0.8));
    layers.push(layer(LayerKind::Softmax, 0.3));
    ModelArch {
        name: name.to_string(),
        layers,
    }
}

fn transformer(name: &str, depth: usize, size: f64) -> ModelArch {
    let mut layers = Vec::new();
    layers.push(layer(LayerKind::Embed, 1.0));
    for _ in 0..depth {
        layers.push(layer(LayerKind::Attention, size));
        layers.push(layer(LayerKind::Add, 0.2));
        layers.push(layer(LayerKind::Fc, size * 0.8));
        layers.push(layer(LayerKind::ReLU, 0.2));
        layers.push(layer(LayerKind::Fc, size * 0.8));
        layers.push(layer(LayerKind::Add, 0.2));
    }
    layers.push(layer(LayerKind::Fc, 0.8));
    layers.push(layer(LayerKind::Softmax, 0.3));
    ModelArch {
        name: name.to_string(),
        layers,
    }
}

fn recurrent(name: &str, steps: usize) -> ModelArch {
    let mut layers = Vec::new();
    layers.push(layer(LayerKind::Embed, 0.8));
    for _ in 0..steps {
        layers.push(layer(LayerKind::Gru, 0.8));
    }
    layers.push(layer(LayerKind::Fc, 0.8));
    layers.push(layer(LayerKind::Softmax, 0.3));
    ModelArch {
        name: name.to_string(),
        layers,
    }
}

fn build_zoo() -> Vec<ModelArch> {
    vec![
        vgg("alexnet", &[1, 1, 1, 2]),
        vgg("vgg11", &[1, 1, 2, 2, 2]),
        vgg("vgg13", &[2, 2, 2, 2, 2]),
        vgg("vgg16", &[2, 2, 3, 3, 3]),
        vgg("vgg19", &[2, 2, 4, 4, 4]),
        resnet("resnet18", &[2, 2, 2, 2], false),
        resnet("resnet34", &[3, 4, 6, 3], false),
        resnet("resnet50", &[3, 4, 6, 3], true),
        resnet("resnet101", &[3, 4, 23, 3], true),
        resnet("resnet152", &[3, 8, 36, 3], true),
        resnet("resnext50_32x4d", &[3, 4, 6, 3], true),
        resnet("wide_resnet50_2", &[3, 4, 6, 3], true),
        densenet("densenet121", &[6, 12, 24, 16]),
        densenet("densenet169", &[6, 12, 32, 32]),
        densenet("densenet201", &[6, 12, 48, 32]),
        mobile("mobilenet_v2", 17),
        mobile("mobilenet_v3_small", 11),
        mobile("mobilenet_v3_large", 15),
        mobile("mnasnet1_0", 14),
        mobile("shufflenet_v2_x1_0", 16),
        mobile("squeezenet1_0", 8),
        mobile("squeezenet1_1", 7),
        mobile("efficientnet_b0", 16),
        mobile("efficientnet_b1", 23),
        mobile("efficientnet_b2", 26),
        densenet("inception_v3", &[3, 5, 2]),
        densenet("googlenet", &[2, 5, 2]),
        transformer("vit_b_16", 12, 1.0),
        transformer("swin_t", 12, 0.7),
        recurrent("gru_seq2seq", 24),
    ]
}

/// The zoo of 30 model architectures.
///
/// # Example
///
/// ```
/// use aegis_workloads::{DnnZoo, SecretApp};
///
/// let zoo = DnnZoo::new(7);
/// assert_eq!(zoo.n_secrets(), 30);
/// assert_eq!(zoo.secret_name(7), "resnet50");
/// ```
#[derive(Debug, Clone)]
pub struct DnnZoo {
    models: Vec<ModelArch>,
    window_ns: u64,
    #[allow(dead_code)]
    seed: u64,
}

impl DnnZoo {
    /// Builds the zoo; `seed` reserved for future size perturbations.
    pub fn new(seed: u64) -> Self {
        let models = build_zoo();
        debug_assert_eq!(models.len(), N_MODELS);
        DnnZoo {
            models,
            window_ns: 3_000_000_000,
            seed,
        }
    }

    /// Architecture of one model.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= N_MODELS`.
    pub fn model(&self, idx: usize) -> &ModelArch {
        &self.models[idx]
    }

    /// Samples one inference pass and returns its plan together with the
    /// executed layer spans (ground truth for sequence learning). Unlike
    /// [`SecretApp::sample_plan`], the plan covers exactly one inference
    /// (no window padding).
    pub fn sample_inference(
        &self,
        model: usize,
        rng: &mut StdRng,
    ) -> (WorkloadPlan, Vec<LayerSpan>) {
        let arch = &self.models[model];
        let mut plan = WorkloadPlan::new();
        let mut spans = Vec::with_capacity(arch.layers.len());
        let mut cursor = 0u64;
        for l in &arch.layers {
            let (base_ms, mut mix) = l.kind.template();
            let dur_ms = (base_ms * l.size * normal(rng, 1.0, 0.06).clamp(0.7, 1.3)).max(2.6);
            mix.uops_per_us *= normal(rng, 1.0, 0.04).clamp(0.8, 1.2);
            let dur_ns = (dur_ms * 1e6) as u64;
            plan.push(Segment::new(dur_ns, mix.build()));
            spans.push(LayerSpan {
                kind: l.kind,
                start_ns: cursor,
                end_ns: cursor + dur_ns,
            });
            cursor += dur_ns;
        }
        (plan, spans)
    }
}

impl SecretApp for DnnZoo {
    fn name(&self) -> &str {
        "model-extraction"
    }

    fn n_secrets(&self) -> usize {
        N_MODELS
    }

    fn secret_name(&self, idx: usize) -> String {
        self.models[idx].name.clone()
    }

    fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// One monitoring window: inference repeated back-to-back until the
    /// window is full (the paper samples for 3 s while inference runs).
    fn sample_plan(&self, secret: usize, rng: &mut StdRng) -> WorkloadPlan {
        let mut plan = WorkloadPlan::new();
        while plan.duration_ns() < self.window_ns {
            let (pass, _) = self.sample_inference(secret, rng);
            plan.segments.extend(pass.segments);
        }
        plan.truncate_to(self.window_ns);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zoo_has_30_distinct_models() {
        let zoo = DnnZoo::new(1);
        assert_eq!(zoo.n_secrets(), 30);
        let mut names: Vec<_> = (0..30).map(|i| zoo.secret_name(i)).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn label_sequences_are_distinct() {
        let zoo = DnnZoo::new(1);
        let mut seqs: Vec<Vec<LayerKind>> =
            (0..30).map(|i| zoo.model(i).label_sequence()).collect();
        seqs.sort();
        seqs.dedup();
        // A few families legitimately share a layer-kind sequence (e.g.
        // resnet50 / resnext50 / wide_resnet50 differ only in widths, as on
        // real hardware); most must still be distinct.
        assert!(seqs.len() >= 25, "only {} distinct sequences", seqs.len());
    }

    #[test]
    fn resnet50_deeper_than_resnet18() {
        let zoo = DnnZoo::new(1);
        let r18 = zoo.model(5).layers.len();
        let r50 = zoo.model(7).layers.len();
        assert!(r50 > r18);
    }

    #[test]
    fn spans_cover_the_pass_contiguously() {
        let zoo = DnnZoo::new(1);
        let mut rng = StdRng::seed_from_u64(3);
        let (plan, spans) = zoo.sample_inference(7, &mut rng);
        assert_eq!(spans.len(), zoo.model(7).layers.len());
        let mut cursor = 0;
        for s in &spans {
            assert_eq!(s.start_ns, cursor);
            assert!(s.end_ns > s.start_ns);
            cursor = s.end_ns;
        }
        assert_eq!(cursor, plan.duration_ns());
    }

    #[test]
    fn window_plan_fills_and_truncates() {
        let zoo = DnnZoo::new(1);
        let mut rng = StdRng::seed_from_u64(3);
        let plan = zoo.sample_plan(0, &mut rng);
        assert_eq!(plan.duration_ns(), zoo.window_ns());
    }

    #[test]
    fn layer_kind_indices_roundtrip() {
        for (i, k) in LayerKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn inference_durations_differ_across_models() {
        let zoo = DnnZoo::new(1);
        let mut rng = StdRng::seed_from_u64(5);
        let (p18, _) = zoo.sample_inference(5, &mut rng);
        let (p152, _) = zoo.sample_inference(9, &mut rng);
        assert!(p152.duration_ns() > 2 * p18.duration_ns());
    }
}
