//! Cross-application contract tests: every case study satisfies the
//! [`SecretApp`] interface uniformly, and the workload statistics the
//! attacks depend on are stable properties, not accidents of one seed.

use aegis_microarch::Feature;
use aegis_workloads::{
    CryptoApp, DnnZoo, KeystrokeApp, SecretApp, WebsiteCatalog, N_MODELS, N_SITES,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn apps() -> Vec<Box<dyn SecretApp>> {
    vec![
        Box::new(WebsiteCatalog::new(7)),
        Box::new(KeystrokeApp::with_window(400_000_000)),
        Box::new(DnnZoo::new(7)),
        Box::new(CryptoApp::with_window(4, 400_000_000)),
    ]
}

#[test]
fn every_app_satisfies_the_secret_app_contract() {
    for app in apps() {
        assert!(!app.name().is_empty());
        assert!(app.n_secrets() >= 2, "{}", app.name());
        let mut rng = StdRng::seed_from_u64(3);
        for secret in [0, app.n_secrets() / 2, app.n_secrets() - 1] {
            let plan = app.sample_plan(secret, &mut rng);
            assert_eq!(
                plan.duration_ns(),
                app.window_ns(),
                "{} secret {secret}",
                app.name()
            );
            assert!(plan.total_uops() > 0.0);
            for seg in &plan.segments {
                assert!(seg.duration_ns > 0);
                for (_, v) in seg.rate.iter_nonzero() {
                    assert!(v >= 0.0, "negative rate in {}", app.name());
                }
            }
            assert!(!app.secret_name(secret).is_empty());
        }
    }
}

#[test]
fn app_names_are_distinct() {
    let names: Vec<String> = apps().iter().map(|a| a.name().to_string()).collect();
    let mut unique = names.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), names.len());
}

#[test]
fn within_class_variance_is_smaller_than_between_class() {
    // The learning problem the attacks solve requires this ordering.
    let app = WebsiteCatalog::new(7);
    let mut rng = StdRng::seed_from_u64(5);
    let totals = |secret: usize, rng: &mut StdRng| -> Vec<f64> {
        (0..8)
            .map(|_| app.sample_plan(secret, rng).total_uops())
            .collect()
    };
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let sd = |xs: &[f64]| {
        let m = mean(xs);
        (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
    };
    let per_class: Vec<Vec<f64>> = (0..10).map(|s| totals(s, &mut rng)).collect();
    let within: f64 = per_class.iter().map(|c| sd(c)).sum::<f64>() / 10.0;
    let class_means: Vec<f64> = per_class.iter().map(|c| mean(c)).collect();
    let between = sd(&class_means);
    assert!(
        between > 2.0 * within,
        "between-class sd {between} vs within-class {within}"
    );
}

#[test]
fn plan_sampling_never_exceeds_core_capacity() {
    // No workload may demand more than a vCPU can execute, or the
    // latency model would throttle clean runs and distort baselines.
    let cap = aegis_microarch::MicroArch::AmdEpyc7252.uops_capacity_per_us();
    let mut rng = StdRng::seed_from_u64(9);
    for app in apps() {
        for secret in 0..app.n_secrets().min(8) {
            let plan = app.sample_plan(secret, &mut rng);
            for seg in &plan.segments {
                let demand = seg.rate[Feature::UopsRetired];
                assert!(
                    demand < cap,
                    "{} demands {demand} µops/µs (cap {cap})",
                    app.name()
                );
            }
        }
    }
}

#[test]
fn catalog_size_constants_match_apps() {
    assert_eq!(WebsiteCatalog::new(1).n_secrets(), N_SITES);
    assert_eq!(DnnZoo::new(1).n_secrets(), N_MODELS);
}

#[test]
fn different_seeds_give_different_site_profiles() {
    let a = WebsiteCatalog::new(1);
    let b = WebsiteCatalog::new(2);
    let mut r1 = StdRng::seed_from_u64(3);
    let mut r2 = StdRng::seed_from_u64(3);
    assert_ne!(a.sample_plan(0, &mut r1), b.sample_plan(0, &mut r2));
}
