//! End-to-end attack/defense evaluation: the machinery behind the
//! paper's case studies (Section III) and defense evaluation (Section
//! VIII). Used by the examples and the experiment harness.

use crate::error::AegisError;
use crate::pipeline::{AegisConfig, DefenseDeployment};
use aegis_attack::{
    ctc_collapse, layer_match_accuracy, trace_features_into, Dataset, EpochStats, GaussianNb,
    Standardizer, TrainConfig, TrainingCurve,
};
use aegis_microarch::{EventId, OriginFilter};
use aegis_obs as obs;
use aegis_par::{
    derive_seed, fingerprint, ArtifactCache, ArtifactKey, ColumnFrame, ColumnSchema, Columnar,
    Executor, FrameError, FrameReader,
};
use aegis_sev::{ActivitySource, Host, HostError, LaneGuest, PlanSource, VmId};
use aegis_workloads::{DnnZoo, LayerKind, SecretApp, Segment, WorkloadPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Stream tags separating the independent RNG consumers of one
/// collection seed (see [`derive_seed`]).
const STREAM_PLAN: u64 = 0x01;
const STREAM_NOISE: u64 = 0x02;
const STREAM_MEA_PLAN: u64 = 0x03;
const STREAM_MEA_NOISE: u64 = 0x04;

/// Trace-collection settings for attack datasets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectConfig {
    /// Monitored traces per secret.
    pub traces_per_secret: usize,
    /// Monitoring window (≤ the app's window).
    pub window_ns: u64,
    /// Sampling interval (the paper's attacker uses 1 ms).
    pub interval_ns: u64,
    /// Average-pooling factor applied to each event row before learning.
    pub pool: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// When true, the injected noise stream is seeded by the *secret*
    /// only, so every execution of the same secret carries the identical
    /// noise — the paper's Section IX-B countermeasure against attackers
    /// who average multiple traces.
    pub per_secret_noise: bool,
}

impl Default for CollectConfig {
    fn default() -> Self {
        CollectConfig {
            traces_per_secret: 12,
            window_ns: 500_000_000,
            interval_ns: 1_000_000,
            pool: 10,
            seed: 7,
            per_secret_noise: false,
        }
    }
}

/// The trace-collection handle: one place that owns the collection and
/// MEA settings and measures apps, datasets, and extraction runs against
/// a host. Build one from the same [`AegisConfig`] that drives the
/// pipeline — collection settings live alongside the mechanism and
/// profiling settings instead of being threaded as loose arguments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Collector {
    collect: CollectConfig,
    mea: MeaConfig,
}

impl Collector {
    /// Builds a collector from the pipeline configuration.
    pub fn new(cfg: &AegisConfig) -> Collector {
        Collector {
            collect: cfg.collect,
            mea: cfg.mea,
        }
    }

    /// Builds a collector from explicit settings (for callers that never
    /// construct an [`AegisConfig`]).
    pub fn from_parts(collect: CollectConfig, mea: MeaConfig) -> Collector {
        Collector { collect, mea }
    }

    /// A collector with the given trace settings and default MEA
    /// settings.
    pub fn for_traces(collect: CollectConfig) -> Collector {
        Collector {
            collect,
            mea: MeaConfig::default(),
        }
    }

    /// A collector with the given MEA settings and default trace
    /// settings.
    pub fn for_mea(mea: MeaConfig) -> Collector {
        Collector {
            collect: CollectConfig::default(),
            mea,
        }
    }

    /// The active trace-collection settings.
    pub fn collect_config(&self) -> &CollectConfig {
        &self.collect
    }

    /// The active MEA-collection settings.
    pub fn mea_config(&self) -> &MeaConfig {
        &self.mea
    }

    /// Collects a labeled HPC-trace dataset of `app` running in `vm`, as
    /// observed by the *host* (the attacker's view: every counter on the
    /// guest's core, app and injected noise indistinguishable).
    ///
    /// With `defense` set, a fresh obfuscator is deployed per trace.
    ///
    /// The (secret, rep) units are independent measurements, so they are
    /// sharded across the configured worker pool: each unit replays
    /// against a pristine fork of `host` with plan and noise RNGs derived
    /// from `(seed, unit index)`. The dataset is therefore bit-identical
    /// for any worker count, including 1.
    ///
    /// # Errors
    ///
    /// Returns [`AegisError::Host`] for invalid ids.
    pub fn dataset(
        &self,
        host: &mut Host,
        vm: VmId,
        vcpu: usize,
        app: &dyn SecretApp,
        events: &[EventId],
        defense: Option<&DefenseDeployment>,
    ) -> Result<Dataset, AegisError> {
        dataset_impl(host, vm, vcpu, app, events, &self.collect, defense)
    }

    /// Collects model-extraction runs: each run is one padded inference
    /// pass of one zoo model with per-slice layer labels. Shards across
    /// the worker pool exactly like [`Collector::dataset`].
    ///
    /// # Errors
    ///
    /// Returns [`AegisError::Host`] for invalid ids.
    pub fn mea_runs(
        &self,
        host: &mut Host,
        vm: VmId,
        vcpu: usize,
        zoo: &DnnZoo,
        events: &[EventId],
        defense: Option<&DefenseDeployment>,
    ) -> Result<Vec<(usize, MeaRun)>, AegisError> {
        mea_runs_impl(host, vm, vcpu, zoo, events, &self.mea, defense)
    }

    /// Runs one app plan to completion and measures latency and CPU
    /// usage (see [`measure_app_run`]).
    ///
    /// # Errors
    ///
    /// Returns [`AegisError::Host`] for invalid ids, or if the app fails
    /// to finish within 10× its nominal duration.
    pub fn measure(
        &self,
        host: &mut Host,
        vm: VmId,
        vcpu: usize,
        plan: WorkloadPlan,
        defense: Option<&DefenseDeployment>,
        seed: u64,
    ) -> Result<RunMeasurement, AegisError> {
        measure_app_run(host, vm, vcpu, plan, defense, seed)
    }
}

/// Units per parallel work item on the batched collection path: one
/// cache-sized [`CoreBatch`](aegis_microarch::CoreBatch) tile of the
/// single-core lane group.
const COLLECT_TILE_UNITS: usize = aegis_microarch::CoreBatch::TILE_LANES;

/// The per-lane deltas of one `(secret, rep)` unit: the sampled app
/// plan and (with a defense) a fresh obfuscator, exactly what the
/// scalar path would attach to its fork of the host. All seeds derive
/// from the unit index alone, so lanes are order-independent.
fn collect_lane(
    unit: usize,
    secret: usize,
    app: &dyn SecretApp,
    defense: Option<&DefenseDeployment>,
    cfg: &CollectConfig,
) -> LaneGuest {
    let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, STREAM_PLAN, unit as u64));
    let plan = app.sample_plan(secret, &mut rng);
    let noise_unit = if cfg.per_secret_noise {
        secret as u64
    } else {
        unit as u64
    };
    LaneGuest {
        app: Some(Box::new(PlanSource::new(plan))),
        injector: defense.map(|d| {
            Box::new(d.make_obfuscator(derive_seed(cfg.seed, STREAM_NOISE, noise_unit)))
                as Box<dyn ActivitySource>
        }),
    }
}

pub(crate) fn dataset_impl(
    host: &mut Host,
    vm: VmId,
    vcpu: usize,
    app: &dyn SecretApp,
    events: &[EventId],
    cfg: &CollectConfig,
    defense: Option<&DefenseDeployment>,
) -> Result<Dataset, AegisError> {
    let mut span = obs::span("collect.dataset");
    let core_idx = host.core_of(vm, vcpu)?;
    // Detach any leftover injector up front: replicas must start
    // pristine, and id errors must surface before workers spawn.
    host.detach_injector(vm, vcpu)?;
    let units: Vec<(usize, usize)> = (0..app.n_secrets())
        .flat_map(|s| (0..cfg.traces_per_secret).map(move |r| (s, r)))
        .collect();
    // Attribute the simulated time this call replays alongside its wall
    // time (each unit replays one monitoring window).
    let window = cfg.window_ns.min(app.window_ns());
    span.set_sim_ns(window * units.len() as u64);
    // The lane-batched acquisition path: each unit is one lane of a
    // single-core lane group snapshotted from `host`, bit-identical to
    // recording the unit on its own detached fork (the scalar reference
    // below, pinned by a parity test). Tiles shard over the worker pool
    // with per-worker feature scratch — no per-unit fork or trace
    // allocation.
    let snapshot: &Host = host;
    let tiles: Vec<&[(usize, usize)]> = units.chunks(COLLECT_TILE_UNITS).collect();
    let rows: Vec<Result<(Vec<f64>, usize), aegis_perf::PerfError>> = Executor::from_config()
        .map_with(
            tiles,
            |_worker| Vec::new(),
            |feats, tile_ix, tile| {
                let base = tile_ix * COLLECT_TILE_UNITS;
                let lanes: Vec<Vec<LaneGuest>> = tile
                    .iter()
                    .enumerate()
                    .map(|(i, &(secret, _rep))| {
                        vec![collect_lane(base + i, secret, app, defense, cfg)]
                    })
                    .collect();
                // Events were validated on the original host; recording
                // only fails when an injected programming fault exhausts
                // its retry budget, surfaced as `AegisError::Fault` below.
                let traces = snapshot.record_trace_multi_batch(
                    &[core_idx],
                    lanes,
                    events,
                    OriginFilter::Any,
                    cfg.interval_ns,
                    window,
                )?;
                let mut flat = Vec::new();
                for lane in &traces {
                    trace_features_into(&lane[0], cfg.pool, feats);
                    flat.extend_from_slice(feats);
                }
                Ok((flat, traces.len()))
            },
        );
    let mut ds = Dataset::new(Vec::new(), Vec::new(), app.n_secrets());
    for (tile_ix, row) in rows.into_iter().enumerate() {
        let (flat, n_lanes) = row.map_err(AegisError::from)?;
        let stride = flat.len().checked_div(n_lanes).unwrap_or(0);
        let tile_units = &units[tile_ix * COLLECT_TILE_UNITS..];
        for (i, &(secret, _rep)) in tile_units.iter().take(n_lanes).enumerate() {
            ds.push_slice(&flat[i * stride..(i + 1) * stride], secret);
        }
    }
    Ok(ds)
}

/// The scalar per-fork reference for [`dataset_impl`]: one detached
/// fork and one [`Host::record_trace`] per `(secret, rep)` unit. Kept
/// as the bit-exact oracle the batched path is pinned against.
#[cfg(test)]
pub(crate) fn dataset_impl_scalar(
    host: &mut Host,
    vm: VmId,
    vcpu: usize,
    app: &dyn SecretApp,
    events: &[EventId],
    cfg: &CollectConfig,
    defense: Option<&DefenseDeployment>,
) -> Result<Dataset, AegisError> {
    let core_idx = host.core_of(vm, vcpu)?;
    host.detach_injector(vm, vcpu)?;
    let units: Vec<(usize, usize)> = (0..app.n_secrets())
        .flat_map(|s| (0..cfg.traces_per_secret).map(move |r| (s, r)))
        .collect();
    let snapshot: &Host = host;
    let rows: Vec<Result<(Vec<f64>, usize), aegis_perf::PerfError>> = Executor::from_config()
        .map_with(
            units,
            |_worker| {
                let pristine = snapshot.fork_detached();
                let arena = pristine.fork_detached();
                (pristine, arena)
            },
            |(pristine, replica), unit, (secret, _rep)| {
                // A fresh fork per unit: leftover clock/cache/PMU state
                // from a previous unit on this worker must not leak in,
                // or results would depend on the work distribution.
                pristine.fork_detached_into(replica);
                let mut rng =
                    StdRng::seed_from_u64(derive_seed(cfg.seed, STREAM_PLAN, unit as u64));
                let plan = app.sample_plan(secret, &mut rng);
                replica
                    .attach_app(vm, vcpu, Box::new(PlanSource::new(plan)))
                    .expect("ids were validated on the original host");
                if let Some(d) = defense {
                    let noise_unit = if cfg.per_secret_noise {
                        secret as u64
                    } else {
                        unit as u64
                    };
                    d.deploy(
                        replica,
                        vm,
                        vcpu,
                        derive_seed(cfg.seed, STREAM_NOISE, noise_unit),
                    )
                    .expect("ids were validated on the original host");
                }
                let trace = replica.record_trace(
                    core_idx,
                    events,
                    OriginFilter::Any,
                    cfg.interval_ns,
                    cfg.window_ns.min(app.window_ns()),
                )?;
                Ok((aegis_attack::trace_features(&trace, cfg.pool), secret))
            },
        );
    let mut ds = Dataset::new(Vec::new(), Vec::new(), app.n_secrets());
    for row in rows {
        let (features, secret) = row.map_err(AegisError::from)?;
        ds.push(features, secret);
    }
    Ok(ds)
}

/// A trained classification attacker (WFA/KSA): a Gaussian
/// class-conditional model (the generative counterpart of the paper's
/// CNN; see `aegis_attack::GaussianNb` for why) plus the feature
/// standardizer fitted on its training data.
///
/// Serializable so trained models can be memoized through
/// [`ArtifactCache`] (see [`ClassifierAttack::train_cached`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierAttack {
    model: GaussianNb,
    standardizer: Standardizer,
    /// Training curve (Fig. 1 material): the model refit on growing
    /// training subsets, one increment per "epoch".
    pub curve: TrainingCurve,
}

impl ClassifierAttack {
    /// Trains on a clean (or noisy, for the robust attacker of Fig. 9b)
    /// dataset with the paper's 70/30 train/validation split. The
    /// `train_cfg.epochs` value sets the number of learning-curve
    /// increments recorded.
    ///
    /// # Panics
    ///
    /// Panics if `dataset` is empty.
    pub fn train(dataset: &Dataset, train_cfg: TrainConfig, seed: u64) -> Self {
        let _span = obs::span("attack.train");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa77a_c4e0);
        let (mut train, mut val) = dataset.split(0.7, &mut rng);
        let standardizer = Standardizer::fit(&train.samples);
        standardizer.apply_dataset(&mut train);
        standardizer.apply_dataset(&mut val);
        let (model, curve) = fit_with_curve(&train, &val, train_cfg.epochs.max(1));
        ClassifierAttack {
            model,
            standardizer,
            curve,
        }
    }

    /// Like [`ClassifierAttack::train`], but memoized through `cache`:
    /// training is a pure function of `(dataset, train_cfg, seed)`, so
    /// the trained model is stored under a fingerprint of exactly those
    /// inputs, in the columnar `.acs` format — a warm hit is one bulk
    /// read of little-endian pages, bit-identical to retraining. A
    /// legacy JSON entry under the same key is migrated transparently.
    pub fn train_cached(
        dataset: &Dataset,
        train_cfg: TrainConfig,
        seed: u64,
        cache: &ArtifactCache,
    ) -> Self {
        let key = ArtifactKey::raw("attack-model", fingerprint(&(dataset, &train_cfg, seed)));
        if let Some(model) = cache.get_col_or_json::<ClassifierAttack>(&key) {
            return model;
        }
        let trained = Self::train(dataset, train_cfg, seed);
        let _ = cache.put_col(&key, &trained);
        trained
    }

    /// Accuracy on new traces (the online exploitation phase).
    pub fn accuracy(&self, dataset: &Dataset) -> f64 {
        let mut ds = dataset.clone();
        self.standardizer.apply_dataset(&mut ds);
        self.model.accuracy(&ds)
    }
}

/// Columnar layout: the member frames in field order — model,
/// standardizer, curve — so a trained attacker loads as a handful of
/// bulk page reads.
impl Columnar for ClassifierAttack {
    fn schema() -> ColumnSchema {
        ColumnSchema::new("aegis/classifier-attack", 1)
    }

    fn encode_columns(&self, frame: &mut ColumnFrame) {
        self.model.encode_columns(frame);
        self.standardizer.encode_columns(frame);
        self.curve.encode_columns(frame);
    }

    fn decode_columns(reader: &mut FrameReader) -> Result<Self, FrameError> {
        Ok(ClassifierAttack {
            model: GaussianNb::decode_columns(reader)?,
            standardizer: Standardizer::decode_columns(reader)?,
            curve: TrainingCurve::decode_columns(reader)?,
        })
    }
}

/// One monitored inference run for the model extraction attack: per-slice
/// features and the ground-truth layer sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeaRun {
    /// Per-slice feature vectors.
    pub slices: Vec<Vec<f64>>,
    /// Ground-truth (uncollapsed) layer index per slice; `BLANK` = idle.
    pub slice_labels: Vec<usize>,
    /// Ground-truth layer sequence of the model.
    pub truth: Vec<usize>,
}

/// A collected set of `(model index, run)` extraction runs with a
/// columnar on-disk encoding. A newtype rather than an impl on the bare
/// `Vec` — `Columnar` is a foreign trait, so the orphan rule requires a
/// local carrier — that also gives the artifact a stable schema name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MeaRunLog(pub Vec<(usize, MeaRun)>);

/// Columnar layout: one `u64` meta column (`[n_runs]`, then per run
/// `[model, n_slices, n_labels, truth_len]`), a `u64` column of
/// per-slice feature lengths, the concatenated slice features as one
/// `f64` page, and the concatenated slice labels / truth sequences as
/// `u64` pages. Loading is a handful of bulk page reads with no
/// per-element parsing.
impl Columnar for MeaRunLog {
    fn schema() -> ColumnSchema {
        ColumnSchema::new("aegis/mea-runs", 1)
    }

    fn encode_columns(&self, frame: &mut ColumnFrame) {
        let mut meta = Vec::with_capacity(1 + self.0.len() * 4);
        meta.push(self.0.len() as u64);
        let mut slice_lens = Vec::new();
        let mut flat = Vec::new();
        let mut labels = Vec::new();
        let mut truths = Vec::new();
        for (model, run) in &self.0 {
            meta.push(*model as u64);
            meta.push(run.slices.len() as u64);
            meta.push(run.slice_labels.len() as u64);
            meta.push(run.truth.len() as u64);
            for s in &run.slices {
                slice_lens.push(s.len() as u64);
                flat.extend_from_slice(s);
            }
            labels.extend(run.slice_labels.iter().map(|&l| l as u64));
            truths.extend(run.truth.iter().map(|&t| t as u64));
        }
        frame.push_u64(meta);
        frame.push_u64(slice_lens);
        frame.push_f64(flat);
        frame.push_u64(labels);
        frame.push_u64(truths);
    }

    fn decode_columns(reader: &mut FrameReader) -> Result<Self, FrameError> {
        fn idx(v: u64, what: &str) -> Result<usize, FrameError> {
            usize::try_from(v).map_err(|_| FrameError::new(format!("mea-runs: {what} overflow")))
        }
        let meta = reader.u64s()?;
        let slice_lens = reader.u64s()?;
        let flat = reader.f64s()?;
        let labels = reader.u64s()?;
        let truths = reader.u64s()?;
        let Some((&n, per_run)) = meta.split_first() else {
            return Err(FrameError::new("mea-runs: empty meta column"));
        };
        let n = idx(n, "run count")?;
        if per_run.len() != n * 4 {
            return Err(FrameError::new(format!(
                "mea-runs: meta column holds {} entries for {n} runs",
                per_run.len()
            )));
        }
        let mut runs = Vec::with_capacity(n);
        let (mut s_at, mut f_at, mut l_at, mut t_at) = (0usize, 0usize, 0usize, 0usize);
        for chunk in per_run.chunks_exact(4) {
            let model = idx(chunk[0], "model index")?;
            let n_slices = idx(chunk[1], "slice count")?;
            let n_labels = idx(chunk[2], "label count")?;
            let truth_len = idx(chunk[3], "truth length")?;
            let mut slices = Vec::with_capacity(n_slices);
            for _ in 0..n_slices {
                let len = idx(
                    *slice_lens
                        .get(s_at)
                        .ok_or_else(|| FrameError::new("mea-runs: slice-length column short"))?,
                    "slice length",
                )?;
                s_at += 1;
                let end = f_at
                    .checked_add(len)
                    .filter(|&e| e <= flat.len())
                    .ok_or_else(|| FrameError::new("mea-runs: feature page short"))?;
                slices.push(flat[f_at..end].to_vec());
                f_at = end;
            }
            let l_end = l_at
                .checked_add(n_labels)
                .filter(|&e| e <= labels.len())
                .ok_or_else(|| FrameError::new("mea-runs: label column short"))?;
            let slice_labels = labels[l_at..l_end]
                .iter()
                .map(|&l| idx(l, "slice label"))
                .collect::<Result<Vec<_>, _>>()?;
            l_at = l_end;
            let t_end = t_at
                .checked_add(truth_len)
                .filter(|&e| e <= truths.len())
                .ok_or_else(|| FrameError::new("mea-runs: truth column short"))?;
            let truth = truths[t_at..t_end]
                .iter()
                .map(|&t| idx(t, "truth label"))
                .collect::<Result<Vec<_>, _>>()?;
            t_at = t_end;
            runs.push((
                model,
                MeaRun {
                    slices,
                    slice_labels,
                    truth,
                },
            ));
        }
        if s_at != slice_lens.len() || f_at != flat.len() || l_at != labels.len()
            || t_at != truths.len()
        {
            return Err(FrameError::new("mea-runs: trailing data beyond meta"));
        }
        Ok(MeaRunLog(runs))
    }
}

impl Serialize for MeaRunLog {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl Deserialize for MeaRunLog {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(MeaRunLog(Deserialize::from_value(v)?))
    }
}

/// The CTC blank symbol (idle / between inferences).
pub const BLANK: usize = LayerKind::ALL.len();

/// MEA collection settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeaConfig {
    /// Monitored inference runs per model.
    pub runs_per_model: usize,
    /// Sampling interval.
    pub interval_ns: u64,
    /// Idle padding before/after the inference inside the window.
    pub pad_ns: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for MeaConfig {
    fn default() -> Self {
        MeaConfig {
            runs_per_model: 6,
            interval_ns: 1_000_000,
            pad_ns: 20_000_000,
            seed: 7,
        }
    }
}

/// Collects model-extraction runs: each run is one padded inference pass
/// of one zoo model with per-slice layer labels.
///
/// The (model, rep) units shard across the configured worker pool with
/// per-unit derived seeds and pristine host forks — output is independent
/// of the worker count.
pub(crate) fn mea_runs_impl(
    host: &mut Host,
    vm: VmId,
    vcpu: usize,
    zoo: &DnnZoo,
    events: &[EventId],
    cfg: &MeaConfig,
    defense: Option<&DefenseDeployment>,
) -> Result<Vec<(usize, MeaRun)>, AegisError> {
    let _span = obs::span("collect.mea");
    let core_idx = host.core_of(vm, vcpu)?;
    host.detach_injector(vm, vcpu)?;
    let units: Vec<(usize, usize)> = (0..zoo.n_secrets())
        .flat_map(|m| (0..cfg.runs_per_model).map(move |r| (m, r)))
        .collect();
    let snapshot: &Host = host;
    let runs: Vec<Result<(usize, MeaRun), aegis_perf::PerfError>> = Executor::from_config()
        .map_with(
            units,
            |_worker| {
                let pristine = snapshot.fork_detached();
                let arena = pristine.fork_detached();
                (pristine, arena)
            },
            |(pristine, replica), unit, (model, _rep)| {
            // In-place fork into the worker's reusable replica arena —
            // identical to a fresh fork, allocation-free in steady state.
            pristine.fork_detached_into(replica);
            let mut rng =
                StdRng::seed_from_u64(derive_seed(cfg.seed, STREAM_MEA_PLAN, unit as u64));
            let (pass, spans) = zoo.sample_inference(model, &mut rng);
            // Pad the inference with idle so the attacker must segment it.
            let mut plan = WorkloadPlan::new();
            plan.push(Segment::new(cfg.pad_ns, aegis_workloads::idle_rate()));
            let offset = cfg.pad_ns;
            let inference_ns = pass.duration_ns();
            plan.segments.extend(pass.segments);
            plan.push(Segment::new(cfg.pad_ns, aegis_workloads::idle_rate()));
            let total_ns = plan.duration_ns();

            replica
                .attach_app(vm, vcpu, Box::new(PlanSource::new(plan)))
                .expect("ids were validated on the original host");
            if let Some(d) = defense {
                d.deploy(
                    replica,
                    vm,
                    vcpu,
                    derive_seed(cfg.seed, STREAM_MEA_NOISE, unit as u64),
                )
                .expect("ids were validated on the original host");
            }
            // Events were validated on the original host; recording only
            // fails when an injected programming fault exhausts its
            // retry budget, surfaced as `AegisError::Fault` below.
            let trace = replica.record_trace(
                core_idx,
                events,
                OriginFilter::Any,
                cfg.interval_ns,
                total_ns,
            )?;

            // Per-slice features: the event values of the slice plus the
            // delta to the previous slice (temporal context).
            let t_len = trace.len();
            let mut slices = Vec::with_capacity(t_len);
            for t in 0..t_len {
                let mut f = Vec::with_capacity(events.len() * 2);
                for row in &trace.data {
                    f.push(row[t]);
                }
                for row in &trace.data {
                    f.push(if t == 0 { 0.0 } else { row[t] - row[t - 1] });
                }
                slices.push(f);
            }
            // Ground-truth labels per slice midpoint.
            let slice_labels: Vec<usize> = (0..t_len)
                .map(|t| {
                    let mid = t as u64 * cfg.interval_ns + cfg.interval_ns / 2;
                    if mid < offset || mid >= offset + inference_ns {
                        return BLANK;
                    }
                    let rel = mid - offset;
                    spans
                        .iter()
                        .find(|s| rel >= s.start_ns && rel < s.end_ns)
                        .map_or(BLANK, |s| s.kind.index())
                })
                .collect();
            let truth: Vec<usize> = zoo
                .model(model)
                .label_sequence()
                .iter()
                .map(|k| k.index())
                .collect();
            Ok((
                model,
                MeaRun {
                    slices,
                    slice_labels,
                    truth,
                },
            ))
        },
    );
    runs.into_iter()
        .map(|r| r.map_err(AegisError::from))
        .collect()
}

/// The sequence-extraction attacker: a per-slice layer classifier with
/// CTC-style greedy decoding (the reproduction's stand-in for the paper's
/// GRU + CTC model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeaAttack {
    model: GaussianNb,
    standardizer: Standardizer,
    /// Training curve of the slice classifier.
    pub curve: TrainingCurve,
}

impl MeaAttack {
    /// Trains the slice classifier on labeled runs (70/30 split at the
    /// slice level). `train_cfg.epochs` sets the learning-curve
    /// increments.
    ///
    /// # Panics
    ///
    /// Panics if `runs` contains no slices.
    pub fn train(runs: &[(usize, MeaRun)], train_cfg: TrainConfig, seed: u64) -> Self {
        let _span = obs::span("attack.train");
        let mut ds = Dataset::new(Vec::new(), Vec::new(), BLANK + 1);
        for (_, run) in runs {
            for (f, &l) in run.slices.iter().zip(&run.slice_labels) {
                ds.push(f.clone(), l);
            }
        }
        assert!(!ds.is_empty(), "no slices to train on");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5e0a_11ce);
        let (mut train, mut val) = ds.split(0.7, &mut rng);
        let standardizer = Standardizer::fit(&train.samples);
        standardizer.apply_dataset(&mut train);
        standardizer.apply_dataset(&mut val);
        let (model, curve) = fit_with_curve(&train, &val, train_cfg.epochs.max(1));
        MeaAttack {
            model,
            standardizer,
            curve,
        }
    }

    /// Like [`MeaAttack::train`], but memoized through `cache` under a
    /// fingerprint of `(runs, train_cfg, seed)` — the complete set of
    /// training inputs — in the columnar `.acs` format. A legacy JSON
    /// entry under the same key is migrated transparently.
    pub fn train_cached(
        runs: &[(usize, MeaRun)],
        train_cfg: TrainConfig,
        seed: u64,
        cache: &ArtifactCache,
    ) -> Self {
        let key = ArtifactKey::raw("mea-model", fingerprint(&(runs, &train_cfg, seed)));
        if let Some(model) = cache.get_col_or_json::<MeaAttack>(&key) {
            return model;
        }
        let trained = Self::train(runs, train_cfg, seed);
        let _ = cache.put_col(&key, &trained);
        trained
    }

    /// Extracts the layer sequence of one run: per-slice prediction, a
    /// width-3 majority smoothing pass, suppression of single-slice
    /// blips (every real layer spans at least two sampling slices), then
    /// CTC greedy collapse. Smoothing plays the role the paper's
    /// recurrent model plays through its temporal context.
    pub fn extract(&self, run: &MeaRun) -> Vec<usize> {
        let raw: Vec<usize> = run
            .slices
            .iter()
            .map(|f| {
                let mut x = f.clone();
                self.standardizer.apply(&mut x);
                self.model.predict(&x)
            })
            .collect();
        let n = raw.len();
        let smoothed: Vec<usize> = (0..n)
            .map(|t| {
                if t == 0 || t + 1 == n {
                    return raw[t];
                }
                // Majority of the 3-window; ties keep the center.
                if raw[t - 1] == raw[t + 1] && raw[t - 1] != raw[t] {
                    raw[t - 1]
                } else {
                    raw[t]
                }
            })
            .collect();
        // Drop runs of length 1: sampling at 1 ms cannot legitimately see
        // a layer for a single slice given the layer-duration floor.
        let mut filtered = Vec::with_capacity(n);
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j < n && smoothed[j] == smoothed[i] {
                j += 1;
            }
            if j - i >= 2 {
                filtered.extend_from_slice(&smoothed[i..j]);
            }
            i = j;
        }
        ctc_collapse(&filtered, BLANK)
    }

    /// Mean layer-match accuracy over runs — the paper's MEA metric.
    pub fn sequence_accuracy(&self, runs: &[(usize, MeaRun)]) -> f64 {
        if runs.is_empty() {
            return 0.0;
        }
        runs.iter()
            .map(|(_, run)| layer_match_accuracy(&self.extract(run), &run.truth))
            .sum::<f64>()
            / runs.len() as f64
    }
}

/// Columnar layout: member frames in field order, exactly like
/// [`ClassifierAttack`].
impl Columnar for MeaAttack {
    fn schema() -> ColumnSchema {
        ColumnSchema::new("aegis/mea-attack", 1)
    }

    fn encode_columns(&self, frame: &mut ColumnFrame) {
        self.model.encode_columns(frame);
        self.standardizer.encode_columns(frame);
        self.curve.encode_columns(frame);
    }

    fn decode_columns(reader: &mut FrameReader) -> Result<Self, FrameError> {
        Ok(MeaAttack {
            model: GaussianNb::decode_columns(reader)?,
            standardizer: Standardizer::decode_columns(reader)?,
            curve: TrainingCurve::decode_columns(reader)?,
        })
    }
}

/// Fits a Gaussian class-conditional model on growing prefixes of the
/// (already shuffled) training set, recording one curve point per
/// increment — the reproduction's analogue of the paper's per-epoch
/// training curves.
fn fit_with_curve(
    train: &Dataset,
    val: &Dataset,
    increments: usize,
) -> (GaussianNb, TrainingCurve) {
    let mut curve = TrainingCurve::new();
    let mut model = GaussianNb::fit(train);
    for e in 0..increments {
        let n = ((train.len() * (e + 1)) / increments).max(1);
        let sub = train.head(n);
        let m = GaussianNb::fit(&sub);
        curve.push(EpochStats {
            epoch: e,
            train_loss: m.mean_nll(&sub),
            train_acc: m.accuracy(&sub),
            val_acc: m.accuracy(val),
        });
        if e + 1 == increments {
            model = m;
        }
    }
    (model, curve)
}

/// Latency and CPU-usage measurement of one app execution, with or
/// without the defense (Fig. 10 material).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunMeasurement {
    /// Wall (simulated) time to complete the app plan, nanoseconds.
    pub latency_ns: u64,
    /// VM CPU utilization over the run, in `[0, 1]`.
    pub cpu_usage: f64,
}

/// Runs one app plan to completion and measures latency and CPU usage.
///
/// # Errors
///
/// Returns [`AegisError::Host`] for invalid ids, or if the app fails to
/// finish within 10× its nominal duration.
pub fn measure_app_run(
    host: &mut Host,
    vm: VmId,
    vcpu: usize,
    plan: WorkloadPlan,
    defense: Option<&DefenseDeployment>,
    seed: u64,
) -> Result<RunMeasurement, AegisError> {
    let mut span = obs::span("measure.app_run");
    let nominal = plan.duration_ns();
    host.attach_app(vm, vcpu, Box::new(PlanSource::new(plan)))?;
    match defense {
        Some(d) => {
            d.deploy(host, vm, vcpu, seed)?;
        }
        None => host.detach_injector(vm, vcpu)?,
    }
    host.reset_vm_stats(vm)?;
    let latency = host
        .run_until_app_done(vm, vcpu, nominal.saturating_mul(10).max(1_000_000))?
        .ok_or(HostError::UnknownVcpu(vm, vcpu))?;
    let cpu = host.vm_cpu_usage(vm)?;
    host.detach_injector(vm, vcpu)?;
    span.set_sim_ns(latency);
    Ok(RunMeasurement {
        latency_ns: latency,
        cpu_usage: cpu,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MechanismChoice;
    use aegis_microarch::MicroArch;
    use aegis_obfuscator::{GadgetStack, ObfuscatorConfig};
    use aegis_sev::SevMode;
    use aegis_workloads::KeystrokeApp;

    fn host_vm() -> (Host, VmId) {
        let mut host = Host::new(MicroArch::AmdEpyc7252, 2, 3);
        let vm = host.launch_vm(1, SevMode::SevSnp).unwrap();
        (host, vm)
    }

    fn quick_collect() -> CollectConfig {
        CollectConfig {
            traces_per_secret: 16,
            window_ns: 300_000_000,
            interval_ns: 2_000_000,
            pool: 25,
            seed: 7,
            per_secret_noise: false,
        }
    }

    fn test_deployment(host: &Host) -> DefenseDeployment {
        use aegis_fuzzer::Gadget;
        use aegis_isa::{IsaCatalog, Vendor, WellKnown};
        let isa = IsaCatalog::synthetic(Vendor::Amd, 7);
        let mut core = aegis_microarch::Core::new(host.arch(), 9);
        let stack = GadgetStack::calibrate(
            &isa,
            &mut core,
            vec![Gadget::new(WellKnown::Clflush.id(), WellKnown::Load64.id())],
            64,
        );
        DefenseDeployment {
            stack,
            mechanism: MechanismChoice::Laplace { epsilon: 0.25 },
            obfuscator: ObfuscatorConfig::default(),
        }
    }

    #[test]
    fn batched_dataset_bit_matches_the_scalar_forks() {
        let (mut host, vm) = host_vm();
        let app = KeystrokeApp::with_window(300_000_000);
        let core = host.core_of(vm, 0).unwrap();
        let events = host.core(core).catalog().attack_events().to_vec();
        // A tiny window keeps the test fast; 2 traces per secret still
        // crosses no tile boundary, so also run enough units to tile.
        let cfg = CollectConfig {
            traces_per_secret: 4, // 10 secrets × 4 = 40 units: two tiles
            window_ns: 6_000_000,
            interval_ns: 1_000_000,
            pool: 2,
            seed: 13,
            per_secret_noise: false,
        };
        let batched = dataset_impl(&mut host, vm, 0, &app, &events, &cfg, None).unwrap();
        let scalar = dataset_impl_scalar(&mut host, vm, 0, &app, &events, &cfg, None).unwrap();
        assert_eq!(batched, scalar, "clean datasets diverged");

        let d = test_deployment(&host);
        for per_secret_noise in [false, true] {
            let cfg = CollectConfig {
                per_secret_noise,
                ..cfg
            };
            let batched =
                dataset_impl(&mut host, vm, 0, &app, &events, &cfg, Some(&d)).unwrap();
            let scalar =
                dataset_impl_scalar(&mut host, vm, 0, &app, &events, &cfg, Some(&d)).unwrap();
            assert_eq!(
                batched, scalar,
                "defended datasets diverged (per_secret_noise={per_secret_noise})"
            );
        }
    }

    #[test]
    fn keystroke_attack_succeeds_clean_and_fails_defended() {
        let (mut host, vm) = host_vm();
        // A compressed keystroke window so the quick test's 300 ms
        // monitoring window sees every burst.
        let app = KeystrokeApp::with_window(300_000_000);
        let core = host.core_of(vm, 0).unwrap();
        let events = host.core(core).catalog().attack_events().to_vec();
        let cfg = quick_collect();

        let collector = Collector::from_parts(cfg, MeaConfig::default());
        let clean = collector.dataset(&mut host, vm, 0, &app, &events, None).unwrap();
        assert_eq!(clean.len(), 10 * cfg.traces_per_secret);
        let attack = ClassifierAttack::train(&clean, TrainConfig::default(), 7);
        let clean_acc = attack.curve.final_val_acc();
        assert!(clean_acc > 0.8, "clean accuracy {clean_acc}");

        // Defended victim traces.
        let deployment = test_deployment(&host);
        let mut victim_cfg = cfg;
        victim_cfg.seed = 99;
        let victim = Collector::from_parts(victim_cfg, MeaConfig::default());
        let defended = victim
            .dataset(&mut host, vm, 0, &app, &events, Some(&deployment))
            .unwrap();
        let def_acc = attack.accuracy(&defended);
        assert!(
            def_acc < clean_acc * 0.6,
            "defense must hurt the attack: clean {clean_acc} defended {def_acc}"
        );
    }

    #[test]
    fn attack_models_and_mea_runs_roundtrip_columnar_bit_exactly() {
        // A small separable dataset trains a real attacker whose frames
        // must decode to bit-identical predictions.
        let mut ds = Dataset::new(Vec::new(), Vec::new(), 3);
        for i in 0..30 {
            let c = i % 3;
            let f: Vec<f64> = (0..4)
                .map(|j| c as f64 + (i as f64) * 0.013 + (j as f64) * 0.07)
                .collect();
            ds.push(f, c);
        }
        let attack = ClassifierAttack::train(&ds, TrainConfig::default(), 7);
        let back = ClassifierAttack::from_frame(attack.to_frame()).unwrap();
        assert_eq!(attack, back);
        assert_eq!(attack.accuracy(&ds).to_bits(), back.accuracy(&ds).to_bits());

        // The MEA composite shares the layout.
        let mea = MeaAttack {
            model: attack.model.clone(),
            standardizer: attack.standardizer.clone(),
            curve: attack.curve.clone(),
        };
        let mea_back = MeaAttack::from_frame(mea.to_frame()).unwrap();
        assert_eq!(mea, mea_back);

        // Ragged hand-built runs exercise the meta/cursor layout,
        // including an empty run.
        let runs = MeaRunLog(vec![
            (
                2,
                MeaRun {
                    slices: vec![vec![1.0, -0.5], vec![f64::MIN_POSITIVE]],
                    slice_labels: vec![0, BLANK],
                    truth: vec![0, 3, 1],
                },
            ),
            (
                0,
                MeaRun {
                    slices: Vec::new(),
                    slice_labels: Vec::new(),
                    truth: vec![2],
                },
            ),
        ]);
        let runs_back = MeaRunLog::from_frame(runs.to_frame()).unwrap();
        assert_eq!(runs, runs_back);

        // A frame whose pages disagree with its meta column is rejected,
        // never silently misread: replace the truth column with a short
        // page.
        let mut rebuilt = runs.to_frame();
        rebuilt.pop();
        rebuilt.push_u64(vec![0]);
        assert!(MeaRunLog::from_frame(rebuilt).is_err());
    }

    #[test]
    fn measure_app_run_reports_overheads() {
        let (mut host, vm) = host_vm();
        let app = KeystrokeApp::new();
        let mut rng = StdRng::seed_from_u64(5);
        let plan = app.sample_plan(5, &mut rng);
        let base = measure_app_run(&mut host, vm, 0, plan.clone(), None, 1).unwrap();
        let deployment = test_deployment(&host);
        let defended = measure_app_run(&mut host, vm, 0, plan, Some(&deployment), 1).unwrap();
        assert!(
            defended.cpu_usage > base.cpu_usage,
            "{defended:?} vs {base:?}"
        );
        assert!(defended.latency_ns >= base.latency_ns);
    }
}
