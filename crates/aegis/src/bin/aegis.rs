//! The `aegis` command-line tool: run the offline pipeline, persist the
//! resulting defense plan as JSON, inspect it, and evaluate attacks and
//! overhead against a deployment — all over the simulated SEV testbed.
//!
//! ```text
//! aegis offline  --app keystroke --out plan.json [--arch amd|intel] [--seed N] [--thorough]
//! aegis inspect  --plan plan.json
//! aegis evaluate --app keystroke --plan plan.json --mechanism laplace --epsilon 1.0
//! aegis overhead --app keystroke --plan plan.json --mechanism dstar --epsilon 8.0
//! ```

use aegis::attack::TrainConfig;
use aegis::fuzzer::FuzzerConfig;
use aegis::microarch::MicroArch;
use aegis::profiler::{RankConfig, WarmupConfig};
use aegis::sev::{Host, SevMode, VmId};
use aegis::workloads::{CryptoApp, DnnZoo, KeystrokeApp, SecretApp, WebsiteCatalog};
use aegis::{
    measure_app_run, AegisConfig, AegisPipeline, ClassifierAttack, CollectConfig, Collector,
    DefenseDeployment, DefensePlan, MechanismChoice,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
aegis — HPC side-channel defense for confidential VMs (simulated testbed)

USAGE:
  aegis offline  --app <APP> --out <FILE> [--arch amd|intel] [--seed N] [--thorough]
  aegis inspect  --plan <FILE>
  aegis evaluate --app <APP> --plan <FILE> --mechanism <MECH> --epsilon <E> [--seed N]
  aegis overhead --app <APP> --plan <FILE> --mechanism <MECH> --epsilon <E> [--seed N]

APP:   website | keystroke | dnn | crypto
MECH:  laplace | dstar | random | constant

Every command also accepts --threads N (worker threads for parallel
collection and fuzzing; default: available parallelism, or the
AEGIS_THREADS environment variable). Results are bit-identical for any
thread count.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };
    let opts = parse_flags(&args[1..])?;
    if let Some(n) = opts.get("threads") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("bad --threads {n:?} (want a positive integer)"))?;
        if n == 0 {
            return Err("--threads must be at least 1".into());
        }
        aegis::par::set_threads(n);
    }
    let result = match command.as_str() {
        "offline" => offline(&opts),
        "inspect" => inspect(&opts),
        "evaluate" => evaluate(&opts),
        "overhead" => overhead(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return Ok(());
        }
        other => Err(format!("unknown command {other:?}")),
    };
    print_obs_summary();
    result
}

/// Renders the end-of-run observability summary on stderr. Lines carry an
/// `[obs] ` prefix so tooling that diffs stdout/stderr can filter them.
fn print_obs_summary() {
    if !aegis::obs::enabled() {
        return;
    }
    aegis::obs::flush();
    let summary = aegis::obs::render_summary(&aegis::obs::snapshot());
    for line in summary.lines() {
        eprintln!("[obs] {line}");
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {flag:?}"));
        };
        if name == "thorough" {
            out.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        out.insert(name.to_string(), value.clone());
    }
    Ok(out)
}

fn seed(opts: &HashMap<String, String>) -> Result<u64, String> {
    match opts.get("seed") {
        None => Ok(7),
        Some(s) => s.parse().map_err(|_| format!("bad --seed {s:?}")),
    }
}

fn arch(opts: &HashMap<String, String>) -> Result<MicroArch, String> {
    match opts.get("arch").map(String::as_str) {
        None | Some("amd") => Ok(MicroArch::AmdEpyc7252),
        Some("intel") => Ok(MicroArch::IntelXeonE5_1650),
        Some(other) => Err(format!("unknown --arch {other:?} (amd|intel)")),
    }
}

fn app(opts: &HashMap<String, String>, s: u64) -> Result<Box<dyn SecretApp>, String> {
    match opts.get("app").ok_or("missing --app")?.as_str() {
        "website" => Ok(Box::new(WebsiteCatalog::new(s))),
        "keystroke" => Ok(Box::new(KeystrokeApp::with_window(400_000_000))),
        "dnn" => Ok(Box::new(DnnZoo::new(s))),
        "crypto" => Ok(Box::new(CryptoApp::with_window(4, 400_000_000))),
        other => Err(format!(
            "unknown --app {other:?} (website|keystroke|dnn|crypto)"
        )),
    }
}

fn mechanism(opts: &HashMap<String, String>) -> Result<MechanismChoice, String> {
    let eps: f64 = opts
        .get("epsilon")
        .ok_or("missing --epsilon")?
        .parse()
        .map_err(|_| "bad --epsilon")?;
    if eps <= 0.0 {
        return Err("--epsilon must be positive".into());
    }
    match opts.get("mechanism").ok_or("missing --mechanism")?.as_str() {
        "laplace" => Ok(MechanismChoice::Laplace { epsilon: eps }),
        "dstar" => Ok(MechanismChoice::DStar { epsilon: eps }),
        "random" => Ok(MechanismChoice::UniformRandom { bound: eps }),
        "constant" => Ok(MechanismChoice::ConstantOutput { peak: eps }),
        other => Err(format!(
            "unknown --mechanism {other:?} (laplace|dstar|random|constant)"
        )),
    }
}

fn template(arch: MicroArch, seed: u64) -> Result<(Host, VmId), String> {
    let mut host = Host::new(arch, 2, seed);
    let vm = host
        .launch_vm(1, SevMode::SevSnp)
        .map_err(|e| e.to_string())?;
    Ok((host, vm))
}

fn load_plan(opts: &HashMap<String, String>) -> Result<DefensePlan, String> {
    let path = opts.get("plan").ok_or("missing --plan")?;
    DefensePlan::load(path).map_err(|e| e.to_string())
}

fn collect_cfg(app: &dyn SecretApp, s: u64) -> CollectConfig {
    CollectConfig {
        traces_per_secret: (240 / app.n_secrets()).clamp(6, 24),
        window_ns: app.window_ns().min(400_000_000),
        interval_ns: 1_000_000,
        pool: 10,
        seed: s,
        per_secret_noise: false,
    }
}

fn offline(opts: &HashMap<String, String>) -> Result<(), String> {
    let s = seed(opts)?;
    let arch = arch(opts)?;
    let app = app(opts, s)?;
    let out = opts.get("out").ok_or("missing --out")?;
    let thorough = opts.contains_key("thorough");

    let (mut host, vm) = template(arch, s)?;
    eprintln!("profiling {} on {} ...", app.name(), arch);
    let cfg = AegisConfig::builder()
        .warmup(WarmupConfig {
            probe_ns: if thorough { 8_000_000 } else { 3_000_000 },
            passes: if thorough { 5 } else { 3 },
            ..WarmupConfig::default()
        })
        .rank(RankConfig {
            reps_per_secret: if thorough { 4 } else { 2 },
            window_ns: 80_000_000,
            interval_ns: 10_000_000,
            seed: s,
        })
        .fuzzer(FuzzerConfig {
            candidates_per_event: if thorough { 400 } else { 150 },
            confirm_reps: 10,
            seed: s,
            ..FuzzerConfig::default()
        })
        .fuzz_top_events(if thorough { 24 } else { 10 })
        .isa_seed(s)
        .build()
        .map_err(|e| e.to_string())?;
    let plan =
        AegisPipeline::offline(&mut host, vm, 0, app.as_ref(), &cfg).map_err(|e| e.to_string())?;
    plan.save(out).map_err(|e| e.to_string())?;
    println!(
        "plan written to {out}: {} vulnerable events, {} covering gadgets",
        plan.vulnerable_events.len(),
        plan.covering.len()
    );
    Ok(())
}

fn inspect(opts: &HashMap<String, String>) -> Result<(), String> {
    let plan = load_plan(opts)?;
    println!("vulnerable events: {}", plan.vulnerable_events.len());
    println!("top-ranked events by mutual information:");
    for r in plan.rankings.iter().take(10) {
        println!("  {:<44} {:.3} bits", r.name, r.mi_bits);
    }
    println!(
        "covering set: {} gadgets over {} events",
        plan.covering.len(),
        plan.covered_events()
    );
    for cg in &plan.covering {
        println!("  {}  covers {} events", cg.gadget, cg.covers.len());
    }
    println!(
        "stack: {} gadgets, {:.1} µops per execution",
        plan.stack.len(),
        plan.stack.unit_uops()
    );
    println!(
        "fuzzing: {} gadgets tested at {:.0}/s; {} usable instructions",
        plan.fuzz_report.gadgets_tested,
        plan.fuzz_report.throughput_per_second(),
        plan.fuzz_report.usable_instructions
    );
    Ok(())
}

fn evaluate(opts: &HashMap<String, String>) -> Result<(), String> {
    let s = seed(opts)?;
    let arch = arch(opts)?;
    let app = app(opts, s)?;
    let plan = load_plan(opts)?;
    let mech = mechanism(opts)?;
    let (mut host, vm) = template(arch, s)?;
    let core = host.core_of(vm, 0).map_err(|e| e.to_string())?;
    let events = host.core(core).catalog().attack_events().to_vec();
    let cfg = collect_cfg(app.as_ref(), s);

    eprintln!("training the attacker on clean traces ...");
    let clean = Collector::for_traces(cfg)
        .dataset(&mut host, vm, 0, app.as_ref(), &events, None)
        .map_err(|e| e.to_string())?;
    let attacker = ClassifierAttack::train(&clean, TrainConfig::default(), s);
    println!(
        "clean attack accuracy:    {:6.2}%  (random guess {:.2}%)",
        attacker.curve.final_val_acc() * 100.0,
        100.0 / app.n_secrets() as f64
    );

    let deployment = DefenseDeployment::new(&plan, mech);
    let mut victim = cfg;
    victim.seed = s ^ 0xc11;
    let defended = Collector::for_traces(victim)
        .dataset(&mut host, vm, 0, app.as_ref(), &events, Some(&deployment))
        .map_err(|e| e.to_string())?;
    println!(
        "defended attack accuracy: {:6.2}%  under {}",
        attacker.accuracy(&defended) * 100.0,
        deployment.mechanism.label()
    );
    Ok(())
}

fn overhead(opts: &HashMap<String, String>) -> Result<(), String> {
    let s = seed(opts)?;
    let arch = arch(opts)?;
    let app = app(opts, s)?;
    let plan = load_plan(opts)?;
    let mech = mechanism(opts)?;
    let (mut host, vm) = template(arch, s)?;
    let deployment = DefenseDeployment::new(&plan, mech);

    let runs = 8;
    let mut rng = StdRng::seed_from_u64(s ^ 0x0f0f);
    let mut base = (0.0f64, 0.0f64);
    let mut def = (0.0f64, 0.0f64);
    for i in 0..runs {
        let plan_run = app.sample_plan(i % app.n_secrets(), &mut rng);
        let b = measure_app_run(&mut host, vm, 0, plan_run.clone(), None, i as u64)
            .map_err(|e| e.to_string())?;
        let d = measure_app_run(&mut host, vm, 0, plan_run, Some(&deployment), i as u64)
            .map_err(|e| e.to_string())?;
        base.0 += b.latency_ns as f64 / runs as f64;
        base.1 += b.cpu_usage / runs as f64;
        def.0 += d.latency_ns as f64 / runs as f64;
        def.1 += d.cpu_usage / runs as f64;
    }
    println!(
        "baseline:  latency {:9.2} ms, cpu {:5.2}%",
        base.0 / 1e6,
        base.1 * 100.0
    );
    println!(
        "defended:  latency {:9.2} ms, cpu {:5.2}%",
        def.0 / 1e6,
        def.1 * 100.0
    );
    println!(
        "overhead:  latency {:+.2}%, cpu {:+.2}%  under {}",
        (def.0 / base.0 - 1.0) * 100.0,
        (def.1 / base.1 - 1.0) * 100.0,
        deployment.mechanism.label()
    );
    Ok(())
}
