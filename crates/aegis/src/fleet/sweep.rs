//! The fleet robustness sweep: a (placement policy × storm seed) grid
//! of whole-fleet chaos runs, persisted through the columnar store with
//! the same checkpoint-resume machinery as the defense sweep.
//!
//! Every cell builds its *own* fleet inside the worker — fleets are
//! single-threaded state machines — under an **explicit** fault plan
//! `{seed: storm_seed, host_crash, host_degrade}`: cell physics never
//! depends on the ambient `AEGIS_FAULTS` plan, which governs only the
//! outer checkpoint/kill loop. Cell seeds are content-derived from
//! `(policy, storm_seed)`, so the grid is bit-identical at any worker
//! count and a killed run resumes to bit-identical cells.

use super::placement::{FleetTopology, PlacementPolicy};
use super::{FleetConfig, FleetSupervisor, TenantStatus};
use crate::error::AegisError;
use crate::plan::DefensePlan;
use crate::service::ServiceConfig;
use aegis_faults::{self as faults, FaultPlan};
use aegis_microarch::MicroArch;
use aegis_obs as obs;
use aegis_par::{
    derive_seed, fingerprint, ArtifactCache, ArtifactKey, Checkpoint, ColumnFrame, ColumnSchema,
    Columnar, Executor, FrameError, FrameReader,
};
use aegis_microarch::OriginFilter;
use aegis_sev::{LaneGuest, PlanSource};
use aegis_workloads::SecretApp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Seed stream tags for cell-seed derivation (fleet family, 0x30s).
const STREAM_FLEET_POLICY: u64 = 0x33;
const STREAM_FLEET_STORM: u64 = 0x34;
const STREAM_FLEET_PROBE: u64 = 0x35;

/// Shape of the post-storm attacker probe every cell runs through the
/// lane-batched recorder: replicas per probe and the recording window.
const XT_PROBE_LANES: usize = 4;
const XT_PROBE_INTERVAL_NS: u64 = 1_000_000;
const XT_PROBE_WINDOW_NS: u64 = 4_000_000;

/// The fleet sweep grid: every policy crossed with every storm seed.
#[derive(Debug, Clone)]
pub struct FleetSweepConfig {
    /// Placement policies to sweep (rows).
    pub policies: Vec<PlacementPolicy>,
    /// Storm seeds to sweep (columns) — each seeds an independent
    /// chaos schedule.
    pub storm_seeds: Vec<u64>,
    /// Shape of every cell's fleet.
    pub topology: FleetTopology,
    /// Tenants per cell.
    pub tenants: usize,
    /// Storm steps per cell.
    pub steps: u64,
    /// Fleet time per storm step.
    pub step_ns: u64,
    /// Per-host, per-step crash probability.
    pub host_crash: f64,
    /// Per-host, per-step degrade probability.
    pub host_degrade: f64,
    /// Service-plane template for every host (its `ledger_dir` is
    /// cleared per cell: concurrent cells reuse tenant names and must
    /// not share one ε store).
    pub service: ServiceConfig,
    /// Microarchitecture of every host.
    pub arch: MicroArch,
    /// Sweep-wide base seed (cell seeds derive from it and the cell's
    /// content).
    pub seed: u64,
}

/// One completed fleet cell: the final tally of a whole storm run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetCellOutcome {
    /// Placement policy of this cell.
    pub policy: PlacementPolicy,
    /// Storm seed of this cell.
    pub storm_seed: u64,
    /// Tenants still protected at shutdown.
    pub protected: u64,
    /// Tenants that spent their ε budget (latched).
    pub exhausted: u64,
    /// Tenants latched terminal by the supervisor.
    pub failed: u64,
    /// Tenants quarantined on a torn ε record.
    pub quarantined: u64,
    /// Tenants stranded without surviving capacity.
    pub stranded: u64,
    /// Sessions evacuated off crashed hosts.
    pub evacuations: u64,
    /// Hosts the storm crashed.
    pub crashes: u64,
    /// Host-degrade events absorbed.
    pub degrades: u64,
    /// Total ε the fleet's tenants drew.
    pub epsilon_spent: f64,
    /// Post-storm attacker probe: the mean pair-aggregate count the
    /// cross-tenant attacker observes on tenant 0's anchor pair,
    /// measured through the lane-batched recorder
    /// ([`super::FleetSupervisor::record_host_trace_batch`]). Zero when
    /// tenant 0 ended the storm without a home, or latched fail-closed
    /// where it died.
    pub xt_probe: f64,
}

/// The completed grid, in (policy-major, storm-seed-minor) unit order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSweepOutcome {
    /// One outcome per grid cell.
    pub cells: Vec<FleetCellOutcome>,
}

impl FleetSweepOutcome {
    /// The cells of one policy, in storm-seed order.
    pub fn cells_for(&self, policy: PlacementPolicy) -> Vec<&FleetCellOutcome> {
        self.cells.iter().filter(|c| c.policy == policy).collect()
    }
}

/// Checkpointable column image of a fully evaluated cell prefix, in
/// unit order.
struct FleetCellLog {
    policy_tags: Vec<u64>,
    storm_seeds: Vec<u64>,
    protected: Vec<u64>,
    exhausted: Vec<u64>,
    failed: Vec<u64>,
    quarantined: Vec<u64>,
    stranded: Vec<u64>,
    evacuations: Vec<u64>,
    crashes: Vec<u64>,
    degrades: Vec<u64>,
    epsilon_spent: Vec<f64>,
    xt_probes: Vec<f64>,
}

impl FleetCellLog {
    fn of(results: &[Result<FleetCellOutcome, AegisError>]) -> FleetCellLog {
        let mut log = FleetCellLog {
            policy_tags: Vec::new(),
            storm_seeds: Vec::new(),
            protected: Vec::new(),
            exhausted: Vec::new(),
            failed: Vec::new(),
            quarantined: Vec::new(),
            stranded: Vec::new(),
            evacuations: Vec::new(),
            crashes: Vec::new(),
            degrades: Vec::new(),
            epsilon_spent: Vec::new(),
            xt_probes: Vec::new(),
        };
        for c in results.iter().flatten() {
            log.policy_tags.push(c.policy.tag());
            log.storm_seeds.push(c.storm_seed);
            log.protected.push(c.protected);
            log.exhausted.push(c.exhausted);
            log.failed.push(c.failed);
            log.quarantined.push(c.quarantined);
            log.stranded.push(c.stranded);
            log.evacuations.push(c.evacuations);
            log.crashes.push(c.crashes);
            log.degrades.push(c.degrades);
            log.epsilon_spent.push(c.epsilon_spent);
            log.xt_probes.push(c.xt_probe);
        }
        log
    }

    fn len(&self) -> usize {
        self.policy_tags.len()
    }

    fn into_results(self) -> impl Iterator<Item = Result<FleetCellOutcome, AegisError>> {
        (0..self.len())
            .map(move |i| {
                Ok(FleetCellOutcome {
                    policy: PlacementPolicy::ALL[self.policy_tags[i] as usize],
                    storm_seed: self.storm_seeds[i],
                    protected: self.protected[i],
                    exhausted: self.exhausted[i],
                    failed: self.failed[i],
                    quarantined: self.quarantined[i],
                    stranded: self.stranded[i],
                    evacuations: self.evacuations[i],
                    crashes: self.crashes[i],
                    degrades: self.degrades[i],
                    epsilon_spent: self.epsilon_spent[i],
                    xt_probe: self.xt_probes[i],
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
    }
}

impl Columnar for FleetCellLog {
    fn schema() -> ColumnSchema {
        ColumnSchema::new("aegis/fleet-cells", 2)
    }

    fn encode_columns(&self, frame: &mut ColumnFrame) {
        frame.push_u64(self.policy_tags.clone());
        frame.push_u64(self.storm_seeds.clone());
        frame.push_u64(self.protected.clone());
        frame.push_u64(self.exhausted.clone());
        frame.push_u64(self.failed.clone());
        frame.push_u64(self.quarantined.clone());
        frame.push_u64(self.stranded.clone());
        frame.push_u64(self.evacuations.clone());
        frame.push_u64(self.crashes.clone());
        frame.push_u64(self.degrades.clone());
        frame.push_f64(self.epsilon_spent.clone());
        frame.push_f64(self.xt_probes.clone());
    }

    fn decode_columns(reader: &mut FrameReader) -> Result<Self, FrameError> {
        let log = FleetCellLog {
            policy_tags: reader.u64s()?,
            storm_seeds: reader.u64s()?,
            protected: reader.u64s()?,
            exhausted: reader.u64s()?,
            failed: reader.u64s()?,
            quarantined: reader.u64s()?,
            stranded: reader.u64s()?,
            evacuations: reader.u64s()?,
            crashes: reader.u64s()?,
            degrades: reader.u64s()?,
            epsilon_spent: reader.f64s()?,
            xt_probes: reader.f64s()?,
        };
        let n = log.policy_tags.len();
        if log.storm_seeds.len() != n
            || log.protected.len() != n
            || log.exhausted.len() != n
            || log.failed.len() != n
            || log.quarantined.len() != n
            || log.stranded.len() != n
            || log.evacuations.len() != n
            || log.crashes.len() != n
            || log.degrades.len() != n
            || log.epsilon_spent.len() != n
            || log.xt_probes.len() != n
            || log.policy_tags.iter().any(|&t| t as usize >= PlacementPolicy::ALL.len())
        {
            return Err(FrameError::new("fleet-cells: misaligned or invalid columns"));
        }
        Ok(log)
    }
}

/// A stable fingerprint of the sweep-wide settings, folded into the
/// checkpoint key so a changed grid never resumes a stale checkpoint.
fn fleet_sweep_fingerprint(cfg: &FleetSweepConfig) -> u64 {
    fingerprint(&(
        (
            cfg.policies.iter().map(PlacementPolicy::tag).collect::<Vec<u64>>(),
            &cfg.storm_seeds,
            cfg.topology,
            cfg.tenants as u64,
        ),
        (cfg.steps, cfg.step_ns, cfg.host_crash.to_bits(), cfg.host_degrade.to_bits()),
        (&cfg.service.aegis, cfg.service.default_budget.to_bits(), cfg.seed),
    ))
}

/// The seed of one grid cell: a pure function of the sweep seed and the
/// cell's content — independent of grid position and worker assignment.
fn cell_seed(cfg: &FleetSweepConfig, policy: PlacementPolicy, storm_seed: u64) -> u64 {
    derive_seed(
        derive_seed(cfg.seed, STREAM_FLEET_POLICY, policy.tag()),
        STREAM_FLEET_STORM,
        storm_seed,
    )
}

/// Post-storm attacker probe: what the cross-tenant attacker's
/// pair-aggregate view of tenant 0's anchor pair counts once the storm
/// settles, recorded through the lane-batched path — [`XT_PROBE_LANES`]
/// replicas, each running an independently drawn secret of `app` on the
/// anchor's vCPU, in one [`record_host_trace_batch`] call instead of
/// per-replica host forks. A fail-closed (crashed) home reads all-zero
/// counters by construction, so the probe doubles as a cheap cell-level
/// check that latched hosts leak nothing.
///
/// [`record_host_trace_batch`]: super::FleetSupervisor::record_host_trace_batch
fn xt_probe(fleet: &FleetSupervisor, app: &dyn SecretApp, seed: u64) -> f64 {
    let Some((h, core)) = fleet.tenant_home(0) else {
        return 0.0;
    };
    let sibling = FleetTopology::sibling_of(core);
    let events = fleet.host(h).core(core).catalog().attack_events();
    let lanes: Vec<Vec<LaneGuest>> = (0..XT_PROBE_LANES)
        .map(|l| {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, STREAM_FLEET_PROBE, l as u64));
            let secret = rng.gen_range(0..app.n_secrets());
            let plan = app.sample_plan(secret, &mut rng);
            vec![
                LaneGuest {
                    app: Some(Box::new(PlanSource::new(plan))),
                    injector: None,
                },
                LaneGuest::default(),
            ]
        })
        .collect();
    match fleet.record_host_trace_batch(
        h,
        &[core, sibling],
        lanes,
        &events,
        OriginFilter::Any,
        XT_PROBE_INTERVAL_NS,
        XT_PROBE_WINDOW_NS,
    ) {
        Ok(traces) => {
            let total: f64 = traces
                .iter()
                .flatten()
                .map(|t| t.totals().iter().sum::<f64>())
                .sum();
            total / XT_PROBE_LANES as f64
        }
        Err(_) => 0.0,
    }
}

/// Runs one grid cell: deploy a fresh fleet, drive the storm, probe the
/// surviving attack surface, shut down, tally.
fn run_cell(
    cfg: &FleetSweepConfig,
    policy: PlacementPolicy,
    storm_seed: u64,
    plan: &DefensePlan,
    app: &dyn SecretApp,
) -> Result<FleetCellOutcome, AegisError> {
    let storm = FaultPlan {
        seed: storm_seed,
        host_crash: cfg.host_crash,
        host_degrade: cfg.host_degrade,
        ..FaultPlan::none()
    };
    let mut service = cfg.service.clone();
    service.aegis.faults = Some(storm);
    // Concurrent cells reuse tenant names; each fleet keeps its ε
    // accounts in memory instead of a shared store.
    service.ledger_dir = None;
    let mut fleet_cfg = FleetConfig::new(service, cfg.topology, policy, cfg.tenants);
    fleet_cfg.arch = cfg.arch;
    let mut fleet =
        FleetSupervisor::deploy(fleet_cfg.seed(cell_seed(cfg, policy, storm_seed)), plan, app)?;
    fleet.run_storm(cfg.steps, cfg.step_ns);
    let probe = xt_probe(&fleet, app, cell_seed(cfg, policy, storm_seed));
    let report = fleet.shutdown();
    let mut cell = FleetCellOutcome {
        policy,
        storm_seed,
        protected: 0,
        exhausted: 0,
        failed: 0,
        quarantined: 0,
        stranded: 0,
        evacuations: report.evacuations,
        crashes: report.crashes,
        degrades: report.degrades,
        epsilon_spent: 0.0,
        xt_probe: probe,
    };
    for t in &report.tenants {
        match t.status {
            TenantStatus::Protected => cell.protected += 1,
            TenantStatus::Exhausted => cell.exhausted += 1,
            TenantStatus::Failed => cell.failed += 1,
            TenantStatus::Quarantined => cell.quarantined += 1,
            TenantStatus::Stranded => cell.stranded += 1,
        }
        cell.epsilon_spent += t.epsilon_spent;
    }
    Ok(cell)
}

/// Evaluates the whole (policy × storm seed) grid, sharded over the
/// worker pool, checkpointing through `cache` under an active ambient
/// fault plan exactly like the defense sweep: worker-count-sized
/// chunks, a [`Checkpoint`]`<FleetCellLog>` persisted after each, and
/// the plan's `sweep_kill_after` site aborting a first run so the
/// resumed one completes bit-identically.
///
/// # Errors
///
/// [`AegisError::Config`] for an empty grid or a cell whose tenant
/// population exceeds its policy's capacity; any cell error is
/// propagated.
pub fn fleet_sweep(
    cache: &ArtifactCache,
    cfg: &FleetSweepConfig,
    plan: &DefensePlan,
    app: &dyn SecretApp,
) -> Result<FleetSweepOutcome, AegisError> {
    let mut span = obs::span("fleet.sweep");
    if cfg.policies.is_empty() || cfg.storm_seeds.is_empty() {
        return Err(AegisError::config("fleet-sweep", "empty policy or seed grid"));
    }
    let units: Vec<(PlacementPolicy, u64)> = cfg
        .policies
        .iter()
        .flat_map(|&p| cfg.storm_seeds.iter().map(move |&s| (p, s)))
        .collect();
    span.set_sim_ns(cfg.steps * cfg.step_ns * units.len() as u64);
    let ckpt_key = ArtifactKey::of("fleet-sweep-ckpt", &fleet_sweep_fingerprint(cfg));
    let ambient = cache.fault_plan();
    let checkpointing = ambient.is_active();
    let mut results: Vec<Result<FleetCellOutcome, AegisError>> = Vec::with_capacity(units.len());
    let mut resume_from = 0usize;
    if checkpointing {
        if let Some(ck) = cache.get_col::<Checkpoint<FleetCellLog>>(&ckpt_key) {
            let completed = ck.completed as usize;
            if ck.payload.len() == completed && completed <= units.len() {
                resume_from = completed;
                results.extend(ck.payload.into_results());
                obs::counter_add("fleet.sweep.ckpt_resumed", 1.0);
                faults::report("fleet", "sweep_resume", &[("completed", resume_from as u64)]);
            }
        }
    }
    let kill_at = ambient.sweep_kill_after as usize;
    let kill_armed = checkpointing && kill_at > 0 && resume_from < kill_at;
    let chunk_len = if checkpointing {
        Executor::from_config().threads().max(1)
    } else {
        units.len()
    };
    let mut done = resume_from;
    while done < units.len() {
        let end = (done + chunk_len).min(units.len());
        let chunk: Vec<Result<FleetCellOutcome, AegisError>> = Executor::from_config().map_with(
            units[done..end].to_vec(),
            |_worker| (),
            |(), _unit, (policy, storm_seed)| run_cell(cfg, policy, storm_seed, plan, app),
        );
        let failed = chunk.iter().any(Result::is_err);
        results.extend(chunk);
        if failed {
            break;
        }
        done = end;
        if checkpointing {
            let _ = cache.put_col(
                &ckpt_key,
                &Checkpoint::new(done as u64, FleetCellLog::of(&results)),
            );
            if kill_armed && done >= kill_at {
                faults::report("fleet", "sweep_kill", &[("completed", done as u64)]);
                panic!("aegis-faults: injected sweep kill after {done} completed fleet cells");
            }
        }
    }
    let cells = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    obs::counter_add("fleet.sweep.cells", cells.len() as f64);
    Ok(FleetSweepOutcome { cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_seeds_are_content_derived() {
        let cfg = FleetSweepConfig {
            policies: vec![PlacementPolicy::Packed, PlacementPolicy::Spread],
            storm_seeds: vec![1, 2],
            topology: FleetTopology {
                hosts: 2,
                sockets_per_host: 1,
                pairs_per_socket: 2,
            },
            tenants: 2,
            steps: 4,
            step_ns: 2_000_000,
            host_crash: 0.1,
            host_degrade: 0.1,
            service: ServiceConfig::new(crate::AegisConfig::default()),
            arch: MicroArch::AmdEpyc7252,
            seed: 9,
        };
        assert_eq!(
            cell_seed(&cfg, PlacementPolicy::Packed, 1),
            cell_seed(&cfg, PlacementPolicy::Packed, 1)
        );
        assert_ne!(
            cell_seed(&cfg, PlacementPolicy::Packed, 1),
            cell_seed(&cfg, PlacementPolicy::Spread, 1)
        );
        assert_ne!(
            cell_seed(&cfg, PlacementPolicy::Packed, 1),
            cell_seed(&cfg, PlacementPolicy::Packed, 2)
        );
    }

    #[test]
    fn log_round_trips_through_results() {
        let cell = FleetCellOutcome {
            policy: PlacementPolicy::SmtOff,
            storm_seed: 3,
            protected: 5,
            exhausted: 1,
            failed: 0,
            quarantined: 1,
            stranded: 0,
            evacuations: 2,
            crashes: 1,
            degrades: 4,
            epsilon_spent: 6.5,
            xt_probe: 123.5,
        };
        let log = FleetCellLog::of(&[Ok(cell)]);
        let back: Vec<_> = log.into_results().map(Result::unwrap).collect();
        assert_eq!(back, vec![cell]);
    }
}
