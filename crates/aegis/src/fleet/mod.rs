//! The multi-tenant fleet plane: a deterministic sharded fleet of
//! simulated hosts, each running the service plane for its tenants,
//! under one fleet supervisor with explicit failure domains.
//!
//! The paper's threat model is a cloud host running many co-located
//! SEV guests; this module is the "cloud" above the single host:
//!
//! - a [`Scheduler`] maps tenant VMs onto sockets and SMT core pairs
//!   under a pluggable [`PlacementPolicy`] — the production tenancy
//!   ground rules (SMT off, core-pair exclusivity, dense packing,
//!   spreading) as first-class, testable knobs;
//! - every host is its own failure domain: a `(Host, ServicePlane)`
//!   shard whose health aggregates from the service `status()` plane;
//! - the chaos-storm driver schedules seeded host-crash and
//!   host-degraded bursts across shards (the `fleet.host_crash` /
//!   `fleet.host_degrade` fault sites), and crashed hosts trigger
//!   fail-closed *evacuation*: drain (injectors detach, every source
//!   core latches), re-place on surviving capacity, and an
//!   epoch-reseeded redeploy on the destination via the same
//!   `derive_seed` lineage a watchdog restart would have used. The
//!   tenant's ε account is carried between hosts through the artifact
//!   store — the destination trusts the persisted record, and a tenant
//!   whose record reads torn is *quarantined*, never re-placed;
//! - a cross-tenant honest-but-curious attacker
//!   ([`cross_tenant_accuracy`]) measures what sibling co-residency
//!   leaks under each policy, and [`fleet_sweep`] persists
//!   (policy × storm-seed) grid cells through the columnar store with
//!   checkpoint-resume.
//!
//! Everything is a pure function of `(config, seeds, fault plan)`:
//! fleet runs replay bit-identically at any `aegis-par` worker count,
//! and a killed sweep resumes to bit-identical cells.

mod attack;
mod placement;
mod sweep;

pub use attack::{
    cross_tenant_accuracy, cross_tenant_accuracy_scalar, policy_attack_table, CrossTenantConfig,
    PolicyAttackCell,
};
pub use placement::{FleetTopology, Placement, PlacementPolicy, Scheduler};
pub use sweep::{fleet_sweep, FleetCellOutcome, FleetSweepConfig, FleetSweepOutcome};

use crate::error::AegisError;
use crate::plan::DefensePlan;
use crate::service::{LedgerSlot, ServiceConfig, ServicePlane, Status, TenantLedgers};
use aegis_faults::{self as faults, site, FaultPlan, FaultStream};
use aegis_microarch::MicroArch;
use aegis_obs as obs;
use aegis_par::{derive_seed, ArtifactCache};
use aegis_sev::{Host, PlanSource, SevMode};
use aegis_workloads::{SecretApp, WorkloadPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// Seed stream tags separating the fleet's independent RNG consumers
/// (see [`derive_seed`]). Disjoint from the service streams (0x20–0x21)
/// and the sweep streams (0x10–0x14).
const STREAM_FLEET_HOST: u64 = 0x30;
const STREAM_FLEET_PLANE: u64 = 0x31;
const STREAM_FLEET_APP: u64 = 0x32;

/// Fleet-wide configuration: the per-host service template plus the
/// fleet's shape, placement policy, and tenant population.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Template for every host's service plane. Its `seed` is replaced
    /// per host by a derived stream; its `ledger_dir`/`ledger_scope`
    /// name the fleet-wide tenant ε store.
    pub service: ServiceConfig,
    /// Hosts, sockets, and SMT pairs.
    pub topology: FleetTopology,
    /// How tenants map onto pairs.
    pub policy: PlacementPolicy,
    /// Tenant VMs to place (named `t000`, `t001`, …).
    pub tenants: usize,
    /// Microarchitecture of every simulated host.
    pub arch: MicroArch,
    /// Master fleet seed; host, plane, and workload streams derive
    /// from it.
    pub seed: u64,
}

impl FleetConfig {
    /// A fleet configuration with the default microarchitecture and
    /// seed 0.
    pub fn new(
        service: ServiceConfig,
        topology: FleetTopology,
        policy: PlacementPolicy,
        tenants: usize,
    ) -> FleetConfig {
        FleetConfig {
            service,
            topology,
            policy,
            tenants,
            arch: MicroArch::AmdEpyc7252,
            seed: 0,
        }
    }

    /// Sets the master fleet seed.
    pub fn seed(mut self, seed: u64) -> FleetConfig {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<(), AegisError> {
        self.service.validate()?;
        self.topology.validate()?;
        if self.tenants == 0 {
            return Err(AegisError::config("tenants", "must be nonzero"));
        }
        let capacity = self.policy.capacity_per_host(&self.topology) * self.topology.hosts;
        if self.tenants > capacity {
            return Err(AegisError::config(
                "tenants",
                format!(
                    "{} tenants exceed the {} slots {} offers on this topology",
                    self.tenants,
                    capacity,
                    self.policy.label()
                ),
            ));
        }
        Ok(())
    }
}

/// Failure-domain state of one host shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostState {
    /// Up, every session healthy.
    Healthy,
    /// Up, but at least one session is degraded or mid-restart.
    Degraded,
    /// Crashed: frozen clock, every core latched, tenants evacuated.
    Crashed,
}

impl std::fmt::Display for HostState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HostState::Healthy => "healthy",
            HostState::Degraded => "degraded",
            HostState::Crashed => "crashed",
        })
    }
}

/// Where a tenant ended up, fleet-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantStatus {
    /// A live supervised session protects the tenant.
    Protected,
    /// ε budget spent; latched fail-closed wherever it last ran.
    Exhausted,
    /// Restart budget spent (or service refused); latched fail-closed.
    Failed,
    /// Its persisted ε record read torn during evacuation: never
    /// re-placed, no counters anywhere.
    Quarantined,
    /// No surviving capacity could take it after a crash: denied
    /// service (its old cores stay latched on the dead host).
    Stranded,
}

impl std::fmt::Display for TenantStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TenantStatus::Protected => "protected",
            TenantStatus::Exhausted => "exhausted",
            TenantStatus::Failed => "failed",
            TenantStatus::Quarantined => "quarantined",
            TenantStatus::Stranded => "stranded",
        })
    }
}

/// One tenant's final accounting in a [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantOutcome {
    /// Tenant name (`t000`, …).
    pub tenant: String,
    /// Fleet-wide status.
    pub status: TenantStatus,
    /// Current home host (the dead host for tenants that ended
    /// fail-closed there; `None` once quarantined or stranded).
    pub host: Option<usize>,
    /// Times this tenant was evacuated off a crashed host.
    pub evacuations: u32,
    /// Total ε drawn from this tenant's fleet-wide account.
    pub epsilon_spent: f64,
}

/// Aggregated health of one host shard, from the service plane's own
/// session statuses.
#[derive(Debug, Clone, PartialEq)]
pub struct HostHealth {
    /// Host index.
    pub host: usize,
    /// Failure-domain state.
    pub state: HostState,
    /// Sessions ever attached on this host.
    pub sessions: usize,
    /// Sessions per service status, in [`Status`] order.
    pub healthy: usize,
    /// See [`Status::Degraded`].
    pub degraded: usize,
    /// See [`Status::Restarting`].
    pub restarting: usize,
    /// See [`Status::Failed`].
    pub failed: usize,
    /// See [`Status::Exhausted`].
    pub exhausted: usize,
    /// See [`Status::Detached`].
    pub detached: usize,
}

/// Per-host health aggregation, from [`FleetSupervisor::health`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetHealth {
    /// One entry per host, in host order.
    pub hosts: Vec<HostHealth>,
}

/// The fleet's final accounting: per-tenant outcomes plus the storm
/// damage tally. `PartialEq` + serializable so replay tests compare
/// whole reports bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// The placement policy the fleet ran under.
    pub policy: String,
    /// Fleet sim-time advanced, nanoseconds.
    pub clock_ns: u64,
    /// Hosts crashed by the storm (or injected).
    pub crashes: u64,
    /// Host-degraded events absorbed.
    pub degrades: u64,
    /// Sessions drained off crashed hosts.
    pub evacuations: u64,
    /// Tenants quarantined on a torn ε record.
    pub quarantined: u64,
    /// Tenants stranded without surviving capacity.
    pub stranded: u64,
    /// Per-tenant outcomes, in tenant order.
    pub tenants: Vec<TenantOutcome>,
}

/// One scheduled storm event: at `step`, `host` crashes (or degrades).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StormHit {
    /// Storm step the event fires in.
    pub step: u64,
    /// Target host.
    pub host: usize,
    /// `true` = crash, `false` = degrade.
    pub crash: bool,
}

/// The seeded storm schedule as a pure function of
/// `(plan, hosts, steps)`: per-host [`FaultStream`]s on the
/// `fleet.host_crash` / `fleet.host_degrade` sites, drawn every step
/// for every host — including already-crashed ones, so the schedule
/// never depends on failure state and replays bit-identically.
/// [`FleetSupervisor::run_storm`] applies exactly this schedule (events
/// on crashed hosts are no-ops).
pub fn storm_schedule(plan: &FaultPlan, hosts: usize, steps: u64) -> Vec<StormHit> {
    if plan.host_crash <= 0.0 && plan.host_degrade <= 0.0 {
        return Vec::new();
    }
    let mut crash: Vec<FaultStream> = (0..hosts)
        .map(|h| FaultStream::new(plan, site::FLEET_HOST, h as u64))
        .collect();
    let mut degrade: Vec<FaultStream> = (0..hosts)
        .map(|h| FaultStream::new(plan, site::FLEET_STORM, h as u64))
        .collect();
    let mut out = Vec::new();
    for step in 0..steps {
        for h in 0..hosts {
            if crash[h].chance(plan.host_crash) {
                out.push(StormHit {
                    step,
                    host: h,
                    crash: true,
                });
            } else if degrade[h].chance(plan.host_degrade) {
                out.push(StormHit {
                    step,
                    host: h,
                    crash: false,
                });
            }
        }
    }
    out
}

/// One failure domain: a host and its resident service plane.
struct Shard {
    host: Host,
    plane: ServicePlane,
    crashed: bool,
    degrades: u64,
    crash_stream: Option<FaultStream>,
    degrade_stream: Option<FaultStream>,
}

/// One tenant's fleet-side record: identity, workload, and home.
struct TenantRecord {
    name: String,
    plan: WorkloadPlan,
    host: Option<usize>,
    core: Option<usize>,
    evacuations: u32,
    /// Terminal fleet-level override ([`TenantStatus::Quarantined`] /
    /// [`TenantStatus::Stranded`]); session-level terminal states read
    /// from the plane instead.
    flag: Option<TenantStatus>,
}

/// The fleet supervisor: owns every shard, the placement scheduler,
/// and the fleet-wide tenant ε accounts.
pub struct FleetSupervisor {
    cfg: FleetConfig,
    faults: FaultPlan,
    shards: Vec<Shard>,
    scheduler: Scheduler,
    ledgers: Rc<RefCell<TenantLedgers>>,
    tenants: Vec<TenantRecord>,
    clock_ns: u64,
    crashes: u64,
    evacuations: u64,
}

impl FleetSupervisor {
    /// Builds the fleet: one host + service plane per failure domain,
    /// then places and attaches every tenant under the policy. Tenants
    /// whose ledger refuses the first epoch register terminal,
    /// fail-closed, exactly as on a single host.
    ///
    /// # Errors
    ///
    /// [`AegisError::Config`] for an invalid configuration or a tenant
    /// population exceeding the policy's capacity;
    /// [`AegisError::Host`] if the substrate rejects a placement.
    pub fn deploy(
        cfg: FleetConfig,
        plan: &DefensePlan,
        app: &dyn SecretApp,
    ) -> Result<FleetSupervisor, AegisError> {
        cfg.validate()?;
        let faults = cfg.service.aegis.faults.unwrap_or_else(faults::plan);
        let store = cfg
            .service
            .ledger_dir
            .as_ref()
            .map(|dir| (ArtifactCache::with_faults(dir, faults), cfg.service.ledger_scope.clone()));
        let ledgers = Rc::new(RefCell::new(TenantLedgers::open(
            cfg.service.default_budget,
            store,
            faults,
        )));
        let mut shards = Vec::with_capacity(cfg.topology.hosts);
        for h in 0..cfg.topology.hosts {
            let host = Host::with_faults(
                cfg.arch,
                cfg.topology.cores_per_host(),
                derive_seed(cfg.seed, STREAM_FLEET_HOST, h as u64),
                faults,
            );
            let mut plane_cfg = cfg.service.clone();
            plane_cfg.seed = derive_seed(cfg.seed, STREAM_FLEET_PLANE, h as u64);
            let plane = ServicePlane::open(&host, plane_cfg, LedgerSlot::Shared(ledgers.clone()));
            let active = faults.is_active();
            shards.push(Shard {
                host,
                plane,
                crashed: false,
                degrades: 0,
                crash_stream: active
                    .then(|| FaultStream::new(&faults, site::FLEET_HOST, h as u64)),
                degrade_stream: active
                    .then(|| FaultStream::new(&faults, site::FLEET_STORM, h as u64)),
            });
        }
        let mut scheduler = Scheduler::new(cfg.topology, cfg.policy);
        let alive = vec![true; cfg.topology.hosts];
        let mut tenants = Vec::with_capacity(cfg.tenants);
        for t in 0..cfg.tenants {
            let name = format!("t{t:03}");
            let secret = t % app.n_secrets();
            let mut rng =
                StdRng::seed_from_u64(derive_seed(cfg.seed, STREAM_FLEET_APP, t as u64));
            let wplan = app.sample_plan(secret, &mut rng);
            let p = scheduler
                .place(t, &alive)
                .expect("capacity was validated against the policy");
            let shard = &mut shards[p.host];
            let vm = shard.host.launch_vm_pinned(&p.cores, SevMode::SevSnp)?;
            shard
                .host
                .attach_app(vm, 0, Box::new(PlanSource::new(wplan.clone())))?;
            match shard.plane.attach(&mut shard.host, vm, 0, plan, &name) {
                Ok(_) => {}
                // A refused first epoch (spent or poisoned account) is a
                // registered, latched, terminal session — the fleet
                // carries the tenant as fail-closed, not as an error.
                Err(AegisError::BudgetExhausted { .. }) | Err(AegisError::Service { .. }) => {}
                Err(err) => return Err(err),
            }
            tenants.push(TenantRecord {
                name,
                plan: wplan,
                host: Some(p.host),
                core: Some(p.cores[0]),
                evacuations: 0,
                flag: None,
            });
        }
        obs::counter_add("fleet.deploys", 1.0);
        obs::gauge_set("fleet.tenants", cfg.tenants as f64);
        Ok(FleetSupervisor {
            faults,
            cfg,
            shards,
            scheduler,
            ledgers,
            tenants,
            clock_ns: 0,
            crashes: 0,
            evacuations: 0,
        })
    }

    /// Advances fleet sim-time by `duration_ns`: every live shard runs
    /// its service plane (crashed hosts stay frozen). Shards are
    /// independent between fleet events, so host order is irrelevant to
    /// the outcome — but it is fixed anyway.
    pub fn run(&mut self, duration_ns: u64) {
        for shard in &mut self.shards {
            if !shard.crashed {
                shard.plane.run(&mut shard.host, duration_ns);
            }
        }
        self.clock_ns += duration_ns;
    }

    /// Drives a seeded chaos storm: `steps` rounds of per-host fault
    /// draws (the schedule of [`storm_schedule`]) each followed by
    /// `step_ns` of fleet time. Crash events crash-and-evacuate the
    /// host; degrade events bounce every session on it through the
    /// watchdog. Inert without `host_crash`/`host_degrade` in the plan.
    pub fn run_storm(&mut self, steps: u64, step_ns: u64) {
        let _span = obs::span("fleet.storm");
        for _ in 0..steps {
            for h in 0..self.shards.len() {
                // Every host draws every step — crashed ones too — so
                // the schedule is independent of failure state.
                let crash = self.shards[h]
                    .crash_stream
                    .as_mut()
                    .is_some_and(|s| s.chance(self.faults.host_crash));
                let degrade = !crash
                    && self.shards[h]
                        .degrade_stream
                        .as_mut()
                        .is_some_and(|s| s.chance(self.faults.host_degrade));
                if crash {
                    self.inject_host_crash(h);
                } else if degrade {
                    self.inject_host_degrade(h);
                }
            }
            self.run(step_ns);
        }
    }

    /// Crashes host `h`: the shard freezes, *every* core on it latches
    /// fail-closed (a dead host never hands out clean counters), its
    /// live sessions drain, and each drained tenant is evacuated —
    /// ledger re-read from the store (torn ⇒ quarantine), re-placed on
    /// surviving capacity (none ⇒ stranded), and adopted by the
    /// destination plane under a fresh latched epoch. No-op on an
    /// already-crashed host.
    pub fn inject_host_crash(&mut self, h: usize) {
        if self.shards[h].crashed {
            return;
        }
        self.shards[h].crashed = true;
        self.crashes += 1;
        obs::counter_add("fleet.host_crashes", 1.0);
        faults::report("fleet", "host_crash", &[("host", h as u64)]);
        let records = {
            let shard = &mut self.shards[h];
            let records = shard.plane.evacuate_all(&mut shard.host);
            for c in 0..shard.host.n_cores() {
                shard.host.set_core_fail_closed(c, true);
            }
            records
        };
        for rec in records {
            self.evacuate(rec);
        }
    }

    /// Degrades host `h`: every running session bounces through the
    /// watchdog (detach, latch, backoff, epoch-reseeded redeploy) — the
    /// daemons on a degraded host cannot be trusted. No-op on a crashed
    /// host.
    pub fn inject_host_degrade(&mut self, h: usize) {
        if self.shards[h].crashed {
            return;
        }
        self.shards[h].degrades += 1;
        obs::counter_add("fleet.host_degrades", 1.0);
        faults::report("fleet", "host_degrade", &[("host", h as u64)]);
        let shard = &mut self.shards[h];
        shard.plane.force_restart_all(&mut shard.host);
    }

    /// One evacuated session lands somewhere safe — or nowhere, fail-
    /// closed.
    fn evacuate(&mut self, rec: crate::service::EvacRecord) {
        let t = self
            .tenants
            .iter()
            .position(|r| r.name == rec.tenant)
            .expect("evacuated sessions name fleet tenants");
        self.tenants[t].evacuations += 1;
        self.evacuations += 1;
        // The ε carry: the destination trusts the *store*, not whatever
        // the crashed host last held in memory.
        let poisoned = self.ledgers.borrow_mut().reopen(&rec.tenant);
        if poisoned {
            self.tenants[t].flag = Some(TenantStatus::Quarantined);
            self.tenants[t].host = None;
            self.tenants[t].core = None;
            obs::counter_add("fleet.quarantined", 1.0);
            faults::report("fleet", "quarantine", &[("tenant", t as u64)]);
            return;
        }
        let alive: Vec<bool> = self.shards.iter().map(|s| !s.crashed).collect();
        let Some(p) = self.scheduler.place(t, &alive) else {
            self.tenants[t].flag = Some(TenantStatus::Stranded);
            self.tenants[t].host = None;
            self.tenants[t].core = None;
            obs::counter_add("fleet.stranded", 1.0);
            return;
        };
        let wplan = self.tenants[t].plan.clone();
        let shard = &mut self.shards[p.host];
        let vm = shard
            .host
            .launch_vm_pinned(&p.cores, SevMode::SevSnp)
            .expect("the scheduler placed on free cores");
        shard
            .host
            .attach_app(vm, 0, Box::new(PlanSource::new(wplan)))
            .expect("fresh vm ids are valid");
        // A refused adoption epoch leaves the session registered
        // terminal and latched on the destination — fail-closed, and
        // visible in the tenant's outcome.
        let _ = shard.plane.adopt(&mut shard.host, vm, 0, rec);
        self.tenants[t].host = Some(p.host);
        self.tenants[t].core = Some(p.cores[0]);
    }

    /// Per-host health, aggregated from each shard's service plane.
    pub fn health(&self) -> FleetHealth {
        let hosts = self
            .shards
            .iter()
            .enumerate()
            .map(|(h, shard)| {
                let report = shard.plane.health(&shard.host);
                let mut hh = HostHealth {
                    host: h,
                    state: HostState::Healthy,
                    sessions: report.sessions.len(),
                    healthy: 0,
                    degraded: 0,
                    restarting: 0,
                    failed: 0,
                    exhausted: 0,
                    detached: 0,
                };
                for s in &report.sessions {
                    match s.status {
                        Status::Healthy => hh.healthy += 1,
                        Status::Degraded => hh.degraded += 1,
                        Status::Restarting => hh.restarting += 1,
                        Status::Failed => hh.failed += 1,
                        Status::Exhausted => hh.exhausted += 1,
                        Status::Detached => hh.detached += 1,
                    }
                }
                hh.state = if shard.crashed {
                    HostState::Crashed
                } else if hh.degraded + hh.restarting > 0 {
                    HostState::Degraded
                } else {
                    HostState::Healthy
                };
                hh
            })
            .collect();
        FleetHealth { hosts }
    }

    /// The fleet's current accounting (see [`FleetReport`]).
    pub fn report(&self) -> FleetReport {
        let mut quarantined = 0;
        let mut stranded = 0;
        let tenants = self
            .tenants
            .iter()
            .map(|r| {
                let status = r.flag.unwrap_or_else(|| self.tenant_status(r));
                match status {
                    TenantStatus::Quarantined => quarantined += 1,
                    TenantStatus::Stranded => stranded += 1,
                    _ => {}
                }
                TenantOutcome {
                    tenant: r.name.clone(),
                    status,
                    host: r.host,
                    evacuations: r.evacuations,
                    epsilon_spent: self.ledgers.borrow().spent(&r.name),
                }
            })
            .collect();
        FleetReport {
            policy: self.cfg.policy.label().to_string(),
            clock_ns: self.clock_ns,
            crashes: self.crashes,
            degrades: self.shards.iter().map(|s| s.degrades).sum(),
            evacuations: self.evacuations,
            quarantined,
            stranded,
            tenants,
        }
    }

    /// Derives a tenant's fleet status from the *last* session bearing
    /// its name on its home host's plane.
    fn tenant_status(&self, r: &TenantRecord) -> TenantStatus {
        let Some(h) = r.host else {
            return TenantStatus::Stranded;
        };
        let shard = &self.shards[h];
        let report = shard.plane.health(&shard.host);
        match report
            .sessions
            .iter()
            .rev()
            .find(|s| s.tenant == r.name)
            .map(|s| s.status)
        {
            Some(Status::Healthy) | Some(Status::Degraded) | Some(Status::Restarting) => {
                TenantStatus::Protected
            }
            Some(Status::Exhausted) => TenantStatus::Exhausted,
            // A detached (or missing) session on the tenant's home host
            // means service ended outside the fleet protocol — report
            // fail-closed, never protected.
            Some(Status::Failed) | Some(Status::Detached) | None => TenantStatus::Failed,
        }
    }

    /// Shuts the fleet down cleanly: every live shard's plane shuts
    /// down (terminal latches stay sticky), the shared ε accounts
    /// release their gc pins, and the final report is returned.
    /// Crashed shards are left as they died — latched.
    pub fn shutdown(mut self) -> FleetReport {
        let report = self.report();
        for shard in &mut self.shards {
            if !shard.crashed {
                shard.plane.shutdown(&mut shard.host);
            }
        }
        self.ledgers.borrow_mut().close();
        obs::counter_add("fleet.shutdowns", 1.0);
        report
    }

    // ---- accessors -----------------------------------------------------

    /// Hosts in the fleet.
    pub fn n_hosts(&self) -> usize {
        self.shards.len()
    }

    /// Tenants in the fleet.
    pub fn n_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The placement policy in force.
    pub fn policy(&self) -> PlacementPolicy {
        self.cfg.policy
    }

    /// Fleet sim-time advanced so far.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Shared view of host `h`'s substrate (for measurements).
    pub fn host(&self, h: usize) -> &Host {
        &self.shards[h].host
    }

    /// Failure-domain state of host `h`.
    pub fn host_state(&self, h: usize) -> HostState {
        if self.shards[h].crashed {
            HostState::Crashed
        } else {
            HostState::Healthy
        }
    }

    /// Tenant `t`'s current home as `(host, anchor core)`, `None` once
    /// quarantined or stranded.
    pub fn tenant_home(&self, t: usize) -> Option<(usize, usize)> {
        let r = &self.tenants[t];
        Some((r.host?, r.core?))
    }

    /// ε drawn so far from tenant `t`'s fleet-wide account.
    pub fn epsilon_spent(&self, t: usize) -> f64 {
        self.ledgers.borrow().spent(&self.tenants[t].name)
    }

    /// Whether tenant `t`'s ε account is poisoned (torn persisted
    /// record) — the quarantine precondition.
    pub fn tenant_poisoned(&self, t: usize) -> bool {
        self.ledgers.borrow().poisoned(&self.tenants[t].name)
    }

    /// The malicious hypervisor's measurement hook: records HPC traces
    /// on host `h` exactly as [`Host::record_trace_multi`] would,
    /// advancing that host's clock (crashed hosts included — their
    /// latched cores read zero in every window, which is the property
    /// tests use this hook to verify).
    ///
    /// # Errors
    ///
    /// Propagates [`aegis_perf::PerfError`] from opening any monitor.
    pub fn record_host_trace(
        &mut self,
        h: usize,
        cores: &[usize],
        events: &[aegis_microarch::EventId],
        filter: aegis_microarch::OriginFilter,
        interval_ns: u64,
        duration_ns: u64,
    ) -> Result<Vec<aegis_perf::Trace>, aegis_perf::PerfError> {
        self.shards[h]
            .host
            .record_trace_multi(cores, events, filter, interval_ns, duration_ns)
    }

    /// Lane-batched sibling of [`FleetSupervisor::record_host_trace`]:
    /// records every replica described by `lanes` on host `h` through
    /// [`Host::record_trace_multi_batch`] — one [`LaneGuest`] per
    /// recorded core per replica, the host's clock untouched. Returns
    /// one `Vec<Trace>` per lane, ordered as `cores`, bit-identical to
    /// recording each replica on a detached fork of the shard.
    ///
    /// # Errors
    ///
    /// Propagates [`aegis_perf::PerfError`] from opening any monitor.
    #[allow(clippy::too_many_arguments)] // mirrors Host::record_trace_multi_batch
    pub fn record_host_trace_batch(
        &self,
        h: usize,
        cores: &[usize],
        lanes: Vec<Vec<aegis_sev::LaneGuest>>,
        events: &[aegis_microarch::EventId],
        filter: aegis_microarch::OriginFilter,
        interval_ns: u64,
        duration_ns: u64,
    ) -> Result<Vec<Vec<aegis_perf::Trace>>, aegis_perf::PerfError> {
        self.shards[h]
            .host
            .record_trace_multi_batch(cores, lanes, events, filter, interval_ns, duration_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_schedule_is_pure_and_seed_sensitive() {
        let plan = FaultPlan {
            seed: 11,
            host_crash: 0.2,
            host_degrade: 0.3,
            ..FaultPlan::none()
        };
        let a = storm_schedule(&plan, 8, 16);
        let b = storm_schedule(&plan, 8, 16);
        assert_eq!(a, b, "same plan must replay the same schedule");
        assert!(!a.is_empty(), "these rates must fire within 16 steps");
        let reseeded = FaultPlan { seed: 12, ..plan };
        assert_ne!(
            a,
            storm_schedule(&reseeded, 8, 16),
            "a different seed must move the schedule"
        );
        assert!(
            storm_schedule(&FaultPlan::none(), 8, 16).is_empty(),
            "an inert plan schedules nothing"
        );
    }

    #[test]
    fn config_rejects_overcommit() {
        let cfg = FleetConfig::new(
            ServiceConfig::new(crate::AegisConfig::default()),
            FleetTopology {
                hosts: 2,
                sockets_per_host: 1,
                pairs_per_socket: 2,
            },
            PlacementPolicy::SmtOff,
            5, // 2 hosts × 2 pairs = 4 slots under SmtOff
        );
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, AegisError::Config { .. }), "{err}");
    }
}
