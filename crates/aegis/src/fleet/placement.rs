//! Tenant placement: mapping VMs onto the fleet's sockets and SMT
//! core pairs under a pluggable policy.
//!
//! The policies encode the production tenancy ground rules for
//! confidential guests (the Firecracker prod-host-setup posture): SMT
//! siblings share the physical core's PMU, so whoever controls sibling
//! occupancy controls the cross-tenant side channel. `SmtOff` and
//! `CorePairExclusive` guarantee no foreign sibling ever exists;
//! `Packed` maximizes density and therefore co-residency; `Spread`
//! avoids co-residency while capacity lasts and degrades to sharing
//! under pressure.

use crate::error::AegisError;
use serde::{Deserialize, Serialize};

/// Shape of every simulated host in the fleet: cores are numbered so
/// that cores `2p` and `2p + 1` are the SMT siblings of pair `p`, and
/// consecutive pairs fill a socket before the next one starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetTopology {
    /// Simulated hosts (= failure domains).
    pub hosts: usize,
    /// Sockets per host.
    pub sockets_per_host: usize,
    /// SMT core pairs per socket.
    pub pairs_per_socket: usize,
}

impl FleetTopology {
    /// Physical cores (SMT threads) per host.
    pub fn cores_per_host(&self) -> usize {
        self.sockets_per_host * self.pairs_per_socket * 2
    }

    /// SMT pairs per host.
    pub fn pairs_per_host(&self) -> usize {
        self.sockets_per_host * self.pairs_per_socket
    }

    /// The pair a core belongs to.
    pub fn pair_of(core: usize) -> usize {
        core / 2
    }

    /// The SMT sibling of a core.
    pub fn sibling_of(core: usize) -> usize {
        core ^ 1
    }

    /// The socket a core belongs to.
    pub fn socket_of(&self, core: usize) -> usize {
        FleetTopology::pair_of(core) / self.pairs_per_socket
    }

    pub(crate) fn validate(&self) -> Result<(), AegisError> {
        if self.hosts == 0 || self.sockets_per_host == 0 || self.pairs_per_socket == 0 {
            return Err(AegisError::config(
                "topology",
                format!(
                    "hosts, sockets and pairs must all be nonzero (got {} × {} × {})",
                    self.hosts, self.sockets_per_host, self.pairs_per_socket
                ),
            ));
        }
        Ok(())
    }
}

/// How the scheduler maps tenant VMs onto SMT pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Only sibling 0 of each pair is ever used; sibling 1 stays dark.
    /// Halves capacity, removes the sibling channel entirely.
    SmtOff,
    /// A tenant's VM owns its whole pair (both siblings as vCPUs), so
    /// the sibling is busy but never foreign.
    CorePairExclusive,
    /// Dense first-fit over every core — maximum density, maximum
    /// cross-tenant co-residency.
    Packed,
    /// Round-robin over hosts, preferring empty pairs; co-residency
    /// appears only once every pair on every host is anchored.
    Spread,
}

impl PlacementPolicy {
    /// Every policy, in the order fleet tables report them.
    pub const ALL: [PlacementPolicy; 4] = [
        PlacementPolicy::SmtOff,
        PlacementPolicy::CorePairExclusive,
        PlacementPolicy::Packed,
        PlacementPolicy::Spread,
    ];

    /// Stable display / table label.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::SmtOff => "smt-off",
            PlacementPolicy::CorePairExclusive => "core-pair-exclusive",
            PlacementPolicy::Packed => "packed",
            PlacementPolicy::Spread => "spread",
        }
    }

    /// Stable numeric tag folded into content-addressed cell seeds.
    pub(crate) fn tag(&self) -> u64 {
        match self {
            PlacementPolicy::SmtOff => 0,
            PlacementPolicy::CorePairExclusive => 1,
            PlacementPolicy::Packed => 2,
            PlacementPolicy::Spread => 3,
        }
    }

    /// Tenant slots one host offers under this policy.
    pub fn capacity_per_host(&self, topo: &FleetTopology) -> usize {
        match self {
            PlacementPolicy::SmtOff | PlacementPolicy::CorePairExclusive => topo.pairs_per_host(),
            PlacementPolicy::Packed | PlacementPolicy::Spread => topo.cores_per_host(),
        }
    }
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One placement decision: the host and the cores the VM pins, in vCPU
/// order (`CorePairExclusive` pins both siblings; every other policy
/// pins one core).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Destination host index.
    pub host: usize,
    /// Pinned cores, vCPU `v` on `cores[v]`.
    pub cores: Vec<usize>,
}

/// The fleet's placement scheduler: deterministic first-fit state over
/// `(topology, policy)`. Placement is a pure function of the sequence
/// of `place`/`release` calls — never of wall time or worker count — so
/// fleet runs replay bit-identically.
#[derive(Debug, Clone)]
pub struct Scheduler {
    topo: FleetTopology,
    policy: PlacementPolicy,
    /// `occupancy[host][core]` = owning tenant, if any.
    occupancy: Vec<Vec<Option<usize>>>,
    /// Round-robin cursor for [`PlacementPolicy::Spread`].
    next_host: usize,
}

impl Scheduler {
    /// An empty scheduler over the topology.
    pub fn new(topo: FleetTopology, policy: PlacementPolicy) -> Scheduler {
        Scheduler {
            topo,
            policy,
            occupancy: vec![vec![None; topo.cores_per_host()]; topo.hosts],
            next_host: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Places `tenant` on the first host (in policy order) with a free
    /// slot, or `None` when the surviving capacity is exhausted.
    /// `alive[h]` gates crashed hosts out of consideration.
    pub fn place(&mut self, tenant: usize, alive: &[bool]) -> Option<Placement> {
        let hosts = self.topo.hosts;
        let order: Vec<usize> = match self.policy {
            // First-fit host order packs hosts in index order.
            PlacementPolicy::SmtOff | PlacementPolicy::CorePairExclusive | PlacementPolicy::Packed => {
                (0..hosts).collect()
            }
            // Spread rotates the starting host per placement.
            PlacementPolicy::Spread => (0..hosts).map(|i| (self.next_host + i) % hosts).collect(),
        };
        for h in order {
            if !alive.get(h).copied().unwrap_or(false) {
                continue;
            }
            if let Some(cores) = self.slot_on_host(h) {
                for &c in &cores {
                    self.occupancy[h][c] = Some(tenant);
                }
                if self.policy == PlacementPolicy::Spread {
                    self.next_host = (h + 1) % hosts;
                }
                return Some(Placement { host: h, cores });
            }
        }
        None
    }

    /// Frees every core `tenant` holds on `host` (evacuation drain).
    pub fn release(&mut self, host: usize, tenant: usize) {
        for slot in &mut self.occupancy[host] {
            if *slot == Some(tenant) {
                *slot = None;
            }
        }
    }

    /// The tenant on the SMT sibling of `core`, if any — the
    /// co-residency the cross-tenant attacker exploits.
    pub fn co_resident(&self, host: usize, core: usize) -> Option<usize> {
        let sib = FleetTopology::sibling_of(core);
        self.occupancy[host][sib].filter(|&t| self.occupancy[host][core] != Some(t))
    }

    /// Free tenant slots remaining across `alive` hosts.
    pub fn capacity(&self, alive: &[bool]) -> usize {
        (0..self.topo.hosts)
            .filter(|&h| alive.get(h).copied().unwrap_or(false))
            .map(|h| self.host_capacity(h))
            .sum()
    }

    fn host_capacity(&self, h: usize) -> usize {
        let mut n = 0;
        let mut probe = self.clone();
        while let Some(cores) = probe.slot_on_host(h) {
            for &c in &cores {
                probe.occupancy[h][c] = Some(usize::MAX);
            }
            n += 1;
        }
        n
    }

    /// The next slot `h` offers under the policy, without claiming it.
    fn slot_on_host(&self, h: usize) -> Option<Vec<usize>> {
        let occ = &self.occupancy[h];
        let pairs = self.topo.pairs_per_host();
        match self.policy {
            // Only even cores, and only on fully empty pairs: the
            // sibling stays dark forever.
            PlacementPolicy::SmtOff => (0..pairs)
                .map(|p| 2 * p)
                .find(|&c| occ[c].is_none() && occ[c + 1].is_none())
                .map(|c| vec![c]),
            // The VM owns the whole pair, one vCPU per sibling.
            PlacementPolicy::CorePairExclusive => (0..pairs)
                .map(|p| 2 * p)
                .find(|&c| occ[c].is_none() && occ[c + 1].is_none())
                .map(|c| vec![c, c + 1]),
            // Dense: first free core in core order fills siblings early.
            PlacementPolicy::Packed => {
                (0..occ.len()).find(|&c| occ[c].is_none()).map(|c| vec![c])
            }
            // Prefer an empty pair; share a sibling only under pressure.
            PlacementPolicy::Spread => (0..pairs)
                .map(|p| 2 * p)
                .find(|&c| occ[c].is_none() && occ[c + 1].is_none())
                .or_else(|| (0..occ.len()).find(|&c| occ[c].is_none()))
                .map(|c| vec![c]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(hosts: usize) -> FleetTopology {
        FleetTopology {
            hosts,
            sockets_per_host: 1,
            pairs_per_socket: 2,
        }
    }

    #[test]
    fn packed_fills_siblings_before_next_pair() {
        let mut s = Scheduler::new(topo(1), PlacementPolicy::Packed);
        let alive = [true];
        let cores: Vec<_> = (0..4).map(|t| s.place(t, &alive).unwrap().cores[0]).collect();
        assert_eq!(cores, vec![0, 1, 2, 3]);
        assert_eq!(s.co_resident(0, 0), Some(1));
        assert!(s.place(4, &alive).is_none(), "host is full");
    }

    #[test]
    fn smt_off_and_exclusive_never_share_a_pair() {
        for policy in [PlacementPolicy::SmtOff, PlacementPolicy::CorePairExclusive] {
            let mut s = Scheduler::new(topo(2), policy);
            let alive = [true, true];
            for t in 0..4 {
                let p = s.place(t, &alive).unwrap();
                assert_eq!(s.co_resident(p.host, p.cores[0]), None, "{policy}");
            }
            assert_eq!(s.capacity(&alive), 0, "{policy}: 2 hosts × 2 pairs");
            assert!(s.place(9, &alive).is_none());
        }
    }

    #[test]
    fn spread_rotates_hosts_and_shares_only_under_pressure() {
        let mut s = Scheduler::new(topo(2), PlacementPolicy::Spread);
        let alive = [true, true];
        let hosts: Vec<_> = (0..4).map(|t| s.place(t, &alive).unwrap().host).collect();
        assert_eq!(hosts, vec![0, 1, 0, 1], "round-robin while pairs last");
        for t in 0..4 {
            let p = s.place(4 + t, &alive).unwrap();
            assert!(
                s.co_resident(p.host, p.cores[0]).is_some(),
                "pressure placements land on occupied pairs"
            );
        }
        assert!(s.place(99, &alive).is_none());
    }

    #[test]
    fn release_frees_the_slot_and_dead_hosts_are_skipped() {
        let mut s = Scheduler::new(topo(2), PlacementPolicy::Packed);
        let p = s.place(0, &[true, true]).unwrap();
        assert_eq!(p.host, 0);
        s.release(p.host, 0);
        // Host 0 now reads dead: the same tenant re-places on host 1.
        let p2 = s.place(0, &[false, true]).unwrap();
        assert_eq!(p2.host, 1);
        assert_eq!(s.capacity(&[false, true]), 3);
    }
}
