//! The cross-tenant honest-but-curious attacker: a co-tenant (plus the
//! host's perf daemons) aggregating counters over one tenant's SMT core
//! pair to classify a *neighbouring* tenant's secret.
//!
//! This is the fleet-level version of the paper's threat model: the
//! attacker cannot name the victim's core, but it can read everything
//! scheduled onto its own pair. Whether that pair *contains* the victim
//! is exactly what the placement policy decides — so attacker accuracy
//! becomes a measurable function of the placement knob:
//!
//! - [`PlacementPolicy::Packed`] co-locates tenants on sibling threads:
//!   the victim's counters land in the attacker's aggregate and an
//!   undefended workload classifies well above chance;
//! - [`PlacementPolicy::SmtOff`] / [`PlacementPolicy::CorePairExclusive`]
//!   keep every pair single-tenant: the aggregate carries no foreign
//!   signal and accuracy collapses to chance;
//! - [`PlacementPolicy::Spread`] is load-dependent: chance while
//!   headroom lasts, [`Packed`]-like under pressure.
//!
//! [`Packed`]: PlacementPolicy::Packed
//!
//! Measurement runs on the lane-batched acquisition path: every
//! `(secret, rep)` unit becomes one lane of a two-core
//! [`CoreBatch`](aegis_microarch::CoreBatch) lane group driven by
//! [`Host::record_trace_multi_batch`], instead of a full
//! `fork_detached` host per unit. Lane tiles are sharded over the
//! `aegis-par` pool with per-unit derived seeds — bit-identical at any
//! worker count and bit-identical to the scalar per-fork reference
//! ([`cross_tenant_accuracy_scalar`]), which stays behind as the pinned
//! oracle. Both paths always run under an inert fault plan so accuracy
//! tables never depend on the ambient `AEGIS_FAULTS` environment.

use super::placement::{FleetTopology, PlacementPolicy, Scheduler};
use crate::error::AegisError;
use crate::evaluate::ClassifierAttack;
use crate::pipeline::DefenseDeployment;
use aegis_attack::{trace_features_into, Dataset, TrainConfig};
use aegis_faults::FaultPlan;
use aegis_microarch::{CoreBatch, EventId, MicroArch, OriginFilter};
use aegis_obs as obs;
use aegis_par::{derive_seed, Executor};
use aegis_perf::Trace;
use aegis_sev::{ActivitySource, Host, LaneGuest, PlanSource, SevMode, VmId};
use aegis_workloads::SecretApp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Seed stream tags for the cross-tenant attacker's independent RNG
/// consumers (disjoint from the fleet streams 0x30–0x32).
const STREAM_XT_HOST: u64 = 0x40;
const STREAM_XT_VICTIM: u64 = 0x41;
const STREAM_XT_DECOY: u64 = 0x42;
const STREAM_XT_NOISE: u64 = 0x43;
const STREAM_XT_TRAIN: u64 = 0x44;

/// Units per parallel work item on the batched path: one cache-sized
/// [`CoreBatch`] tile of the two-core lane group, so each worker call
/// maps onto exactly one internal tile of the batched recorder.
const LANE_TILE_UNITS: usize = CoreBatch::TILE_LANES / 2;

/// Settings for one cross-tenant accuracy measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossTenantConfig {
    /// Tenants on the host (≥ 2: tenant 0 is the attacker's anchor,
    /// tenant 1 the victim, the rest background decoys).
    pub tenants: usize,
    /// Traces per victim secret (≥ 2; even reps train, odd reps test).
    pub traces_per_secret: usize,
    /// Monitoring window (clamped to the app's window).
    pub window_ns: u64,
    /// Sampling interval.
    pub interval_ns: u64,
    /// Average-pooling factor on each event row.
    pub pool: usize,
    /// Base seed; every unit derives its own streams.
    pub seed: u64,
    /// Simulated microarchitecture.
    pub arch: MicroArch,
}

impl Default for CrossTenantConfig {
    fn default() -> Self {
        CrossTenantConfig {
            tenants: 4,
            traces_per_secret: 8,
            window_ns: 200_000_000,
            interval_ns: 1_000_000,
            pool: 10,
            seed: 7,
            arch: MicroArch::AmdEpyc7252,
        }
    }
}

/// One row of the placement-vs-attacker table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyAttackCell {
    /// The placement policy measured.
    pub policy: PlacementPolicy,
    /// Whether the policy put a foreign tenant on the anchor pair's
    /// sibling thread (the leakage precondition).
    pub co_resident: bool,
    /// Test accuracy of the classifier on the victim's secret.
    pub accuracy: f64,
}

/// The placement-shaped substrate both measurement paths share: one
/// host, tenants placed by the policy's [`Scheduler`], and the attack
/// geometry (anchor pair, events, window, unit list) resolved once.
struct XtSetup {
    host: Host,
    vms: Vec<VmId>,
    anchor: usize,
    sibling: usize,
    co_resident: bool,
    events: [EventId; 4],
    window: u64,
    n_secrets: usize,
    units: Vec<(usize, usize)>,
}

fn xt_setup(
    policy: PlacementPolicy,
    app: &dyn SecretApp,
    cfg: &CrossTenantConfig,
) -> Result<XtSetup, AegisError> {
    if cfg.tenants < 2 {
        return Err(AegisError::config("tenants", "need an attacker and a victim"));
    }
    if cfg.traces_per_secret < 2 {
        return Err(AegisError::config(
            "traces_per_secret",
            "need at least one training and one test trace",
        ));
    }
    let topo = FleetTopology {
        hosts: 1,
        sockets_per_host: 1,
        pairs_per_socket: cfg.tenants,
    };
    // Inert faults: accuracy tables are physics, not robustness runs,
    // and must not move under an ambient AEGIS_FAULTS plan.
    let mut host = Host::with_faults(
        cfg.arch,
        topo.cores_per_host(),
        derive_seed(cfg.seed, STREAM_XT_HOST, 0),
        FaultPlan::none(),
    );
    let mut scheduler = Scheduler::new(topo, policy);
    let alive = [true];
    let mut vms = Vec::with_capacity(cfg.tenants);
    let mut anchor = 0;
    for t in 0..cfg.tenants {
        let p = scheduler
            .place(t, &alive)
            .expect("the topology holds one pair per tenant");
        if t == 0 {
            anchor = p.cores[0];
        }
        vms.push(host.launch_vm_pinned(&p.cores, SevMode::SevSnp)?);
    }
    let sibling = FleetTopology::sibling_of(anchor);
    let co_resident = scheduler.co_resident(0, anchor).is_some();
    let events = host.core(anchor).catalog().attack_events();
    let window = cfg.window_ns.min(app.window_ns());
    let n_secrets = app.n_secrets();
    let units: Vec<(usize, usize)> = (0..n_secrets)
        .flat_map(|s| (0..cfg.traces_per_secret).map(move |r| (s, r)))
        .collect();
    Ok(XtSetup {
        host,
        vms,
        anchor,
        sibling,
        co_resident,
        events,
        window,
        n_secrets,
        units,
    })
}

/// Tenant index whose vCPU 0 is scheduled on `core`, if any. Lane
/// construction only materializes sources for vCPU 0 — apps and
/// obfuscators are deployed there, so a pair thread holding a higher
/// vCPU (exclusive policies) or nothing at all carries no sources.
fn role_of(host: &Host, vms: &[VmId], core: usize) -> Option<usize> {
    match host.assignment_of(core) {
        Some((vm, 0)) => vms.iter().position(|&v| v == vm),
        _ => None,
    }
}

/// The activity sources one replica attaches to the vCPU-0 tenant
/// `role` on a recorded core: the victim (tenant 1) runs the labeled
/// secret, bystanders an independently drawn decoy, and the attacker
/// (tenant 0) parks its own vCPU — it controls its workload, and idling
/// maximises the foreign signal in its aggregate. Every seed derives
/// from `(unit, tenant)` alone, so lanes are order-independent and
/// bit-identical to the scalar path's per-fork attachments.
fn lane_guest(
    role: Option<usize>,
    secret: usize,
    unit: usize,
    n_secrets: usize,
    app: &dyn SecretApp,
    defense: Option<&DefenseDeployment>,
    cfg: &CrossTenantConfig,
) -> LaneGuest {
    let Some(j) = role else {
        return LaneGuest::default();
    };
    let plan = match j {
        0 => None,
        1 => {
            let mut rng =
                StdRng::seed_from_u64(derive_seed(cfg.seed, STREAM_XT_VICTIM, unit as u64));
            Some(app.sample_plan(secret, &mut rng))
        }
        _ => {
            let mut rng = StdRng::seed_from_u64(derive_seed(
                cfg.seed,
                STREAM_XT_DECOY,
                (unit * cfg.tenants + j) as u64,
            ));
            let decoy = rng.gen_range(0..n_secrets);
            Some(app.sample_plan(decoy, &mut rng))
        }
    };
    LaneGuest {
        app: plan.map(|p| Box::new(PlanSource::new(p)) as Box<dyn ActivitySource>),
        injector: defense.map(|d| {
            Box::new(d.make_obfuscator(derive_seed(
                cfg.seed,
                STREAM_XT_NOISE,
                (unit * cfg.tenants + j) as u64,
            ))) as Box<dyn ActivitySource>
        }),
    }
}

/// Trains the classifier and emits the table cell — the tail both
/// measurement paths share.
fn score_cell(
    policy: PlacementPolicy,
    co_resident: bool,
    cfg: &CrossTenantConfig,
    train: &Dataset,
    test: &Dataset,
) -> PolicyAttackCell {
    let attacker = ClassifierAttack::train(
        train,
        TrainConfig::default(),
        derive_seed(cfg.seed, STREAM_XT_TRAIN, 0),
    );
    let accuracy = attacker.accuracy(test);
    obs::gauge_set("fleet.cross_tenant.accuracy", accuracy);
    PolicyAttackCell {
        policy,
        co_resident,
        accuracy,
    }
}

/// Measures cross-tenant attacker accuracy under one placement policy.
///
/// One simulated host is shaped so the policy's tenancy rules are the
/// only variable: `tenants` SMT pairs, so exclusive policies always
/// have room to isolate. Tenants are placed by the policy's
/// [`Scheduler`]; the attacker then records both threads of *tenant
/// 0's* pair, sums them element-wise (its pair-aggregate view), and
/// trains a classifier against tenant 1's secret. With `defense` set, a
/// fresh obfuscator is deployed on every tenant per trace.
///
/// Acquisition is lane-batched: the `(secret, rep)` units become
/// contiguous lanes of [`Host::record_trace_multi_batch`], tiled into
/// [`LANE_TILE_UNITS`]-unit work items over the `aegis-par` pool. Each
/// worker folds its tile's pair-aggregate traces into a flat feature
/// buffer through per-worker scratch — no per-unit host fork, trace
/// clone, or feature `Vec` is allocated. The result is bit-identical to
/// [`cross_tenant_accuracy_scalar`].
///
/// # Errors
///
/// [`AegisError::Config`] for fewer than 2 tenants or fewer than 2
/// traces per secret; [`AegisError::Host`] if the substrate rejects a
/// placement.
pub fn cross_tenant_accuracy(
    policy: PlacementPolicy,
    app: &dyn SecretApp,
    defense: Option<&DefenseDeployment>,
    cfg: &CrossTenantConfig,
) -> Result<PolicyAttackCell, AegisError> {
    let mut span = obs::span("fleet.cross_tenant");
    let s = xt_setup(policy, app, cfg)?;
    span.set_sim_ns(s.window * s.units.len() as u64);
    let pair = [s.anchor, s.sibling];
    let roles = [
        role_of(&s.host, &s.vms, s.anchor),
        role_of(&s.host, &s.vms, s.sibling),
    ];
    let (host, events, window, n_secrets) = (&s.host, s.events, s.window, s.n_secrets);
    let tiles: Vec<&[(usize, usize)]> = s.units.chunks(LANE_TILE_UNITS).collect();
    type TileRows = Result<(Vec<f64>, usize), aegis_perf::PerfError>;
    let rows: Vec<TileRows> = Executor::from_config().map_with(
        tiles,
        |_worker| (Trace::new(Vec::new(), 1), Vec::new()),
        |(agg, feats), tile_ix, tile| {
            let base = tile_ix * LANE_TILE_UNITS;
            let lanes: Vec<Vec<LaneGuest>> = tile
                .iter()
                .enumerate()
                .map(|(i, &(secret, _rep))| {
                    roles
                        .iter()
                        .map(|&role| {
                            lane_guest(role, secret, base + i, n_secrets, app, defense, cfg)
                        })
                        .collect()
                })
                .collect();
            let traces = host.record_trace_multi_batch(
                &pair,
                lanes,
                &events,
                OriginFilter::Any,
                cfg.interval_ns,
                window,
            )?;
            let mut flat = Vec::new();
            for lane_traces in &traces {
                sum_traces_into(lane_traces, agg);
                trace_features_into(agg, cfg.pool, feats);
                flat.extend_from_slice(feats);
            }
            Ok((flat, traces.len()))
        },
    );
    let mut train = Dataset::new(Vec::new(), Vec::new(), s.n_secrets);
    let mut test = Dataset::new(Vec::new(), Vec::new(), s.n_secrets);
    for (tile_ix, tile) in rows.into_iter().enumerate() {
        let (flat, n_lanes) = tile.map_err(AegisError::from)?;
        let stride = flat.len().checked_div(n_lanes).unwrap_or(0);
        let units = &s.units[tile_ix * LANE_TILE_UNITS..];
        for (i, &(secret, rep)) in units.iter().take(n_lanes).enumerate() {
            let row = &flat[i * stride..(i + 1) * stride];
            if rep % 2 == 0 {
                train.push_slice(row, secret);
            } else {
                test.push_slice(row, secret);
            }
        }
    }
    Ok(score_cell(policy, s.co_resident, cfg, &train, &test))
}

/// The scalar per-fork reference for [`cross_tenant_accuracy`]: one
/// `fork_detached` host replica per `(secret, rep)` unit, recorded with
/// [`Host::record_trace_multi`]. Bit-identical to the batched path (a
/// unit test pins this) and kept as the oracle the batched recorder is
/// benchmarked and regression-tested against.
///
/// # Errors
///
/// Same contract as [`cross_tenant_accuracy`].
pub fn cross_tenant_accuracy_scalar(
    policy: PlacementPolicy,
    app: &dyn SecretApp,
    defense: Option<&DefenseDeployment>,
    cfg: &CrossTenantConfig,
) -> Result<PolicyAttackCell, AegisError> {
    let mut span = obs::span("fleet.cross_tenant");
    let s = xt_setup(policy, app, cfg)?;
    span.set_sim_ns(s.window * s.units.len() as u64);
    let tenants = cfg.tenants;
    let (anchor, sibling, events, window, n_secrets) =
        (s.anchor, s.sibling, s.events, s.window, s.n_secrets);
    let vms = &s.vms;
    let snapshot: &Host = &s.host;
    type FeatureRow = Result<(Vec<f64>, usize, usize), aegis_perf::PerfError>;
    let rows: Vec<FeatureRow> = Executor::from_config().map_with(
        s.units.clone(),
        |_worker| {
            let pristine = snapshot.fork_detached();
            let arena = pristine.fork_detached();
            (pristine, arena, Trace::new(Vec::new(), 1), Vec::new())
        },
        |(pristine, replica, agg, feats), unit, (secret, rep)| {
            pristine.fork_detached_into(replica);
            // The victim runs the labeled secret and every bystander
            // an independently drawn decoy. The attacker (tenant 0)
            // parks its own vCPU — it controls its workload, and
            // idling maximises the foreign signal in its aggregate.
            for (j, &vm) in vms.iter().enumerate() {
                if j == 0 {
                    continue;
                }
                let plan = if j == 1 {
                    let mut rng = StdRng::seed_from_u64(derive_seed(
                        cfg.seed,
                        STREAM_XT_VICTIM,
                        unit as u64,
                    ));
                    app.sample_plan(secret, &mut rng)
                } else {
                    let mut rng = StdRng::seed_from_u64(derive_seed(
                        cfg.seed,
                        STREAM_XT_DECOY,
                        (unit * tenants + j) as u64,
                    ));
                    let decoy = rng.gen_range(0..n_secrets);
                    app.sample_plan(decoy, &mut rng)
                };
                replica
                    .attach_app(vm, 0, Box::new(PlanSource::new(plan)))
                    .expect("ids were validated on the original host");
            }
            if let Some(d) = defense {
                for (j, &vm) in vms.iter().enumerate() {
                    d.deploy(
                        replica,
                        vm,
                        0,
                        derive_seed(cfg.seed, STREAM_XT_NOISE, (unit * tenants + j) as u64),
                    )
                    .expect("ids were validated on the original host");
                }
            }
            let traces = replica.record_trace_multi(
                &[anchor, sibling],
                &events,
                OriginFilter::Any,
                cfg.interval_ns,
                window,
            )?;
            sum_traces_into(&traces, agg);
            trace_features_into(agg, cfg.pool, feats);
            Ok((feats.clone(), secret, rep))
        },
    );
    let mut train = Dataset::new(Vec::new(), Vec::new(), s.n_secrets);
    let mut test = Dataset::new(Vec::new(), Vec::new(), s.n_secrets);
    for row in rows {
        let (features, secret, rep) = row.map_err(AegisError::from)?;
        if rep % 2 == 0 {
            train.push(features, secret);
        } else {
            test.push(features, secret);
        }
    }
    Ok(score_cell(policy, s.co_resident, cfg, &train, &test))
}

/// Runs [`cross_tenant_accuracy`] for each policy — the fleet's
/// defense-metric table proving which placement knobs move attacker
/// accuracy.
///
/// # Errors
///
/// Propagates the first failing cell's error.
pub fn policy_attack_table(
    policies: &[PlacementPolicy],
    app: &dyn SecretApp,
    defense: Option<&DefenseDeployment>,
    cfg: &CrossTenantConfig,
) -> Result<Vec<PolicyAttackCell>, AegisError> {
    policies
        .iter()
        .map(|&p| cross_tenant_accuracy(p, app, defense, cfg))
        .collect()
}

/// Element-wise sum of same-shape traces into `agg`, reusing `agg`'s
/// row allocations: the attacker's aggregate view of a core pair (it
/// reads both siblings but cannot separate them).
fn sum_traces_into(traces: &[Trace], agg: &mut Trace) {
    agg.events.clone_from(&traces[0].events);
    agg.interval_ns = traces[0].interval_ns;
    agg.data.resize_with(traces[0].data.len(), Vec::new);
    for (row, src) in agg.data.iter_mut().zip(&traces[0].data) {
        row.clone_from(src);
    }
    for t in &traces[1..] {
        for (row, other) in agg.data.iter_mut().zip(&t.data) {
            for (a, b) in row.iter_mut().zip(other) {
                *a += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_traces(traces: &[Trace]) -> Trace {
        let mut agg = Trace::new(Vec::new(), 1);
        sum_traces_into(traces, &mut agg);
        agg
    }

    #[test]
    fn config_guards() {
        let app = aegis_workloads::KeystrokeApp::with_window(300_000_000);
        let bad = CrossTenantConfig {
            tenants: 1,
            ..CrossTenantConfig::default()
        };
        assert!(cross_tenant_accuracy(PlacementPolicy::Packed, &app, None, &bad).is_err());
        assert!(cross_tenant_accuracy_scalar(PlacementPolicy::Packed, &app, None, &bad).is_err());
        let bad = CrossTenantConfig {
            traces_per_secret: 1,
            ..CrossTenantConfig::default()
        };
        assert!(cross_tenant_accuracy(PlacementPolicy::Packed, &app, None, &bad).is_err());
        assert!(cross_tenant_accuracy_scalar(PlacementPolicy::Packed, &app, None, &bad).is_err());
    }

    #[test]
    fn trace_summing_is_elementwise_and_reuses_scratch() {
        use aegis_microarch::EventId;
        let mut a = Trace::new(vec![EventId(0)], 1);
        a.push_slice(&[1.0]);
        a.push_slice(&[2.0]);
        let mut b = Trace::new(vec![EventId(0)], 1);
        b.push_slice(&[10.0]);
        b.push_slice(&[20.0]);
        let s = sum_traces(&[a.clone(), b.clone()]);
        assert_eq!(s.row(0), &[11.0, 22.0]);
        // A dirty aggregate from a previous unit is fully overwritten.
        let mut agg = Trace::new(vec![EventId(3), EventId(4)], 9);
        agg.push_slice(&[7.0, 7.0]);
        sum_traces_into(&[a, b], &mut agg);
        assert_eq!(agg.events, vec![EventId(0)]);
        assert_eq!(agg.interval_ns, 1);
        assert_eq!(agg.row(0), &[11.0, 22.0]);
    }

    fn quick_cfg() -> CrossTenantConfig {
        CrossTenantConfig {
            tenants: 3,
            traces_per_secret: 2,
            window_ns: 6_000_000,
            interval_ns: 1_000_000,
            pool: 2,
            seed: 11,
            arch: MicroArch::AmdEpyc7252,
        }
    }

    fn test_deployment(arch: MicroArch) -> DefenseDeployment {
        use crate::pipeline::MechanismChoice;
        use aegis_fuzzer::Gadget;
        use aegis_isa::{IsaCatalog, Vendor, WellKnown};
        use aegis_obfuscator::{GadgetStack, ObfuscatorConfig};
        let isa = IsaCatalog::synthetic(Vendor::Amd, 7);
        let mut core = aegis_microarch::Core::new(arch, 9);
        let stack = GadgetStack::calibrate(
            &isa,
            &mut core,
            vec![Gadget::new(WellKnown::Clflush.id(), WellKnown::Load64.id())],
            64,
        );
        DefenseDeployment {
            stack,
            mechanism: MechanismChoice::Laplace { epsilon: 0.25 },
            obfuscator: ObfuscatorConfig::default(),
        }
    }

    #[test]
    fn batched_lanes_bit_match_the_scalar_reference() {
        let app = aegis_workloads::KeystrokeApp::with_window(300_000_000);
        let cfg = quick_cfg();
        for policy in [PlacementPolicy::Packed, PlacementPolicy::CorePairExclusive] {
            let batched = cross_tenant_accuracy(policy, &app, None, &cfg).unwrap();
            let scalar = cross_tenant_accuracy_scalar(policy, &app, None, &cfg).unwrap();
            assert_eq!(batched, scalar, "{policy:?}");
        }
    }

    #[test]
    fn batched_lanes_bit_match_the_scalar_reference_under_defense() {
        let app = aegis_workloads::KeystrokeApp::with_window(300_000_000);
        let cfg = quick_cfg();
        let defense = test_deployment(cfg.arch);
        let batched =
            cross_tenant_accuracy(PlacementPolicy::Packed, &app, Some(&defense), &cfg).unwrap();
        let scalar =
            cross_tenant_accuracy_scalar(PlacementPolicy::Packed, &app, Some(&defense), &cfg)
                .unwrap();
        assert_eq!(batched, scalar);
    }
}
