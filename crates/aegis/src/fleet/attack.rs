//! The cross-tenant honest-but-curious attacker: a co-tenant (plus the
//! host's perf daemons) aggregating counters over one tenant's SMT core
//! pair to classify a *neighbouring* tenant's secret.
//!
//! This is the fleet-level version of the paper's threat model: the
//! attacker cannot name the victim's core, but it can read everything
//! scheduled onto its own pair. Whether that pair *contains* the victim
//! is exactly what the placement policy decides — so attacker accuracy
//! becomes a measurable function of the placement knob:
//!
//! - [`PlacementPolicy::Packed`] co-locates tenants on sibling threads:
//!   the victim's counters land in the attacker's aggregate and an
//!   undefended workload classifies well above chance;
//! - [`PlacementPolicy::SmtOff`] / [`PlacementPolicy::CorePairExclusive`]
//!   keep every pair single-tenant: the aggregate carries no foreign
//!   signal and accuracy collapses to chance;
//! - [`PlacementPolicy::Spread`] is load-dependent: chance while
//!   headroom lasts, [`Packed`]-like under pressure.
//!
//! [`Packed`]: PlacementPolicy::Packed
//!
//! Measurement is sharded over the `aegis-par` pool with per-unit
//! derived seeds — bit-identical at any worker count — and always runs
//! under an inert fault plan so accuracy tables never depend on the
//! ambient `AEGIS_FAULTS` environment.

use super::placement::{FleetTopology, PlacementPolicy, Scheduler};
use crate::error::AegisError;
use crate::evaluate::ClassifierAttack;
use crate::pipeline::DefenseDeployment;
use aegis_attack::{trace_features, Dataset, TrainConfig};
use aegis_faults::FaultPlan;
use aegis_microarch::{MicroArch, OriginFilter};
use aegis_obs as obs;
use aegis_par::{derive_seed, Executor};
use aegis_perf::Trace;
use aegis_sev::{Host, PlanSource, SevMode};
use aegis_workloads::SecretApp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Seed stream tags for the cross-tenant attacker's independent RNG
/// consumers (disjoint from the fleet streams 0x30–0x32).
const STREAM_XT_HOST: u64 = 0x40;
const STREAM_XT_VICTIM: u64 = 0x41;
const STREAM_XT_DECOY: u64 = 0x42;
const STREAM_XT_NOISE: u64 = 0x43;
const STREAM_XT_TRAIN: u64 = 0x44;

/// Settings for one cross-tenant accuracy measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossTenantConfig {
    /// Tenants on the host (≥ 2: tenant 0 is the attacker's anchor,
    /// tenant 1 the victim, the rest background decoys).
    pub tenants: usize,
    /// Traces per victim secret (≥ 2; even reps train, odd reps test).
    pub traces_per_secret: usize,
    /// Monitoring window (clamped to the app's window).
    pub window_ns: u64,
    /// Sampling interval.
    pub interval_ns: u64,
    /// Average-pooling factor on each event row.
    pub pool: usize,
    /// Base seed; every unit derives its own streams.
    pub seed: u64,
    /// Simulated microarchitecture.
    pub arch: MicroArch,
}

impl Default for CrossTenantConfig {
    fn default() -> Self {
        CrossTenantConfig {
            tenants: 4,
            traces_per_secret: 8,
            window_ns: 200_000_000,
            interval_ns: 1_000_000,
            pool: 10,
            seed: 7,
            arch: MicroArch::AmdEpyc7252,
        }
    }
}

/// One row of the placement-vs-attacker table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyAttackCell {
    /// The placement policy measured.
    pub policy: PlacementPolicy,
    /// Whether the policy put a foreign tenant on the anchor pair's
    /// sibling thread (the leakage precondition).
    pub co_resident: bool,
    /// Test accuracy of the classifier on the victim's secret.
    pub accuracy: f64,
}

/// Measures cross-tenant attacker accuracy under one placement policy.
///
/// One simulated host is shaped so the policy's tenancy rules are the
/// only variable: `tenants` SMT pairs, so exclusive policies always
/// have room to isolate. Tenants are placed by the policy's
/// [`Scheduler`]; the attacker then records both threads of *tenant
/// 0's* pair ([`Host::record_trace_multi`]), sums them element-wise
/// (its pair-aggregate view), and trains a classifier against tenant
/// 1's secret. With `defense` set, a fresh obfuscator is deployed on
/// every tenant per trace.
///
/// # Errors
///
/// [`AegisError::Config`] for fewer than 2 tenants or fewer than 2
/// traces per secret; [`AegisError::Host`] if the substrate rejects a
/// placement.
pub fn cross_tenant_accuracy(
    policy: PlacementPolicy,
    app: &dyn SecretApp,
    defense: Option<&DefenseDeployment>,
    cfg: &CrossTenantConfig,
) -> Result<PolicyAttackCell, AegisError> {
    let mut span = obs::span("fleet.cross_tenant");
    if cfg.tenants < 2 {
        return Err(AegisError::config("tenants", "need an attacker and a victim"));
    }
    if cfg.traces_per_secret < 2 {
        return Err(AegisError::config(
            "traces_per_secret",
            "need at least one training and one test trace",
        ));
    }
    let topo = FleetTopology {
        hosts: 1,
        sockets_per_host: 1,
        pairs_per_socket: cfg.tenants,
    };
    // Inert faults: accuracy tables are physics, not robustness runs,
    // and must not move under an ambient AEGIS_FAULTS plan.
    let mut host = Host::with_faults(
        cfg.arch,
        topo.cores_per_host(),
        derive_seed(cfg.seed, STREAM_XT_HOST, 0),
        FaultPlan::none(),
    );
    let mut scheduler = Scheduler::new(topo, policy);
    let alive = [true];
    let mut vms = Vec::with_capacity(cfg.tenants);
    let mut anchor = 0;
    for t in 0..cfg.tenants {
        let p = scheduler
            .place(t, &alive)
            .expect("the topology holds one pair per tenant");
        if t == 0 {
            anchor = p.cores[0];
        }
        vms.push(host.launch_vm_pinned(&p.cores, SevMode::SevSnp)?);
    }
    let sibling = FleetTopology::sibling_of(anchor);
    let co_resident = scheduler.co_resident(0, anchor).is_some();
    let events = host.core(anchor).catalog().attack_events();
    let window = cfg.window_ns.min(app.window_ns());
    let n_secrets = app.n_secrets();
    let units: Vec<(usize, usize)> = (0..n_secrets)
        .flat_map(|s| (0..cfg.traces_per_secret).map(move |r| (s, r)))
        .collect();
    span.set_sim_ns(window * units.len() as u64);
    let tenants = cfg.tenants;
    let snapshot: &Host = &host;
    type FeatureRow = Result<(Vec<f64>, usize, usize), aegis_perf::PerfError>;
    let rows: Vec<FeatureRow> = Executor::from_config().map_with(
            units,
            |_worker| {
                let pristine = snapshot.fork_detached();
                let arena = pristine.fork_detached();
                (pristine, arena)
            },
            |(pristine, replica), unit, (secret, rep)| {
                pristine.fork_detached_into(replica);
                // The victim runs the labeled secret and every bystander
                // an independently drawn decoy. The attacker (tenant 0)
                // parks its own vCPU — it controls its workload, and
                // idling maximises the foreign signal in its aggregate.
                for (j, &vm) in vms.iter().enumerate() {
                    if j == 0 {
                        continue;
                    }
                    let plan = if j == 1 {
                        let mut rng = StdRng::seed_from_u64(derive_seed(
                            cfg.seed,
                            STREAM_XT_VICTIM,
                            unit as u64,
                        ));
                        app.sample_plan(secret, &mut rng)
                    } else {
                        let mut rng = StdRng::seed_from_u64(derive_seed(
                            cfg.seed,
                            STREAM_XT_DECOY,
                            (unit * tenants + j) as u64,
                        ));
                        let decoy = rng.gen_range(0..n_secrets);
                        app.sample_plan(decoy, &mut rng)
                    };
                    replica
                        .attach_app(vm, 0, Box::new(PlanSource::new(plan)))
                        .expect("ids were validated on the original host");
                }
                if let Some(d) = defense {
                    for (j, &vm) in vms.iter().enumerate() {
                        d.deploy(
                            replica,
                            vm,
                            0,
                            derive_seed(cfg.seed, STREAM_XT_NOISE, (unit * tenants + j) as u64),
                        )
                        .expect("ids were validated on the original host");
                    }
                }
                let traces = replica.record_trace_multi(
                    &[anchor, sibling],
                    &events,
                    OriginFilter::Any,
                    cfg.interval_ns,
                    window,
                )?;
                let agg = sum_traces(&traces);
                Ok((trace_features(&agg, cfg.pool), secret, rep))
            },
        );
    let mut train = Dataset::new(Vec::new(), Vec::new(), n_secrets);
    let mut test = Dataset::new(Vec::new(), Vec::new(), n_secrets);
    for row in rows {
        let (features, secret, rep) = row.map_err(AegisError::from)?;
        if rep % 2 == 0 {
            train.push(features, secret);
        } else {
            test.push(features, secret);
        }
    }
    let attacker = ClassifierAttack::train(
        &train,
        TrainConfig::default(),
        derive_seed(cfg.seed, STREAM_XT_TRAIN, 0),
    );
    let accuracy = attacker.accuracy(&test);
    obs::gauge_set("fleet.cross_tenant.accuracy", accuracy);
    Ok(PolicyAttackCell {
        policy,
        co_resident,
        accuracy,
    })
}

/// Runs [`cross_tenant_accuracy`] for each policy — the fleet's
/// defense-metric table proving which placement knobs move attacker
/// accuracy.
///
/// # Errors
///
/// Propagates the first failing cell's error.
pub fn policy_attack_table(
    policies: &[PlacementPolicy],
    app: &dyn SecretApp,
    defense: Option<&DefenseDeployment>,
    cfg: &CrossTenantConfig,
) -> Result<Vec<PolicyAttackCell>, AegisError> {
    policies
        .iter()
        .map(|&p| cross_tenant_accuracy(p, app, defense, cfg))
        .collect()
}

/// Element-wise sum of same-shape traces: the attacker's aggregate view
/// of a core pair (it reads both siblings but cannot separate them).
fn sum_traces(traces: &[Trace]) -> Trace {
    let mut agg = traces[0].clone();
    for t in &traces[1..] {
        for (row, other) in agg.data.iter_mut().zip(&t.data) {
            for (a, b) in row.iter_mut().zip(other) {
                *a += b;
            }
        }
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_guards() {
        let app = aegis_workloads::KeystrokeApp::with_window(300_000_000);
        let bad = CrossTenantConfig {
            tenants: 1,
            ..CrossTenantConfig::default()
        };
        assert!(cross_tenant_accuracy(PlacementPolicy::Packed, &app, None, &bad).is_err());
        let bad = CrossTenantConfig {
            traces_per_secret: 1,
            ..CrossTenantConfig::default()
        };
        assert!(cross_tenant_accuracy(PlacementPolicy::Packed, &app, None, &bad).is_err());
    }

    #[test]
    fn trace_summing_is_elementwise() {
        use aegis_microarch::EventId;
        let mut a = Trace::new(vec![EventId(0)], 1);
        a.push_slice(&[1.0]);
        a.push_slice(&[2.0]);
        let mut b = Trace::new(vec![EventId(0)], 1);
        b.push_slice(&[10.0]);
        b.push_slice(&[20.0]);
        let s = sum_traces(&[a, b]);
        assert_eq!(s.row(0), &[11.0, 22.0]);
    }
}
