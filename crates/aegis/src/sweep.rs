//! The cached ε-sweep grid behind the paper's defense-effectiveness
//! figures (Fig. 9a/b): attack accuracy as a function of the privacy
//! budget ε for both mechanisms (Laplace and d*), for the clean-trained
//! and the robust (noisy-trained) attacker.
//!
//! The grid is flattened into independent (ε, mechanism) *cells*. Each
//! cell is a deterministic task:
//!
//! * its RNG streams are derived from `(sweep seed, ε bits, mechanism
//!   index)` via [`derive_seed`] — never from the grid position or the
//!   worker that happens to run it, so the grid is bit-identical at any
//!   worker count;
//! * its expensive artifacts — collected noisy datasets / MEA runs and
//!   trained models — are memoized through [`ArtifactCache`] under a
//!   fingerprint of their complete inputs. JSON round-trips `f64`
//!   exactly (shortest-roundtrip encoding), so a warm-cache run is
//!   bit-identical to a cold one;
//! * its wall time is attributed by `aegis-obs` spans: `sweep.cell`
//!   around the whole cell, with the nested `collect.dataset` /
//!   `collect.mea` / `attack.train` spans and a `sweep.eval` span
//!   splitting collect vs train vs eval time per cell.
//!
//! Model artifacts share their key recipe with
//! [`ClassifierAttack::train_cached`] / [`MeaAttack::train_cached`], so
//! a sweep and a direct call hit the same cache entries.

use crate::error::AegisError;
use crate::evaluate::{
    dataset_impl, mea_runs_impl, ClassifierAttack, CollectConfig, MeaAttack, MeaConfig, MeaRun,
};
use crate::pipeline::{DefenseDeployment, MechanismChoice};
use aegis_attack::TrainConfig;
use aegis_microarch::EventId;
use aegis_obs as obs;
use aegis_par::{derive_seed, fingerprint, ArtifactCache, Executor};
use aegis_sev::{Host, VmId};
use aegis_workloads::{DnnZoo, SecretApp};

/// Stream tags separating the independent RNG consumers of one sweep
/// seed (see [`derive_seed`]). Disjoint from the collection streams in
/// `evaluate` (0x01–0x04).
const STREAM_EPS: u64 = 0x10;
const STREAM_MECH: u64 = 0x11;
const STREAM_VICTIM: u64 = 0x12;
const STREAM_TRAIN: u64 = 0x13;
const STREAM_MODEL: u64 = 0x14;

/// The mechanisms of one grid column, in output order.
pub const SWEEP_MECHANISMS: [&str; 2] = ["laplace", "dstar"];

fn mechanism(idx: usize, eps: f64) -> MechanismChoice {
    match idx {
        0 => MechanismChoice::Laplace { epsilon: eps },
        _ => MechanismChoice::DStar { epsilon: eps },
    }
}

/// Sweep-wide settings shared by every cell.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The ε grid (one row per value, in order).
    pub eps_grid: Vec<f64>,
    /// Master sweep seed; every cell stream derives from it.
    pub seed: u64,
    /// The seed the measured [`Host`] was built with — folded into the
    /// cache keys so artifacts from different substrates never collide.
    pub host_seed: u64,
    /// Attacker training settings (also part of the model cache keys).
    pub train: TrainConfig,
    /// Defended victim (test) traces per secret.
    pub victim_traces_per_secret: usize,
    /// Noisy training traces per secret for the robust attacker
    /// (ignored when a clean attacker is supplied).
    pub robust_traces_per_secret: usize,
    /// Defended victim runs per model for the MEA sweep.
    pub victim_runs_per_model: usize,
}

/// One evaluated (ε, mechanism) grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// The privacy budget of this cell.
    pub epsilon: f64,
    /// Mechanism name (one of [`SWEEP_MECHANISMS`]).
    pub mechanism: &'static str,
    /// Attack accuracy on the defended victim traces.
    pub accuracy: f64,
}

/// A completed sweep: cells in (ε, mechanism) grid order plus the cache
/// traffic its cells generated — cold runs report all misses, warm runs
/// all hits, with bit-identical `cells` either way.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Evaluated cells: for each ε in grid order, one cell per
    /// mechanism in [`SWEEP_MECHANISMS`] order.
    pub cells: Vec<SweepCell>,
    /// Artifacts served from the cache.
    pub cache_hits: u64,
    /// Artifacts computed and stored.
    pub cache_misses: u64,
}

impl SweepOutcome {
    /// The grid as table rows: `(ε, laplace accuracy, d* accuracy)`.
    pub fn rows(&self) -> Vec<(f64, f64, f64)> {
        self.cells
            .chunks(SWEEP_MECHANISMS.len())
            .map(|pair| (pair[0].epsilon, pair[0].accuracy, pair[1].accuracy))
            .collect()
    }
}

/// Per-cell cache bookkeeping, merged into the [`SweepOutcome`].
#[derive(Default)]
struct CellStats {
    hits: u64,
    misses: u64,
}

/// Memoizes `compute` under `(kind, key)`, counting the hit or miss.
fn cached<T, F>(
    cache: &ArtifactCache,
    kind: &str,
    key: u64,
    stats: &mut CellStats,
    compute: F,
) -> Result<T, AegisError>
where
    T: serde::Serialize + serde::Deserialize,
    F: FnOnce() -> Result<T, AegisError>,
{
    if let Some(hit) = cache.get::<T>(kind, key) {
        stats.hits += 1;
        return Ok(hit);
    }
    stats.misses += 1;
    let value = compute()?;
    let _ = cache.put(kind, key, &value);
    Ok(value)
}

/// The seed of one grid cell: a pure function of the sweep seed, the ε
/// value, and the mechanism index — independent of grid position and
/// worker assignment.
fn cell_seed(cfg: &SweepConfig, eps: f64, mech_idx: usize) -> u64 {
    derive_seed(
        derive_seed(cfg.seed, STREAM_EPS, eps.to_bits()),
        STREAM_MECH,
        mech_idx as u64,
    )
}

/// Flattens the ε grid into (ε, mechanism-index) cells.
fn grid_units(cfg: &SweepConfig) -> Vec<(f64, usize)> {
    cfg.eps_grid
        .iter()
        .flat_map(|&eps| (0..SWEEP_MECHANISMS.len()).map(move |m| (eps, m)))
        .collect()
}

/// Assembles per-cell results (in grid order) into a [`SweepOutcome`].
fn assemble(
    units: Vec<(f64, usize)>,
    results: Vec<Result<(f64, CellStats), AegisError>>,
) -> Result<SweepOutcome, AegisError> {
    let mut out = SweepOutcome {
        cells: Vec::with_capacity(units.len()),
        cache_hits: 0,
        cache_misses: 0,
    };
    for ((eps, mech_idx), result) in units.into_iter().zip(results) {
        let (accuracy, stats) = result?;
        out.cache_hits += stats.hits;
        out.cache_misses += stats.misses;
        out.cells.push(SweepCell {
            epsilon: eps,
            mechanism: SWEEP_MECHANISMS[mech_idx],
            accuracy,
        });
    }
    Ok(out)
}

/// Runs the classification sweep (WFA/KSA rows of Fig. 9a/b): for every
/// (ε, mechanism) cell, collect defended victim traces and score the
/// attacker on them.
///
/// With `clean_attacker` set, the supplied clean-trained model is
/// evaluated directly (Fig. 9a). Without it, a *robust* attacker is
/// first trained on defended traces of the same cell (Fig. 9b).
///
/// Cells shard across the configured worker pool, each replaying
/// against a pristine fork of `host`; collected datasets and trained
/// models are memoized through `cache`. Output is bit-identical for any
/// worker count and any cache state.
///
/// # Errors
///
/// Returns [`AegisError::Host`] for invalid ids, or [`AegisError::Fault`]
/// when an injected fault escalates inside a cell.
#[allow(clippy::too_many_arguments)] // the testbed handle plus one knob per plane
pub fn classification_sweep(
    host: &Host,
    vm: VmId,
    vcpu: usize,
    app: &dyn SecretApp,
    events: &[EventId],
    collect: &CollectConfig,
    base: &DefenseDeployment,
    clean_attacker: Option<&ClassifierAttack>,
    cfg: &SweepConfig,
    cache: &ArtifactCache,
) -> Result<SweepOutcome, AegisError> {
    let units = grid_units(cfg);
    let snapshot: &Host = host;
    let results: Vec<Result<(f64, CellStats), AegisError>> = Executor::from_config().map_with(
        units.clone(),
        |_worker| {
            let pristine = snapshot.fork_detached();
            let arena = pristine.fork_detached();
            (pristine, arena)
        },
        |(pristine, replica), _unit, (eps, mech_idx)| {
            let _cell = obs::span("sweep.cell");
            let mut stats = CellStats::default();
            let seed = cell_seed(cfg, eps, mech_idx);
            let deployment = DefenseDeployment {
                stack: base.stack.clone(),
                mechanism: mechanism(mech_idx, eps),
                obfuscator: base.obfuscator,
            };
            // In-place fork into the worker's reusable replica arena.
            pristine.fork_detached_into(replica);

            // Defended victim (test) traces.
            let mut victim_cfg = *collect;
            victim_cfg.traces_per_secret = cfg.victim_traces_per_secret;
            victim_cfg.seed = derive_seed(seed, STREAM_VICTIM, 0);
            let victim = cached(
                cache,
                "noisy-dataset",
                dataset_key(cfg, app, events, &victim_cfg, &deployment),
                &mut stats,
                || dataset_impl(&mut *replica, vm, vcpu, app, events, &victim_cfg, Some(&deployment)),
            )?;

            let accuracy = match clean_attacker {
                Some(attacker) => {
                    let _eval = obs::span("sweep.eval");
                    attacker.accuracy(&victim)
                }
                None => {
                    // Robust attacker: trains AND tests on defended traces.
                    let mut train_collect = *collect;
                    train_collect.traces_per_secret = cfg.robust_traces_per_secret;
                    train_collect.seed = derive_seed(seed, STREAM_TRAIN, 0);
                    let noisy = cached(
                        cache,
                        "noisy-dataset",
                        dataset_key(cfg, app, events, &train_collect, &deployment),
                        &mut stats,
                        || {
                            dataset_impl(
                                &mut *replica,
                                vm,
                                vcpu,
                                app,
                                events,
                                &train_collect,
                                Some(&deployment),
                            )
                        },
                    )?;
                    let model_seed = derive_seed(seed, STREAM_MODEL, 0);
                    // Same key recipe as `ClassifierAttack::train_cached`,
                    // so both paths share artifacts.
                    let attacker = cached(
                        cache,
                        "attack-model",
                        fingerprint(&(&noisy, &cfg.train, model_seed)),
                        &mut stats,
                        || Ok(ClassifierAttack::train(&noisy, cfg.train, model_seed)),
                    )?;
                    let _eval = obs::span("sweep.eval");
                    attacker.accuracy(&victim)
                }
            };
            Ok((accuracy, stats))
        },
    );
    assemble(units, results)
}

/// Runs the model-extraction sweep (MEA row of Fig. 9a): for every
/// (ε, mechanism) cell, collect defended inference runs and score the
/// sequence attacker on them. Semantics mirror [`classification_sweep`].
///
/// # Errors
///
/// Returns [`AegisError::Host`] for invalid ids, or [`AegisError::Fault`]
/// when an injected fault escalates inside a cell.
#[allow(clippy::too_many_arguments)] // the testbed handle plus one knob per plane
pub fn mea_sweep(
    host: &Host,
    vm: VmId,
    vcpu: usize,
    zoo: &DnnZoo,
    events: &[EventId],
    collect: &MeaConfig,
    base: &DefenseDeployment,
    clean_attacker: Option<&MeaAttack>,
    cfg: &SweepConfig,
    cache: &ArtifactCache,
) -> Result<SweepOutcome, AegisError> {
    let units = grid_units(cfg);
    let snapshot: &Host = host;
    let results: Vec<Result<(f64, CellStats), AegisError>> = Executor::from_config().map_with(
        units.clone(),
        |_worker| {
            let pristine = snapshot.fork_detached();
            let arena = pristine.fork_detached();
            (pristine, arena)
        },
        |(pristine, replica), _unit, (eps, mech_idx)| {
            let _cell = obs::span("sweep.cell");
            let mut stats = CellStats::default();
            let seed = cell_seed(cfg, eps, mech_idx);
            let deployment = DefenseDeployment {
                stack: base.stack.clone(),
                mechanism: mechanism(mech_idx, eps),
                obfuscator: base.obfuscator,
            };
            // In-place fork into the worker's reusable replica arena.
            pristine.fork_detached_into(replica);

            let mut victim_cfg = *collect;
            victim_cfg.runs_per_model = cfg.victim_runs_per_model;
            victim_cfg.seed = derive_seed(seed, STREAM_VICTIM, 0);
            let victim: Vec<(usize, MeaRun)> = cached(
                cache,
                "noisy-mea-runs",
                mea_key(cfg, zoo, events, &victim_cfg, &deployment),
                &mut stats,
                || mea_runs_impl(&mut *replica, vm, vcpu, zoo, events, &victim_cfg, Some(&deployment)),
            )?;

            let accuracy = match clean_attacker {
                Some(attacker) => {
                    let _eval = obs::span("sweep.eval");
                    attacker.sequence_accuracy(&victim)
                }
                None => {
                    let mut train_collect = *collect;
                    train_collect.seed = derive_seed(seed, STREAM_TRAIN, 0);
                    let noisy: Vec<(usize, MeaRun)> = cached(
                        cache,
                        "noisy-mea-runs",
                        mea_key(cfg, zoo, events, &train_collect, &deployment),
                        &mut stats,
                        || {
                            mea_runs_impl(
                                &mut *replica,
                                vm,
                                vcpu,
                                zoo,
                                events,
                                &train_collect,
                                Some(&deployment),
                            )
                        },
                    )?;
                    let model_seed = derive_seed(seed, STREAM_MODEL, 0);
                    // Same key recipe as `MeaAttack::train_cached`.
                    let attacker = cached(
                        cache,
                        "mea-model",
                        fingerprint(&(&noisy, &cfg.train, model_seed)),
                        &mut stats,
                        || Ok(MeaAttack::train(&noisy, cfg.train, model_seed)),
                    )?;
                    let _eval = obs::span("sweep.eval");
                    attacker.sequence_accuracy(&victim)
                }
            };
            Ok((accuracy, stats))
        },
    );
    assemble(units, results)
}

/// Cache key of one collected classification dataset: the complete set
/// of inputs collection is a pure function of — substrate (host seed),
/// workload, event list, collection settings (including the derived
/// per-cell seed), and the full deployment.
fn dataset_key(
    cfg: &SweepConfig,
    app: &dyn SecretApp,
    events: &[EventId],
    collect: &CollectConfig,
    deployment: &DefenseDeployment,
) -> u64 {
    fingerprint(&(
        cfg.host_seed,
        app.name().to_string(),
        app.n_secrets() as u64,
        events.to_vec(),
        *collect,
        &deployment.stack,
        &deployment.mechanism,
        &deployment.obfuscator,
    ))
}

/// Cache key of one collected set of MEA runs (see [`dataset_key`]).
fn mea_key(
    cfg: &SweepConfig,
    zoo: &DnnZoo,
    events: &[EventId],
    collect: &MeaConfig,
    deployment: &DefenseDeployment,
) -> u64 {
    fingerprint(&(
        cfg.host_seed,
        zoo.name().to_string(),
        zoo.n_secrets() as u64,
        events.to_vec(),
        *collect,
        &deployment.stack,
        &deployment.mechanism,
        &deployment.obfuscator,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegis_fuzzer::Gadget;
    use aegis_isa::{IsaCatalog, Vendor, WellKnown};
    use aegis_microarch::MicroArch;
    use aegis_obfuscator::{GadgetStack, ObfuscatorConfig};
    use aegis_sev::SevMode;
    use aegis_workloads::KeystrokeApp;

    fn host_vm(seed: u64) -> (Host, VmId) {
        let mut host = Host::new(MicroArch::AmdEpyc7252, 2, seed);
        let vm = host.launch_vm(1, SevMode::SevSnp).unwrap();
        (host, vm)
    }

    fn test_deployment(host: &Host) -> DefenseDeployment {
        let isa = IsaCatalog::synthetic(Vendor::Amd, 7);
        let mut core = aegis_microarch::Core::new(host.arch(), 9);
        let stack = GadgetStack::calibrate(
            &isa,
            &mut core,
            vec![Gadget::new(WellKnown::Clflush.id(), WellKnown::Load64.id())],
            64,
        );
        DefenseDeployment {
            stack,
            mechanism: MechanismChoice::Laplace { epsilon: 0.25 },
            obfuscator: ObfuscatorConfig::default(),
        }
    }

    fn quick_sweep_cfg() -> SweepConfig {
        SweepConfig {
            eps_grid: vec![0.25, 4.0],
            seed: 11,
            host_seed: 3,
            train: TrainConfig::default(),
            victim_traces_per_secret: 2,
            robust_traces_per_secret: 3,
            victim_runs_per_model: 1,
        }
    }

    #[test]
    fn grid_cells_are_in_row_major_mechanism_order() {
        let cfg = quick_sweep_cfg();
        let units = grid_units(&cfg);
        assert_eq!(units, vec![(0.25, 0), (0.25, 1), (4.0, 0), (4.0, 1)]);
    }

    #[test]
    fn cell_seeds_ignore_grid_position() {
        let mut cfg = quick_sweep_cfg();
        let before = cell_seed(&cfg, 4.0, 1);
        // Growing or reordering the grid must not move existing cells.
        cfg.eps_grid = vec![4.0, 0.25, 1.0];
        assert_eq!(cell_seed(&cfg, 4.0, 1), before);
        assert_ne!(cell_seed(&cfg, 4.0, 0), before);
        assert_ne!(cell_seed(&cfg, 0.25, 1), before);
    }

    #[test]
    fn robust_sweep_is_deterministic_and_counts_cache_traffic() {
        let (host, vm) = host_vm(3);
        let core = host.core_of(vm, 0).unwrap();
        let events = host.core(core).catalog().attack_events().to_vec();
        let app = KeystrokeApp::with_window(300_000_000);
        let collect = CollectConfig {
            traces_per_secret: 4,
            window_ns: 300_000_000,
            interval_ns: 2_000_000,
            pool: 25,
            seed: 7,
            per_secret_noise: false,
        };
        let deployment = test_deployment(&host);
        let cfg = quick_sweep_cfg();

        let dir = std::env::temp_dir().join(format!("aegis-sweep-test-{}", std::process::id()));
        let cache = ArtifactCache::new(&dir);
        let cold = classification_sweep(
            &host, vm, 0, &app, &events, &collect, &deployment, None, &cfg, &cache,
        )
        .unwrap();
        let warm = classification_sweep(
            &host, vm, 0, &app, &events, &collect, &deployment, None, &cfg, &cache,
        )
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        // 2 ε × 2 mechanisms × (victim + noisy + model) artifacts.
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.cache_misses, 12);
        assert_eq!(warm.cache_hits, 12);
        assert_eq!(warm.cache_misses, 0);
        // Warm results are bit-identical to cold ones.
        assert_eq!(cold.cells, warm.cells);
        assert_eq!(cold.rows().len(), 2);
        for cell in &cold.cells {
            assert!((0.0..=1.0).contains(&cell.accuracy), "{cell:?}");
        }
    }

    #[test]
    fn clean_attacker_sweep_skips_training_artifacts() {
        let (host, vm) = host_vm(3);
        let core = host.core_of(vm, 0).unwrap();
        let events = host.core(core).catalog().attack_events().to_vec();
        let app = KeystrokeApp::with_window(300_000_000);
        let collect = CollectConfig {
            traces_per_secret: 4,
            window_ns: 300_000_000,
            interval_ns: 2_000_000,
            pool: 25,
            seed: 7,
            per_secret_noise: false,
        };
        let mut clean_host = host.fork_detached();
        let clean = dataset_impl(&mut clean_host, vm, 0, &app, &events, &collect, None).unwrap();
        let attacker = ClassifierAttack::train(&clean, TrainConfig::default(), 7);
        let deployment = test_deployment(&host);
        let cfg = quick_sweep_cfg();

        // A disabled cache still yields a correct (all-miss) outcome.
        let out = classification_sweep(
            &host,
            vm,
            0,
            &app,
            &events,
            &collect,
            &deployment,
            Some(&attacker),
            &cfg,
            &cache_disabled(),
        )
        .unwrap();
        assert_eq!(out.cells.len(), 4);
        assert_eq!(out.cache_hits, 0);
        // One victim dataset per cell, no training artifacts.
        assert_eq!(out.cache_misses, 4);
    }

    fn cache_disabled() -> ArtifactCache {
        ArtifactCache::disabled()
    }
}
